//! Crash-matrix harness: re-execute this test binary as a child process with
//! `SAM_FAULT_CRASH=<point>` armed, let it die (exit code 86) at the named
//! crash point mid-durability-protocol, then verify in the parent that
//! recovery holds the invariant the protocol promises:
//!
//! * **training checkpoints** — a crash at any point of the atomic snapshot
//!   protocol costs wall time, never correctness: a rerun converges to the
//!   bit-for-bit same model as an uninterrupted run;
//! * **journal appends** — a crash around an append loses at most the
//!   in-flight event; the log never becomes unreplayable;
//! * **journal compaction** — a crash at any point inside compaction
//!   replays to exactly the pre-compaction job states;
//! * **atomic CSV / model writes** — the destination is never torn: it is
//!   absent or complete, and orphaned `*.tmp` files are swept on reopen.
//!
//! Child scenarios live in the `#[ignore]`d `crash_child` test, dispatched
//! on `SAM_CRASH_CHILD`; the matrix spawns it via `current_exe()`.

use sam::ar::{train, ArModel, ArModelConfig, ArSchema, CheckpointConfig, EncodingOptions};
use sam::core::{GenerationConfig, JoinKeyStrategy};
use sam::fault::{CRASH_ENV, CRASH_EXIT_CODE};
use sam::prelude::TrainConfig;
use sam::query::{label_workload, Workload, WorkloadGenerator};
use sam::serve::journal::{Journal, ReplayState, QUARANTINE_FILE, SNAPSHOT_FILE};
use sam::storage::{paper_example, DatabaseStats};
use serde_json::json;
use std::path::{Path, PathBuf};
use std::process::Command;

const CHILD_ENV: &str = "SAM_CRASH_CHILD";
const DIR_ENV: &str = "SAM_CRASH_DIR";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sam_crash_matrix_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run one child scenario with `point` armed; the child MUST die at the
/// point (exit 86) — a normal exit means the point never fired and the
/// matrix entry is vacuous.
fn crash_child_at(scenario: &str, point: &str, dir: &Path) {
    let status = Command::new(std::env::current_exe().expect("current_exe"))
        .args(["crash_child", "--exact", "--ignored", "--nocapture"])
        .env(CHILD_ENV, scenario)
        .env(DIR_ENV, dir)
        .env(CRASH_ENV, point)
        .status()
        .expect("spawn crash child");
    assert_eq!(
        status.code(),
        Some(CRASH_EXIT_CODE),
        "scenario {scenario:?} did not crash at point {point:?} (status {status:?})"
    );
}

fn no_tmp_files(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            no_tmp_files(&path);
        } else {
            assert!(
                path.extension().is_none_or(|e| e != "tmp"),
                "orphaned tmp file survived recovery: {path:?}"
            );
        }
    }
}

// ---------------------------------------------------------------- training

/// Deterministic tiny training fixture shared by child and parent.
fn train_fixture() -> (ArSchema, Workload, sam::storage::Database) {
    let db = paper_example::figure3_database();
    let single = sam::storage::Database::single(db.table_by_name("A").unwrap().clone());
    let stats = DatabaseStats::from_database(&single);
    let mut gen = WorkloadGenerator::new(&single, 5);
    let workload = label_workload(&single, gen.single_workload("A", 16)).unwrap();
    let schema = ArSchema::build(
        single.schema(),
        &stats,
        &workload
            .queries
            .iter()
            .map(|q| q.query.clone())
            .collect::<Vec<_>>(),
        &EncodingOptions::default(),
    )
    .unwrap();
    (schema, workload, single)
}

fn train_config(dir: &Path) -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 8,
        lr: 1e-2,
        seed: 21,
        checkpoint: Some(CheckpointConfig::new(dir, 1)),
        ..TrainConfig::default()
    }
}

fn model_config() -> ArModelConfig {
    ArModelConfig {
        hidden: vec![8],
        seed: 11,
        residual: false,
        transformer: None,
    }
}

/// Train to completion in-process and return the persisted model JSON.
fn train_to_json(dir: &Path) -> String {
    let (schema, workload, single) = train_fixture();
    let mut model = ArModel::new(schema, &model_config());
    train(&mut model, &workload, &train_config(dir)).unwrap();
    sam::ar::save_model(&model.freeze(), single.schema())
}

// ---------------------------------------------------------------- journal

fn gen_config(seed: u64) -> GenerationConfig {
    GenerationConfig {
        foj_samples: 64,
        batch: 4,
        seed,
        strategy: JoinKeyStrategy::GroupAndMerge,
    }
}

/// The fixed journal history the compaction scenario starts from.
fn seed_journal(journal: &Journal) {
    journal.accepted(1, "m", 1, &gen_config(1));
    journal.running(1);
    journal.completed(1, &json!({"tables": []}));
    journal.accepted(2, "m", 1, &gen_config(2));
    journal.failed(2, "boom");
    journal.accepted(3, "m", 2, &gen_config(3));
    journal.running(3);
}

fn assert_seeded_states(jobs: &[sam::serve::ReplayedJob]) {
    assert_eq!(jobs.len(), 3);
    assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
    assert_eq!(jobs[1].state, ReplayState::Failed("boom".into()));
    assert_eq!(jobs[2].state, ReplayState::Interrupted);
    assert_eq!(jobs[2].config.seed, 3);
}

// ---------------------------------------------------------------- child

/// Child entry point: dispatches on `SAM_CRASH_CHILD`, runs the workload,
/// and dies at whatever crash point `SAM_FAULT_CRASH` armed. Ignored in
/// normal runs; only the matrix spawns it.
#[test]
#[ignore = "crash-matrix child process; spawned by the matrix tests"]
fn crash_child() {
    let Ok(scenario) = std::env::var(CHILD_ENV) else {
        return;
    };
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("SAM_CRASH_DIR"));
    match scenario.as_str() {
        "train" => {
            let (schema, workload, _) = train_fixture();
            let mut model = ArModel::new(schema, &model_config());
            // Dies at the armed point during the first checkpoint save.
            let _ = train(&mut model, &workload, &train_config(&dir));
        }
        "journal_append" => {
            let journal = Journal::open(&dir, sam::obs::counter("crash_child_events")).unwrap();
            journal.accepted(1, "m", 1, &gen_config(7));
        }
        "journal_compact" => {
            // The history was written by the parent; compaction crashes.
            let journal = Journal::open(&dir, sam::obs::counter("crash_child_events")).unwrap();
            let _ = journal.compact();
        }
        "csv" => {
            let db = paper_example::figure3_database();
            let table = db.table_by_name("A").unwrap();
            let _ = sam::storage::csv::write_csv_atomic(
                table,
                &dir.join("A.csv"),
                &*sam::fault::real_fs(),
            );
        }
        "model_save" => {
            let (schema, workload, single) = train_fixture();
            let mut model = ArModel::new(schema, &model_config());
            let mut cfg = train_config(&dir.join("ckpt"));
            cfg.epochs = 1;
            train(&mut model, &workload, &cfg).unwrap();
            let _ = sam::ar::save_model_file(
                &model.freeze(),
                single.schema(),
                &dir.join("model.json"),
                &*sam::fault::real_fs(),
            );
        }
        other => panic!("unknown crash child scenario {other:?}"),
    }
}

// ---------------------------------------------------------------- matrix

/// A crash at any point of the checkpoint commit protocol — before the tmp
/// write, mid-protocol with the tmp on disk, or after the rename — never
/// costs correctness: a rerun over the same checkpoint dir converges to the
/// bit-for-bit same model and final checkpoint as an uninterrupted run.
#[test]
fn train_checkpoint_crash_matrix() {
    let base = scratch("train");
    let reference = train_to_json(&base.join("reference"));
    let ref_ckpt = std::fs::read(
        base.join("reference")
            .join(sam::ar::checkpoint::CHECKPOINT_FILE),
    )
    .unwrap();
    for point in [
        "train.ckpt.pre_write",
        "atomic.tmp_written",
        "atomic.pre_rename",
        "train.ckpt.saved",
    ] {
        let dir = base.join(point.replace('.', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        crash_child_at("train", point, &dir);
        let resumed = train_to_json(&dir);
        assert_eq!(
            resumed, reference,
            "crash at {point}: resumed model differs from uninterrupted run"
        );
        let ckpt = std::fs::read(dir.join(sam::ar::checkpoint::CHECKPOINT_FILE)).unwrap();
        assert_eq!(ckpt, ref_ckpt, "crash at {point}: final checkpoint differs");
        no_tmp_files(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A crash around a journal append loses at most the in-flight event: the
/// reopened journal replays cleanly (no corruption, no quarantine) with the
/// event either fully present or fully absent.
#[test]
fn journal_append_crash_matrix() {
    let base = scratch("append");
    for (point, event_survives) in [
        ("journal.append.pre_write", false),
        ("journal.append.written", true),
    ] {
        let dir = base.join(point.replace('.', "_"));
        crash_child_at("journal_append", point, &dir);
        let journal = Journal::open(&dir, sam::obs::counter("matrix_append_events")).unwrap();
        let jobs = journal.replay().unwrap();
        if event_survives {
            assert_eq!(jobs.len(), 1, "crash at {point}");
            assert_eq!(jobs[0].id, 1);
            assert_eq!(jobs[0].state, ReplayState::Interrupted);
            assert_eq!(jobs[0].config.seed, 7, "config must round-trip the crash");
        } else {
            assert!(
                jobs.is_empty(),
                "crash at {point}: event must be lost whole"
            );
        }
        assert!(
            !dir.join(QUARANTINE_FILE).exists(),
            "crash at {point}: a clean crash must not quarantine anything"
        );
        // The journal accepts writes again after recovery.
        journal.accepted(9, "m", 1, &gen_config(9));
        assert!(journal.replay().unwrap().iter().any(|j| j.id == 9));
        no_tmp_files(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A crash at any point inside compaction — before the snapshot, with the
/// snapshot tmp on disk, after the snapshot committed but before (or after)
/// the log truncate — replays to exactly the pre-compaction job states, and
/// a repeated compaction converges.
#[test]
fn journal_compaction_crash_matrix() {
    let base = scratch("compact");
    for point in [
        "journal.compact.pre_snapshot",
        "atomic.tmp_written",
        "atomic.pre_rename",
        "journal.compact.snapshotted",
        "journal.compact.truncated",
    ] {
        let dir = base.join(point.replace('.', "_"));
        {
            let journal = Journal::open(&dir, sam::obs::counter("matrix_compact_events")).unwrap();
            seed_journal(&journal);
        }
        crash_child_at("journal_compact", point, &dir);
        let journal = Journal::open(&dir, sam::obs::counter("matrix_compact_events")).unwrap();
        let jobs = journal.replay().unwrap();
        assert_seeded_states(&jobs);
        // Finishing the interrupted compaction converges to the same state.
        journal.compact().unwrap();
        assert_seeded_states(&journal.replay().unwrap());
        assert!(
            journal.log_len() == 0,
            "crash at {point}: log not truncated"
        );
        assert!(dir.join(SNAPSHOT_FILE).exists());
        no_tmp_files(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Atomic CSV persistence: a crash anywhere in the protocol leaves the
/// destination absent or byte-complete, never torn, and reopening sweeps
/// the orphaned tmp.
#[test]
fn csv_persist_crash_matrix() {
    let base = scratch("csv");
    let db = paper_example::figure3_database();
    let table = db.table_by_name("A").unwrap();
    let mut want = Vec::new();
    sam::storage::csv::write_csv(table, &mut want).unwrap();
    for (point, file_lands) in [
        ("csv.pre_write", false),
        ("atomic.tmp_written", false),
        ("atomic.pre_rename", false),
    ] {
        let dir = base.join(point.replace('.', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        crash_child_at("csv", point, &dir);
        let out = dir.join("A.csv");
        if file_lands {
            assert_eq!(std::fs::read(&out).unwrap(), want, "crash at {point}");
        } else {
            assert!(
                !out.exists() || std::fs::read(&out).unwrap() == want,
                "crash at {point}: destination must be absent or complete"
            );
        }
        sam::fault::sweep_tmp_files(&*sam::fault::real_fs(), &dir).unwrap();
        no_tmp_files(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Atomic model save: a crash before the rename leaves no (or a stale)
/// destination — never a torn model file a later load would choke on.
#[test]
fn model_save_crash_matrix() {
    let base = scratch("model");
    for point in ["model.save.pre_write", "atomic.pre_rename"] {
        let dir = base.join(point.replace('.', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        crash_child_at("model_save", point, &dir);
        let out = dir.join("model.json");
        if out.exists() {
            // Whatever landed must be a complete, loadable model.
            sam::ar::load_model_file(&out, &*sam::fault::real_fs()).unwrap();
        }
        sam::fault::sweep_tmp_files(&*sam::fault::real_fs(), &dir).unwrap();
        no_tmp_files(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}
