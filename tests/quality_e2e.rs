//! End-to-end test of the quality-observability layer: a served model with
//! reference relations attached is driven with estimates, and the quality
//! drift monitor must surface the (inevitably imperfect) answers — in
//! `GET /quality`, in `/metrics` (JSON and Prometheus), in the flight
//! recorder, and in the JSONL audit file, whose lines must feed straight
//! back into `workgen mine` as seeds.

use sam::prelude::*;
use sam::serve::{ServeConfig, Server};
use sam::storage::paper_example;
use serde_json::Value as Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn http_raw(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).expect("body").to_string();
    (status, payload)
}

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, payload) = http_raw(addr, method, path, body);
    (
        status,
        serde_json::parse_value(&payload).expect("JSON body"),
    )
}

fn train_demo_model() -> (TrainedSam, Vec<Query>, Database) {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 13);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let queries: Vec<Query> = workload
        .iter()
        .map(|lq| lq.query.clone())
        .filter(|q| parse_query(&q.to_string()).as_ref() == Ok(q))
        .take(6)
        .collect();
    assert!(queries.len() >= 3, "need round-trippable queries");
    (trained, queries, db)
}

/// Drive estimates through a server whose quality monitor samples 100% of
/// traffic against attached reference relations with a threshold barely
/// above perfect (a 4-epoch toy model is nowhere near it), then check every
/// surface the drift should appear on.
#[test]
fn quality_drift_surfaces_everywhere() {
    let (trained, queries, db) = train_demo_model();
    let audit_path =
        std::env::temp_dir().join(format!("sam_quality_audit_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&audit_path);

    let server = Server::start(ServeConfig {
        workers: 2,
        max_batch: 4,
        quality_sample: 1.0,
        quality_window: 64,
        quality_alert_qerror: 1.001,
        quality_audit: Some(audit_path.clone()),
        flight_capacity: 128,
        ..ServeConfig::default()
    })
    .expect("start server");
    server
        .registry()
        .insert_with_reference("demo", trained, Arc::new(db.clone()));
    let addr = server.addr();

    // Distinct (query, seed) pairs: cache misses only, so every answered
    // estimate is eligible for shadow scoring.
    let mut trace_ids: Vec<u64> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let body = serde_json::to_string(&serde_json::json!({
            "model": "demo",
            "sql": q.to_string(),
            "samples": 48,
            "seed": 1000 + i as u64,
        }))
        .unwrap();
        let (status, doc) = http(addr, "POST", "/estimate", &body);
        assert_eq!(status, 200, "estimate failed: {doc:?}");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        trace_ids.push(
            doc.get("trace_id")
                .and_then(Json::as_u64)
                .expect("trace id"),
        );
    }
    let driven = trace_ids.len() as u64;

    // The scorer runs on its own thread; wait until every submitted task
    // is accounted for (scored or dropped).
    let deadline = Instant::now() + Duration::from_secs(30);
    let quality = loop {
        let (status, doc) = http(addr, "GET", "/quality", "");
        assert_eq!(status, 200);
        let done = doc.get("samples").and_then(Json::as_u64).unwrap_or(0)
            + doc.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        if done >= driven {
            break doc;
        }
        assert!(Instant::now() < deadline, "quality scorer stalled: {doc:?}");
        std::thread::sleep(Duration::from_millis(50));
    };

    // /quality: the toy model cannot be within 0.1% on every query, so the
    // worst window Q-Error must sit above the alert threshold.
    assert_eq!(quality.get("sample").and_then(Json::as_f64), Some(1.0));
    let alerts = quality.get("alerts").and_then(Json::as_u64).unwrap();
    assert!(alerts > 0, "no quality alerts: {quality:?}");
    let models = quality
        .get("models")
        .and_then(Json::as_array)
        .expect("models array");
    assert_eq!(models.len(), 1);
    let entry = &models[0];
    assert_eq!(entry.get("model").and_then(Json::as_str), Some("demo"));
    assert_eq!(entry.get("mode").and_then(Json::as_str), Some("exact"));
    let worst = entry.get("worst_qerror").and_then(Json::as_f64).unwrap();
    assert!(worst > 1.001, "worst Q-Error {worst} not above threshold");
    assert!(
        entry.get("p50_qerror").and_then(Json::as_f64).unwrap() <= worst,
        "p50 must not exceed worst"
    );

    // /metrics (JSON): quality counters visible to scrapers.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(
        metrics.get("quality_alerts").and_then(Json::as_u64),
        Some(alerts)
    );
    assert!(
        metrics
            .get("quality_samples")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        metrics
            .get("quality_worst_qerror")
            .and_then(Json::as_f64)
            .unwrap()
            > 1.001
    );
    assert!(
        metrics
            .get("uptime_seconds")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert!(metrics
        .get("cache_hit_ratio")
        .and_then(Json::as_f64)
        .is_some());

    // /metrics (Prometheus): families with HELP/TYPE, build info with
    // labels, and latency-bucket exemplars pointing at real trace ids.
    let (status, text) = http_raw(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    assert!(text.contains("# TYPE sam_quality_alerts_total counter"));
    assert!(text.contains("# HELP sam_quality_worst_qerror"));
    assert!(text.contains("# TYPE sam_estimate_latency_seconds histogram"));
    assert!(text.contains("sam_build_info{"));
    assert!(text.contains("version=\""));
    assert!(text.contains("sam_uptime_seconds"));
    assert!(
        text.contains("# {trace_id=\""),
        "no exemplar on the latency histogram"
    );

    // /debug/flight: the driven estimates' trace ids are all in the ring.
    let (status, flight) = http(addr, "GET", "/debug/flight?last=50", "");
    assert_eq!(status, 200);
    let events = flight.get("events").and_then(Json::as_array).unwrap();
    let estimate_traces: Vec<u64> = events
        .iter()
        .filter(|e| e.get("endpoint").and_then(Json::as_str) == Some("estimate"))
        .filter_map(|e| e.get("trace_id").and_then(Json::as_u64))
        .collect();
    for id in &trace_ids {
        assert!(
            estimate_traces.contains(id),
            "trace {id} missing from flight recorder: {estimate_traces:?}"
        );
    }
    for e in events {
        assert_eq!(e.get("status").and_then(Json::as_u64), Some(200));
    }

    // /debug/buildinfo: identity and flight-recorder health.
    let (status, info) = http(addr, "GET", "/debug/buildinfo", "");
    assert_eq!(status, 200);
    assert!(info.get("version").and_then(Json::as_str).is_some());
    assert!(info.get("git_sha").and_then(Json::as_str).is_some());
    assert_eq!(
        info.get("backend").and_then(Json::as_str),
        Some("per-model")
    );
    assert!(info.get("uptime_seconds").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(info.get("models").and_then(Json::as_u64), Some(1));
    let fl = info.get("flight").expect("flight block");
    assert_eq!(fl.get("capacity").and_then(Json::as_u64), Some(128));
    assert!(fl.get("total").and_then(Json::as_u64).unwrap() > 0);

    // /debug/loglevel: live get/put round trip (restored afterwards).
    let (status, level) = http(addr, "GET", "/debug/loglevel", "");
    assert_eq!(status, 200);
    assert_eq!(level.get("level").and_then(Json::as_str), Some("silent"));
    let (status, level) = http(addr, "PUT", "/debug/loglevel", r#"{"level":"info"}"#);
    assert_eq!(status, 200);
    assert_eq!(level.get("level").and_then(Json::as_str), Some("info"));
    let (status, _) = http(addr, "PUT", "/debug/loglevel", r#"{"level":"nope"}"#);
    assert_eq!(status, 400);
    let (status, level) = http(addr, "PUT", "/debug/loglevel", r#"{"level":"silent"}"#);
    assert_eq!(status, 200);
    assert_eq!(level.get("level").and_then(Json::as_str), Some("silent"));

    // Shutdown flushes the audit file; its JSONL lines must parse as
    // workload seeds and feed `workgen mine` without error.
    let model = server.registry().get("demo").unwrap();
    server.shutdown();
    let audit_text = std::fs::read_to_string(&audit_path).expect("audit file written");
    assert!(!audit_text.trim().is_empty(), "audit file empty");
    for line in audit_text.lines() {
        let doc = serde_json::parse_value(line).expect("audit line is JSON");
        assert!(doc.get("sql").and_then(Json::as_str).is_some());
        assert!(doc.get("q_error").and_then(Json::as_f64).unwrap() > 1.001);
        assert!(trace_ids.contains(&doc.get("trace_id").and_then(Json::as_u64).unwrap()));
    }
    let seeds: Vec<Query> = sam::query::read_workload_entries(audit_text.as_bytes())
        .expect("audit re-reads as workload")
        .into_iter()
        .map(|(q, _)| q)
        .collect();
    assert!(!seeds.is_empty());
    let report = sam::workgen::mine_hard_queries(
        model.trained.model(),
        &db,
        &seeds,
        &sam::workgen::MinerConfig {
            top_k: 2,
            rounds: 1,
            pool: 4,
            mutants: 2,
            samples: 16,
            seed: 7,
        },
    )
    .expect("audit seeds mine cleanly");
    assert!(!report.worst.is_empty());
    let _ = std::fs::remove_file(&audit_path);
}

/// Without reference relations the monitor must fall back to parity mode:
/// the same f32-backed model re-estimates its own answers, so Q-Errors sit
/// at exactly 1 and no alert fires.
#[test]
fn parity_mode_without_reference_data() {
    let (trained, queries, _db) = train_demo_model();
    let server = Server::start(ServeConfig {
        workers: 1,
        quality_sample: 1.0,
        quality_alert_qerror: 1.5,
        ..ServeConfig::default()
    })
    .expect("start server");
    server.registry().insert("demo", trained);
    let addr = server.addr();

    let driven = 3u64;
    for (i, q) in queries.iter().take(driven as usize).enumerate() {
        let body = serde_json::to_string(&serde_json::json!({
            "model": "demo",
            "sql": q.to_string(),
            "samples": 32,
            "seed": 500 + i as u64,
        }))
        .unwrap();
        let (status, _) = http(addr, "POST", "/estimate", &body);
        assert_eq!(status, 200);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let quality = loop {
        let (_, doc) = http(addr, "GET", "/quality", "");
        let done = doc.get("samples").and_then(Json::as_u64).unwrap_or(0)
            + doc.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        if done >= driven {
            break doc;
        }
        assert!(Instant::now() < deadline, "quality scorer stalled: {doc:?}");
        std::thread::sleep(Duration::from_millis(50));
    };
    let models = quality.get("models").and_then(Json::as_array).unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].get("mode").and_then(Json::as_str), Some("parity"));
    // The default backend *is* the f32 reference: parity is exact.
    let worst = models[0]
        .get("worst_qerror")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        (worst - 1.0).abs() < 1e-9,
        "parity Q-Error should be 1, got {worst}"
    );
    assert_eq!(quality.get("alerts").and_then(Json::as_u64), Some(0));
}
