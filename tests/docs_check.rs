//! Docs-drift gate: the operator docs must keep up with the CLI.
//!
//! Two invariants, both cheap and both the kind that silently rot:
//!
//! 1. Every flag printed by `sam-cli <serve|train|router|workgen> --help`
//!    appears in the corresponding operator guide (docs/SERVING.md,
//!    docs/TRAINING.md, docs/SHARDING.md, docs/WORKGEN.md). Adding a flag
//!    without documenting it fails CI.
//! 2. Every relative markdown link in README.md, DESIGN.md, ROADMAP.md, and
//!    docs/*.md resolves to a file that exists — renames and deletions can't
//!    leave dangling links behind.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Run `sam-cli <subcommand> --help` and collect every `--flag` token from
/// its output. The literal `[--flags]` placeholder in usage lines is not a
/// flag and is skipped.
fn help_flags(subcommand: &str) -> BTreeSet<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_sam-cli"))
        .args([subcommand, "--help"])
        .output()
        .expect("run sam-cli --help");
    assert!(
        output.status.success(),
        "`sam-cli {subcommand} --help` exited with {:?}",
        output.status
    );
    let text = String::from_utf8(output.stdout).expect("utf-8 help text");
    let mut flags = BTreeSet::new();
    for token in text.split_whitespace() {
        if let Some(rest) = token.strip_prefix("--") {
            let flag: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            if !flag.is_empty() && flag != "flags" {
                flags.insert(flag);
            }
        }
    }
    assert!(
        flags.len() >= 5,
        "suspiciously few flags parsed from `sam-cli {subcommand} --help`: {flags:?}"
    );
    flags
}

fn assert_flags_documented(subcommand: &str, doc: &str) {
    let path = repo_root().join(doc);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let missing: Vec<String> = help_flags(subcommand)
        .into_iter()
        .filter(|flag| !text.contains(&format!("--{flag}")))
        .collect();
    assert!(
        missing.is_empty(),
        "`sam-cli {subcommand} --help` lists flags that {doc} never mentions: \
         {missing:?} — document them (or fix the help text)"
    );
}

#[test]
fn every_serve_flag_is_documented() {
    assert_flags_documented("serve", "docs/SERVING.md");
}

#[test]
fn every_train_flag_is_documented() {
    assert_flags_documented("train", "docs/TRAINING.md");
}

#[test]
fn every_router_flag_is_documented() {
    assert_flags_documented("router", "docs/SHARDING.md");
}

#[test]
fn every_workgen_flag_is_documented() {
    assert_flags_documented("workgen", "docs/WORKGEN.md");
}

/// Extract `](target)` markdown link targets from `text`. Good enough for
/// this repo's plain links; fenced code blocks are skipped so shell
/// snippets containing `](...)`-shaped text can't false-positive.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            match tail.find(')') {
                Some(close) => {
                    targets.push(tail[..close].to_string());
                    rest = &tail[close + 1..];
                }
                None => break,
            }
        }
    }
    targets
}

#[test]
fn every_relative_markdown_link_resolves() {
    let root = repo_root();
    let mut files: Vec<PathBuf> = ["README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    let docs = root.join("docs");
    if docs.is_dir() {
        for entry in std::fs::read_dir(&docs).expect("read docs/") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    assert!(
        files.len() >= 5,
        "expected several doc files, got {files:?}"
    );

    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap();
            if !dir.join(path_part).exists() {
                broken.push(format!("{} -> {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "dangling markdown links (relative targets that do not exist):\n{}",
        broken.join("\n")
    );
}
