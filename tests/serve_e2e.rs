//! End-to-end test of the serving subsystem through the public facade:
//! concurrent HTTP clients must get estimates **bit-identical** to the
//! in-process API, and generation jobs must produce the same database shape
//! as a direct `generate` call.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sam::prelude::*;
use sam::serve::{ServeConfig, Server};
use sam::storage::paper_example;
use serde_json::Value as Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn http_raw(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).expect("body").to_string();
    (status, payload)
}

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, payload) = http_raw(addr, method, path, body);
    (
        status,
        serde_json::parse_value(&payload).expect("JSON body"),
    )
}

fn train_demo_model() -> (TrainedSam, Vec<Query>) {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 13);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    // Queries whose SQL text round-trips through the parser, so the HTTP
    // client and the in-process API see the exact same Query.
    let queries: Vec<Query> = workload
        .iter()
        .map(|lq| lq.query.clone())
        .filter(|q| parse_query(&q.to_string()).as_ref() == Ok(q))
        .take(6)
        .collect();
    assert!(queries.len() >= 3, "need round-trippable queries");
    (trained, queries)
}

/// ≥8 concurrent clients hammer `/estimate`; every response must equal the
/// in-process `estimate_cardinality` with the same (query, samples, seed) —
/// micro-batching must be invisible in the results.
#[test]
fn concurrent_http_estimates_are_bit_identical_to_in_process() {
    const CLIENTS: usize = 8;
    const SAMPLES: usize = 96;

    let (trained, queries) = train_demo_model();
    let server = Server::start(ServeConfig {
        workers: 2,
        max_batch: 8,
        ..ServeConfig::default()
    })
    .expect("start server");
    server.registry().insert("demo", trained);
    let addr = server.addr();
    let model = server.registry().get("demo").unwrap();

    // Expected values computed in-process, sequentially.
    let mut expected = Vec::new();
    for (c, q) in (0..CLIENTS).flat_map(|c| queries.iter().map(move |q| (c, q))) {
        let seed = 1000 + c as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let est = sam::ar::estimate_cardinality(model.trained.model(), q, SAMPLES, &mut rng)
            .expect("in-process estimate");
        expected.push((c, q.to_string(), seed, est));
    }

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sqls: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
            std::thread::spawn(move || {
                let seed = 1000 + c as u64;
                sqls.into_iter()
                    .map(|sql| {
                        let body = serde_json::to_string(&serde_json::json!({
                            "model": "demo",
                            "sql": sql,
                            "samples": SAMPLES,
                            "seed": seed,
                        }))
                        .unwrap();
                        let (status, reply) = http(addr, "POST", "/estimate", &body);
                        assert_eq!(status, 200, "estimate failed: {reply:?}");
                        (
                            reply.get("estimate").and_then(Json::as_f64).unwrap(),
                            reply.get("batch_size").and_then(Json::as_u64).unwrap(),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let got: Vec<Vec<(f64, u64)>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (c, sql, _seed, want) in &expected {
        let q_idx = queries.iter().position(|q| q.to_string() == *sql).unwrap();
        let (est, _batch) = got[*c][q_idx];
        assert_eq!(
            est, *want,
            "client {c} query {sql:?}: server {est} != in-process {want}"
        );
    }

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    let total = (CLIENTS * queries.len()) as u64;
    assert_eq!(
        metrics.get("estimates_ok").and_then(Json::as_u64),
        Some(total)
    );
    assert_eq!(
        metrics.get("batched_requests").and_then(Json::as_u64),
        Some(total)
    );

    // Prometheus exposition: valid text format with non-zero batch counts
    // and latency histogram buckets for the estimates just served.
    let (status, prom) = http_raw(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    assert!(prom.contains("# TYPE sam_batches_total counter"), "{prom}");
    let batches_line = prom
        .lines()
        .find(|l| l.starts_with("sam_batches_total "))
        .expect("sam_batches_total sample");
    let batches: u64 = batches_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(batches > 0, "served estimates must record batches: {prom}");
    assert!(
        prom.contains("# TYPE sam_estimate_latency_seconds histogram"),
        "{prom}"
    );
    assert!(
        prom.contains("sam_estimate_latency_seconds_bucket{le=\""),
        "{prom}"
    );
    assert!(
        prom.contains("sam_estimate_latency_seconds_bucket{le=\"+Inf\"}"),
        "{prom}"
    );
    server.shutdown();
}

/// `/generate` job lifecycle: accepted → polled to `done` → the summary
/// matches an in-process `generate` with the same configuration.
#[test]
fn generation_job_matches_in_process_generate() {
    let (trained, _) = train_demo_model();
    let gen_config = GenerationConfig {
        foj_samples: 400,
        batch: 64,
        seed: 11,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    let (direct, _) = trained.generate(&gen_config).expect("direct generate");

    let server = Server::start(ServeConfig::default()).expect("start server");
    server.registry().insert("demo", trained);
    let addr = server.addr();

    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 400, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Json::as_u64).unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let done = loop {
        let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        match polled.get("state").and_then(Json::as_str) {
            Some("done") => break polled,
            Some("running") => {
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected job state {other:?}: {polled:?}"),
        }
    };
    assert_eq!(done.get("progress").and_then(Json::as_f64), Some(1.0));
    let tables = done
        .get("result")
        .and_then(|r| r.get("tables"))
        .and_then(Json::as_array)
        .expect("result tables");
    assert_eq!(tables.len(), direct.tables().len());
    for summary in tables {
        let name = summary.get("table").and_then(Json::as_str).unwrap();
        let rows = summary.get("rows").and_then(Json::as_u64).unwrap() as usize;
        let want = direct.table_by_name(name).unwrap().num_rows();
        assert_eq!(rows, want, "table {name}: server {rows} != direct {want}");
    }
    server.shutdown();
}
