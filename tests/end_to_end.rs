//! End-to-end integration tests spanning every crate: dataset → workload →
//! training → generation → evaluation. Kept at tiny scale (debug builds).

use sam::prelude::*;

fn tiny_sam_config(seed: u64) -> SamConfig {
    SamConfig {
        model: ArModelConfig {
            hidden: vec![24],
            seed,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 1e-2,
            seed,
            ..Default::default()
        },
        encoding: EncodingOptions::default(),
    }
}

#[test]
fn census_pipeline_satisfies_constraints() {
    let target = sam::datasets::census(600, 11);
    let stats = DatabaseStats::from_database(&target);
    let mut gen = WorkloadGenerator::new(&target, 11);
    let workload = label_workload(&target, gen.single_workload("census", 150)).unwrap();

    let trained = Sam::fit(target.schema(), &stats, &workload, &tiny_sam_config(11)).unwrap();
    let (synthetic, _) = trained.generate(&GenerationConfig::default()).unwrap();

    assert_eq!(synthetic.tables()[0].num_rows(), 600);
    let qe: Vec<f64> = workload
        .iter()
        .map(|lq| {
            let got = evaluate_cardinality(&synthetic, &lq.query).unwrap() as f64;
            q_error(got, lq.cardinality as f64)
        })
        .collect();
    let p = Percentiles::from_values(&qe);
    assert!(p.median < 3.0, "median Q-Error too high: {}", p.median);
}

#[test]
fn imdb_pipeline_reproduces_sizes_and_joins() {
    let target = sam::datasets::imdb(&sam::datasets::ImdbConfig {
        titles: 250,
        seed: 5,
        ..Default::default()
    });
    let stats = DatabaseStats::from_database(&target);
    let mut gen = WorkloadGenerator::new(&target, 5);
    let workload = label_workload(&target, gen.multi_workload(200, 2)).unwrap();

    let trained = Sam::fit(target.schema(), &stats, &workload, &tiny_sam_config(5)).unwrap();
    let (synthetic, _) = trained
        .generate(&GenerationConfig {
            foj_samples: 4_000,
            batch: 256,
            seed: 3,
            strategy: JoinKeyStrategy::GroupAndMerge,
        })
        .unwrap();

    // Sizes near targets (tiny model + tiny workload → loose bound; the
    // quick-scale experiments land within a fraction of a percent).
    for t in target.tables() {
        let want = t.num_rows() as f64;
        let got = synthetic.table_by_name(t.name()).unwrap().num_rows() as f64;
        assert!(
            (got - want).abs() <= (want * 0.30).max(10.0),
            "{}: {got} vs {want}",
            t.name()
        );
    }

    // Unfiltered 2-way joins land in the right ballpark.
    for fact in ["cast_info", "movie_info"] {
        let q = Query::join(vec!["title".into(), fact.into()], vec![]);
        let want = evaluate_cardinality(&target, &q).unwrap() as f64;
        let got = evaluate_cardinality(&synthetic, &q).unwrap() as f64;
        assert!(
            q_error(got, want) < 1.5,
            "{fact}: join size {got} vs {want}"
        );
    }
}

#[test]
fn pgm_baseline_runs_end_to_end() {
    let target = sam::datasets::census(400, 2);
    let stats = DatabaseStats::from_database(&target);
    let mut gen = WorkloadGenerator::new(&target, 2);
    let workload = label_workload(&target, gen.single_workload("census", 10)).unwrap();

    let pgm = sam::pgm::fit_single_pgm(
        target.tables()[0].schema(),
        &stats.table(0).columns,
        stats.table(0).num_rows,
        &workload.queries,
        &sam::pgm::PgmConfig::default(),
    );
    assert!(!pgm.exceeded);
    let table = pgm.generate(target.tables()[0].schema(), 400, 2);
    assert_eq!(table.num_rows(), 400);
}

#[test]
fn ablation_strategies_both_generate_valid_databases() {
    let target = sam::datasets::imdb(&sam::datasets::ImdbConfig {
        titles: 150,
        seed: 9,
        ..Default::default()
    });
    let stats = DatabaseStats::from_database(&target);
    let mut gen = WorkloadGenerator::new(&target, 9);
    let workload = label_workload(&target, gen.multi_workload(120, 2)).unwrap();
    let trained = Sam::fit(target.schema(), &stats, &workload, &tiny_sam_config(9)).unwrap();

    for strategy in [
        JoinKeyStrategy::GroupAndMerge,
        JoinKeyStrategy::PairwiseViews,
    ] {
        let (db, _) = trained
            .generate(&GenerationConfig {
                foj_samples: 2_000,
                batch: 256,
                seed: 9,
                strategy,
            })
            .unwrap();
        // Referential integrity was checked during assembly; spot-check a
        // join evaluates without error.
        let q = Query::join(vec!["title".into(), "movie_keyword".into()], vec![]);
        evaluate_cardinality(&db, &q).unwrap();
    }
}

#[test]
fn engine_agrees_with_evaluator_on_generated_data() {
    let target = sam::datasets::census(300, 4);
    let stats = DatabaseStats::from_database(&target);
    let mut gen = WorkloadGenerator::new(&target, 4);
    let workload = label_workload(&target, gen.single_workload("census", 60)).unwrap();
    let trained = Sam::fit(target.schema(), &stats, &workload, &tiny_sam_config(4)).unwrap();
    let (synthetic, _) = trained.generate(&GenerationConfig::default()).unwrap();

    let engine = sam::engine::Engine::new(&synthetic);
    for lq in workload.iter().take(20) {
        let (count, _) = engine.count(&lq.query).unwrap();
        assert_eq!(count, evaluate_cardinality(&synthetic, &lq.query).unwrap());
    }
}
