//! CLI validation of the `--backend` kernel selector: unknown kernels are
//! rejected up front with the valid list (`serve` refuses to start), and
//! every shipped kernel name is accepted by the flag parser.

use std::process::Command;

fn sam_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sam-cli"))
}

#[test]
fn serve_refuses_to_start_on_unknown_backend() {
    let out = sam_cli()
        .args(["serve", "--addr", "127.0.0.1:0", "--backend", "turbo"])
        .output()
        .expect("run sam-cli");
    assert!(
        !out.status.success(),
        "serve must refuse to start on an unknown backend"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown backend"),
        "error names the problem: {stderr}"
    );
    for kernel in ["f32", "f16", "int8"] {
        assert!(
            stderr.contains(kernel),
            "error lists valid kernel {kernel}: {stderr}"
        );
    }
}

#[test]
fn serve_accepts_every_shipped_kernel_name() {
    // A missing model file fails *after* flag validation, so reaching the
    // "cannot read model file" error proves the backend name parsed.
    for kernel in ["f32", "f16", "int8"] {
        let out = sam_cli()
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--backend",
                kernel,
                "--models",
                "m=/nonexistent/model.json",
            ])
            .output()
            .expect("run sam-cli");
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot read model file"),
            "--backend {kernel} must parse (got: {stderr})"
        );
        assert!(
            !stderr.contains("unknown backend"),
            "--backend {kernel} wrongly rejected: {stderr}"
        );
    }
}
