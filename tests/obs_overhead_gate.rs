//! Overhead regression gate for the observability layer: with the flight
//! recorder at production capacity and 1% quality sampling, a keep-alive
//! estimate burst must not be more than 2% slower (plus a small absolute
//! epsilon for scheduler noise) than a server with observability dialed to
//! its minimum. Run by CI with `-- --ignored` in release mode; `#[ignore]`d
//! by default because a timing gate under a debug build measures nothing.

use sam::prelude::*;
use sam::serve::{ServeConfig, Server};
use sam::storage::paper_example;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const BURST: usize = 300;
const ROUNDS: usize = 5;
/// Relative budget from the issue: observability may cost at most 2%.
const MAX_RELATIVE_OVERHEAD: f64 = 0.02;
/// Absolute epsilon so a sub-100µs estimate path doesn't fail the gate on
/// scheduler noise: on a single-core runner the background quality scorer
/// competes with the inference worker for the same CPU, which shows up as
/// a few µs of jitter that a purely relative budget cannot absorb.
/// Measured overhead is 1–4µs; a real synchronous stall still fails.
const EPSILON: Duration = Duration::from_micros(25);

fn train_demo_model() -> (TrainedSam, String) {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 13);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let sql = workload
        .iter()
        .map(|lq| lq.query.to_string())
        .find(|s| parse_query(s).is_ok())
        .expect("round-trippable query");
    (trained, sql)
}

/// One keep-alive connection, `n` sequential estimate requests with
/// distinct seeds (cache misses, so the full estimate path runs each
/// time); returns the median request latency.
fn burst_median(addr: std::net::SocketAddr, sql: &str, n: usize, seed_base: u64) -> Duration {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(n);
    for i in 0..n {
        let body = format!(
            "{{\"model\":\"demo\",\"sql\":{},\"samples\":32,\"seed\":{}}}",
            serde_json::to_string(&serde_json::json!(sql)).unwrap(),
            seed_base + i as u64
        );
        let request = format!(
            "POST /estimate HTTP/1.1\r\nHost: gate\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let started = Instant::now();
        reader.get_mut().write_all(request.as_bytes()).unwrap();
        read_one_response(&mut reader);
        latencies.push(started.elapsed());
    }
    latencies.sort();
    latencies[latencies.len() / 2]
}

/// Read one content-length-framed HTTP response and discard it.
fn read_one_response(reader: &mut BufReader<TcpStream>) {
    let mut line = String::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "connection died");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
}

fn start_server(trained: TrainedSam, quality_sample: f64, flight_capacity: usize) -> Server {
    let server = Server::start(ServeConfig {
        workers: 2,
        max_batch: 8,
        // The gate exercises the full estimate path: no cache assists.
        cache_capacity: 0,
        quality_sample,
        flight_capacity,
        ..ServeConfig::default()
    })
    .expect("start server");
    server.registry().insert("demo", trained);
    server
}

#[test]
#[ignore = "timing gate; run in release via CI (-- --ignored)"]
fn obs_overhead_under_two_percent() {
    let (trained, sql) = train_demo_model();
    let bare = start_server(trained.clone(), 0.0, 1);
    let instrumented = start_server(trained, 0.01, 512);

    // Warm both paths (thread spin-up, allocator, branch predictors).
    burst_median(bare.addr(), &sql, 50, 1_000_000);
    burst_median(instrumented.addr(), &sql, 50, 1_000_000);

    // Interleave rounds so drift (thermal, other tenants) hits both
    // configurations equally; keep the per-config minimum of medians,
    // which filters additive noise.
    let mut bare_best = Duration::MAX;
    let mut instr_best = Duration::MAX;
    for round in 0..ROUNDS {
        let base = (round as u64 + 1) * 10_000;
        bare_best = bare_best.min(burst_median(bare.addr(), &sql, BURST, base));
        instr_best = instr_best.min(burst_median(instrumented.addr(), &sql, BURST, base));
    }

    let budget = bare_best.mul_f64(1.0 + MAX_RELATIVE_OVERHEAD) + EPSILON;
    eprintln!(
        "obs overhead gate: bare median {:?}, instrumented median {:?}, budget {:?} ({:+.2}%)",
        bare_best,
        instr_best,
        budget,
        (instr_best.as_secs_f64() / bare_best.as_secs_f64() - 1.0) * 100.0
    );
    assert!(
        instr_best <= budget,
        "observability overhead too high: bare {bare_best:?} vs instrumented {instr_best:?} \
         (budget {budget:?})"
    );
}
