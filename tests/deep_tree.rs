//! End-to-end coverage of the recursive multi-key Group-and-Merge on a
//! three-level join tree `org -> team -> member` — the case the paper
//! defers to its full version ("Alg. 3 can be easily extended to handle
//! multiple join keys by merging samples in a recursive manner").

use rand::prelude::*;
use rand::rngs::StdRng;
use sam::prelude::*;
use sam::storage::{ColumnDef, ForeignKeyEdge, Table, TableSchema};

/// org(id, sector) -> team(id, org_id, size_class) -> member(team_id, role).
fn deep_db(orgs: usize, seed: u64) -> Database {
    let org_schema = TableSchema::new(
        "org",
        vec![
            ColumnDef::primary_key("id"),
            ColumnDef::content("sector", DataType::Int),
        ],
    );
    let team_schema = TableSchema::new(
        "team",
        vec![
            ColumnDef::primary_key("id"),
            ColumnDef::foreign_key("org_id", "org"),
            ColumnDef::content("size_class", DataType::Int),
        ],
    );
    let member_schema = TableSchema::new(
        "member",
        vec![
            ColumnDef::foreign_key("team_id", "team"),
            ColumnDef::content("role", DataType::Int),
        ],
    );
    let schema = sam::storage::DatabaseSchema::new(
        vec![
            org_schema.clone(),
            team_schema.clone(),
            member_schema.clone(),
        ],
        vec![
            ForeignKeyEdge {
                pk_table: "org".into(),
                fk_table: "team".into(),
                fk_column: "org_id".into(),
            },
            ForeignKeyEdge {
                pk_table: "team".into(),
                fk_table: "member".into(),
                fk_column: "team_id".into(),
            },
        ],
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut org_rows = Vec::new();
    let mut team_rows = Vec::new();
    let mut member_rows = Vec::new();
    let mut team_id = 0i64;
    for org in 1..=orgs as i64 {
        let sector = rng.gen_range(0..4i64);
        org_rows.push(vec![Value::Int(org), Value::Int(sector)]);
        // Sector drives team count; size class drives member fanout.
        let teams = 1 + rng.gen_range(0..=(sector as usize + 1));
        for _ in 0..teams {
            team_id += 1;
            let size_class = rng.gen_range(0..3i64);
            team_rows.push(vec![
                Value::Int(team_id),
                Value::Int(org),
                Value::Int(size_class),
            ]);
            let members = (size_class as usize + 1) * 2;
            for _ in 0..members {
                // Role correlates with sector — a cross-level correlation
                // only the full-outer-join model can see.
                let role = (sector + rng.gen_range(0..2i64)) % 5;
                member_rows.push(vec![Value::Int(team_id), Value::Int(role)]);
            }
        }
    }
    Database::new(
        schema,
        vec![
            Table::from_rows(org_schema, &org_rows).unwrap(),
            Table::from_rows(team_schema, &team_rows).unwrap(),
            Table::from_rows(member_schema, &member_rows).unwrap(),
        ],
        true,
    )
    .unwrap()
}

#[test]
fn three_level_tree_pipeline() {
    let target = deep_db(120, 5);
    let stats = DatabaseStats::from_database(&target);
    assert_eq!(
        target.graph().ancestors(2),
        vec![1, 0],
        "member -> team -> org"
    );

    let mut gen = WorkloadGenerator::new(&target, 5);
    let workload = label_workload(&target, gen.multi_workload(250, 2)).unwrap();

    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![24],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 1e-2,
            seed: 5,
            ..Default::default()
        },
        encoding: EncodingOptions::default(),
    };
    let trained = Sam::fit(target.schema(), &stats, &workload, &config).unwrap();
    let (synthetic, _) = trained
        .generate(&GenerationConfig {
            foj_samples: 4_000,
            batch: 256,
            seed: 5,
            strategy: JoinKeyStrategy::GroupAndMerge,
        })
        .unwrap();

    // All three levels regenerate near their sizes.
    for t in target.tables() {
        let want = t.num_rows() as f64;
        let got = synthetic.table_by_name(t.name()).unwrap().num_rows() as f64;
        assert!(
            (got - want).abs() <= (want * 0.30).max(10.0),
            "{}: {got} vs {want}",
            t.name()
        );
    }

    // fk integrity across BOTH levels held (checked during assembly), and
    // the 3-level chain join has sane cardinality.
    let chain = Query::join(vec!["org".into(), "team".into(), "member".into()], vec![]);
    let want = evaluate_cardinality(&target, &chain).unwrap() as f64;
    let got = evaluate_cardinality(&synthetic, &chain).unwrap() as f64;
    assert!(
        q_error(got, want) < 2.0,
        "3-level chain join: {got} vs {want}"
    );
}

#[test]
fn deep_tree_exact_recovery_from_true_foj() {
    // With ideal samples (the true FOJ), the recursive Group-and-Merge must
    // reproduce every join cardinality exactly, across both key levels.
    use sam::ar::{ArSchema, EncodingOptions};
    use sam::core::assemble_database;
    use sam::storage::materialize_foj;

    let db = deep_db(40, 9);
    let stats = DatabaseStats::from_database(&db);
    let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let foj = materialize_foj(&db);
    let rows: Vec<Vec<u32>> = (0..foj.num_rows())
        .map(|r| {
            ar.columns()
                .iter()
                .map(|col| {
                    let pos = match col.kind {
                        sam::ar::ArColumnKind::Content { table, column } => {
                            foj.schema.content_position(table, column).unwrap()
                        }
                        sam::ar::ArColumnKind::Indicator { table } => {
                            foj.schema.indicator_index(table).unwrap()
                        }
                        sam::ar::ArColumnKind::Fanout { table } => {
                            foj.schema.fanout_index(table).unwrap()
                        }
                    };
                    let v = foj.value(r, pos);
                    let code = col.encoding.base_domain().code_of(&v).unwrap_or(0);
                    col.encoding.bin_of_code(code) as u32
                })
                .collect()
        })
        .collect();

    let generated =
        assemble_database(db.schema(), &ar, &rows, JoinKeyStrategy::GroupAndMerge, 7).unwrap();

    for t in db.tables() {
        assert_eq!(
            generated.table_by_name(t.name()).unwrap().num_rows(),
            t.num_rows(),
            "size of {}",
            t.name()
        );
    }
    let mut gen = WorkloadGenerator::new(&db, 11);
    let mut exact = 0usize;
    let mut total = 0usize;
    for q in gen.multi_workload(80, 2) {
        let want = evaluate_cardinality(&db, &q).unwrap();
        let got = evaluate_cardinality(&generated, &q).unwrap();
        total += 1;
        if want == got {
            exact += 1;
        }
        // Every query must be close even when the recursive carving had to
        // split fractional pieces.
        assert!(
            q_error(got as f64, want as f64) < 1.6,
            "query {q}: {got} vs {want}"
        );
    }
    assert!(
        exact * 10 >= total * 7,
        "only {exact}/{total} queries exactly recovered"
    );
}
