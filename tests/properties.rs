//! Cross-crate property-based tests (proptest): join algebra, weighting,
//! and evaluator invariants on randomly generated star databases.

use proptest::prelude::*;
use sam::ar::{ArSchema, EncodingOptions};
use sam::core::weigh_samples;
use sam::prelude::*;
use sam::storage::{foj_size, materialize_foj, ColumnDef, ForeignKeyEdge, Table, TableSchema};

/// A random small star database A -> {B, C} with integer content columns.
fn star_db(
    a_vals: Vec<u8>,
    b_rows: Vec<(u8, u8)>, // (key index into a, content)
    c_rows: Vec<(u8, u8)>,
) -> Database {
    let a_schema = TableSchema::new(
        "A",
        vec![
            ColumnDef::primary_key("x"),
            ColumnDef::content("a", DataType::Int),
        ],
    );
    let b_schema = TableSchema::new(
        "B",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("b", DataType::Int),
        ],
    );
    let c_schema = TableSchema::new(
        "C",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("c", DataType::Int),
        ],
    );
    let schema = sam::storage::DatabaseSchema::new(
        vec![a_schema.clone(), b_schema.clone(), c_schema.clone()],
        vec![
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            },
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "C".into(),
                fk_column: "x".into(),
            },
        ],
    )
    .unwrap();

    let n = a_vals.len() as u8;
    let a_rows: Vec<Vec<Value>> = a_vals
        .iter()
        .enumerate()
        .map(|(i, &v)| vec![Value::Int(i as i64), Value::Int(v as i64)])
        .collect();
    let to_rows = |rows: &[(u8, u8)]| -> Vec<Vec<Value>> {
        rows.iter()
            .map(|&(k, v)| vec![Value::Int((k % n) as i64), Value::Int(v as i64)])
            .collect()
    };
    Database::new(
        schema,
        vec![
            Table::from_rows(a_schema, &a_rows).unwrap(),
            Table::from_rows(b_schema, &to_rows(&b_rows)).unwrap(),
            Table::from_rows(c_schema, &to_rows(&c_rows)).unwrap(),
        ],
        true,
    )
    .unwrap()
}

fn star_strategy() -> impl Strategy<Value = Database> {
    (
        prop::collection::vec(0u8..4, 1..6),
        prop::collection::vec((0u8..6, 0u8..4), 0..10),
        prop::collection::vec((0u8..6, 0u8..4), 0..10),
    )
        .prop_map(|(a, b, c)| star_db(a, b, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The counting FOJ size always equals the materialised row count.
    #[test]
    fn foj_size_matches_materialisation(db in star_strategy()) {
        let counted = foj_size(&db);
        let materialised = materialize_foj(&db).num_rows() as u128;
        prop_assert_eq!(counted, materialised);
    }

    /// The fast evaluator agrees with the naive reference on random queries.
    #[test]
    fn evaluators_agree(db in star_strategy(), seed in 0u64..500) {
        let mut gen = WorkloadGenerator::new(&db, seed);
        for q in gen.multi_workload(8, 2) {
            let fast = evaluate_cardinality(&db, &q).unwrap();
            let naive = sam::query::evaluate_naive(&db, &q).unwrap();
            prop_assert_eq!(fast, naive, "query {}", q);
        }
    }

    /// Engine counts agree with the evaluator on random queries.
    #[test]
    fn engine_agrees(db in star_strategy(), seed in 0u64..500) {
        let engine = sam::engine::Engine::new(&db);
        let mut gen = WorkloadGenerator::new(&db, seed);
        for q in gen.multi_workload(6, 2) {
            let (count, _) = engine.count(&q).unwrap();
            prop_assert_eq!(count, evaluate_cardinality(&db, &q).unwrap());
        }
    }

    /// IPW over the *exact* FOJ recovers every base relation's weight mass:
    /// scaled weights sum to |T| per table, and raw weights sum to |T| too
    /// (Theorem 1's finite-population identity: Σ_FOJ W_T = |T| exactly
    /// when the whole FOJ is the sample).
    #[test]
    fn ipw_mass_identity(db in star_strategy()) {
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let foj = materialize_foj(&db);
        // Convert the exact FOJ into model rows.
        let rows: Vec<Vec<u32>> = (0..foj.num_rows()).map(|r| {
            ar.columns().iter().map(|col| {
                let pos = match col.kind {
                    sam::ar::ArColumnKind::Content { table, column } =>
                        foj.schema.content_position(table, column).unwrap(),
                    sam::ar::ArColumnKind::Indicator { table } =>
                        foj.schema.indicator_index(table).unwrap(),
                    sam::ar::ArColumnKind::Fanout { table } =>
                        foj.schema.fanout_index(table).unwrap(),
                };
                let v = foj.value(r, pos);
                let code = col.encoding.base_domain().code_of(&v).unwrap_or(0);
                col.encoding.bin_of_code(code) as u32
            }).collect()
        }).collect();
        let w = weigh_samples(&ar, &rows);
        for t in 0..3 {
            let raw: f64 = w.weight.iter().map(|r| r[t]).sum();
            prop_assert!((raw - stats.table(t).num_rows as f64).abs() < 1e-6,
                "table {}: raw mass {} vs |T| {}", t, raw, stats.table(t).num_rows);
            let scaled: f64 = w.scaled.iter().map(|r| r[t]).sum();
            if stats.table(t).num_rows > 0 {
                prop_assert!((scaled - stats.table(t).num_rows as f64).abs() < 1e-6);
            }
        }
    }

    /// SQL rendering round-trips through the parser for generated queries.
    #[test]
    fn sql_round_trip(db in star_strategy(), seed in 0u64..500) {
        let mut gen = WorkloadGenerator::new(&db, seed);
        for q in gen.multi_workload(6, 2) {
            let parsed = parse_query(&q.to_string()).unwrap();
            prop_assert_eq!(parsed, q);
        }
    }
}
