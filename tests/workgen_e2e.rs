//! End-to-end workload tooling through the `sam::workgen` facade: profile
//! round-trip, byte-identical synthesis, seed disjointness, adversarial
//! mining beating its baseline, and a live open-loop replay against a real
//! in-process server.

use sam::prelude::*;
use sam::workgen::{
    mine_hard_queries, run_load, synthesize, synthesize_into, LoadConfig, MinerConfig,
    SynthProfile, SynthTarget,
};
use std::collections::HashSet;
use std::time::Duration;

fn census_db() -> Database {
    sam::datasets::census(400, 11)
}

fn synth_text(db: &Database, profile: &SynthProfile, seed: u64, count: u64, label: bool) -> String {
    let target = SynthTarget::from_database(db, profile).unwrap();
    let mut buf = Vec::new();
    let label_db = if label { Some(db) } else { None };
    synthesize_into(&target, profile, seed, count, label_db, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn same_profile_and_seed_is_byte_identical_and_distinct_seeds_are_disjoint() {
    let db = census_db();
    let profile = SynthProfile::default();

    let a = synth_text(&db, &profile, 42, 200, false);
    let b = synth_text(&db, &profile, 42, 200, false);
    assert_eq!(a, b, "same profile + seed must reproduce byte-for-byte");

    // A profile that survives a TOML round trip produces the same bytes.
    let round = SynthProfile::from_toml(&profile.to_toml()).unwrap();
    assert_eq!(round, profile);
    assert_eq!(synth_text(&db, &round, 42, 200, false), a);

    let c = synth_text(&db, &profile, 43, 200, false);
    let set_a: HashSet<&str> = a.lines().collect();
    let set_c: HashSet<&str> = c.lines().collect();
    let overlap = set_a.intersection(&set_c).count();
    assert!(
        overlap * 10 < set_a.len(),
        "different seeds should explore mostly different queries ({overlap} shared)"
    );
}

#[test]
fn synthesized_lines_parse_and_labels_match_ground_truth() {
    let db = census_db();
    let profile = SynthProfile::default();
    let text = synth_text(&db, &profile, 7, 64, true);
    let mut checked = 0;
    for line in text.lines() {
        let (sql, card) = line.split_once(" -- card=").expect("labelled line");
        let q = parse_query(sql).expect("emitted SQL parses back");
        let truth = evaluate_cardinality(&db, &q).unwrap();
        assert_eq!(truth, card.parse::<u64>().unwrap(), "label matches: {sql}");
        checked += 1;
    }
    assert!(checked >= 32, "expected a real batch, got {checked}");
}

fn quick_model(db: &Database) -> sam::core::TrainedSam {
    let stats = DatabaseStats::from_database(db);
    let mut gen = WorkloadGenerator::new(db, 5);
    let workload = label_workload(db, gen.single_workload(db.tables()[0].name(), 32)).unwrap();
    let config = SamConfig {
        model: sam::ar::ArModelConfig {
            hidden: vec![12],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: sam::ar::TrainConfig {
            epochs: 3,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

#[test]
fn miner_beats_the_synthesized_baseline() {
    let db = sam::storage::paper_example::figure3_database();
    let trained = quick_model(&db);
    let profile = SynthProfile::default();
    let target = SynthTarget::from_database(&db, &profile).unwrap();
    let seeds = synthesize(&target, &profile, 3, 24);
    assert!(!seeds.is_empty());

    let config = MinerConfig {
        top_k: 5,
        rounds: 4,
        samples: 32,
        ..Default::default()
    };
    let report = mine_hard_queries(trained.model(), &db, &seeds, &config).unwrap();

    let worst = report.worst.first().expect("non-empty worst set");
    assert!(
        worst.q_error >= report.baseline_max - 1e-9,
        "mined worst ({}) must dominate the seed baseline max ({})",
        worst.q_error,
        report.baseline_max
    );
    for pair in report.worst_trail.windows(2) {
        assert!(
            pair[1] >= pair[0] - 1e-12,
            "worst Q-Error climbs monotonically"
        );
    }
    // The report is reproducible: a second run is identical.
    let again = mine_hard_queries(trained.model(), &db, &seeds, &config).unwrap();
    assert_eq!(again.worst.len(), report.worst.len());
    for (a, b) in again.worst.iter().zip(&report.worst) {
        assert_eq!(a.query.canonical_string(), b.query.canonical_string());
        assert_eq!(a.truth, b.truth);
    }
}

#[test]
fn load_replay_against_live_server_reports_finite_percentiles_and_no_5xx() {
    let db = sam::storage::paper_example::figure3_database();
    let server = sam::serve::Server::start(sam::serve::ServeConfig::default()).unwrap();
    server.registry().insert("e2e", quick_model(&db));

    let profile = SynthProfile::default();
    let target = SynthTarget::from_database(&db, &profile).unwrap();
    let trace = synthesize(&target, &profile, 13, 16);

    let config = LoadConfig {
        addr: server.addr().to_string(),
        model: "e2e".to_string(),
        rate: 150.0,
        connections: 2,
        duration: Duration::from_millis(800),
        samples: 16,
        timeout_ms: 5_000,
    };
    let report = run_load(&trace, &config).unwrap();
    assert!(report.completed > 0);
    assert_eq!(report.status_5xx, 0);
    assert_eq!(report.status_4xx, 0);
    assert!(report.latency.p99_ms.is_finite() && report.latency.p99_ms > 0.0);
    assert!(report.throughput > 0.0);
    server.shutdown();
}
