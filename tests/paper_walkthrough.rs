//! The paper's worked examples, end to end: Figure 3's inverse probability
//! weighting and Group-and-Merge walkthrough must reproduce the original
//! database *exactly* when fed ideal full-outer-join samples.

use sam::ar::{ArSchema, EncodingOptions, ModelRow};
use sam::core::{assemble_database, JoinKeyStrategy};
use sam::prelude::*;
use sam::storage::{materialize_foj, paper_example, DatabaseStats};

/// Convert the *true* FOJ of the Figure-3 database into model rows — the
/// ideal sample an exact AR model would produce.
fn ideal_samples(db: &Database, ar: &ArSchema) -> Vec<ModelRow> {
    let foj = materialize_foj(db);
    let mut rows = Vec::with_capacity(foj.num_rows());
    for r in 0..foj.num_rows() {
        let mut row = vec![0u32; ar.num_columns()];
        for (pos, col) in ar.columns().iter().enumerate() {
            let foj_pos = match col.kind {
                sam::ar::ArColumnKind::Content { table, column } => {
                    foj.schema.content_position(table, column).unwrap()
                }
                sam::ar::ArColumnKind::Indicator { table } => {
                    foj.schema.indicator_index(table).unwrap()
                }
                sam::ar::ArColumnKind::Fanout { table } => foj.schema.fanout_index(table).unwrap(),
            };
            let value = foj.value(r, foj_pos);
            // NULL content on an absent side: any code works (the
            // indicator gates it); default 0.
            let code = col
                .encoding
                .base_domain()
                .code_of(&value)
                .unwrap_or_default();
            row[pos] = col.encoding.bin_of_code(code) as u32;
        }
        rows.push(row);
    }
    rows
}

#[test]
fn figure3_exact_recovery_with_ideal_samples() {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let samples = ideal_samples(&db, &ar);
    assert_eq!(samples.len(), 8); // |FOJ| of Figure 3

    let generated = assemble_database(
        db.schema(),
        &ar,
        &samples,
        JoinKeyStrategy::GroupAndMerge,
        1,
    )
    .unwrap();

    // Table sizes exactly recovered.
    for t in db.tables() {
        assert_eq!(
            generated.table_by_name(t.name()).unwrap().num_rows(),
            t.num_rows(),
            "size of {}",
            t.name()
        );
    }

    // Every join cardinality exactly recovered ("it is exactly the same as
    // the original database", §4.3.2).
    for q in [
        Query::join(vec!["A".into(), "B".into()], vec![]),
        Query::join(vec!["A".into(), "C".into()], vec![]),
        Query::join(vec!["B".into(), "C".into()], vec![]),
        Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
    ] {
        assert_eq!(
            evaluate_cardinality(&generated, &q).unwrap(),
            evaluate_cardinality(&db, &q).unwrap(),
            "query {q}"
        );
    }

    // Content marginals exactly recovered.
    for (table, column) in [("A", "a"), ("B", "b"), ("C", "c")] {
        let orig = db.table_by_name(table).unwrap();
        let gen = generated.table_by_name(table).unwrap();
        let count = |t: &Table, v: &Value| {
            t.column_by_name(column)
                .unwrap()
                .iter()
                .filter(|x| x == v)
                .count()
        };
        for v in orig.column_by_name(column).unwrap().domain().values() {
            assert_eq!(count(gen, v), count(orig, v), "{table}.{column} = {v}");
        }
    }
}

#[test]
fn figure3_filtered_join_queries_also_recover() {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let samples = ideal_samples(&db, &ar);
    let generated = assemble_database(
        db.schema(),
        &ar,
        &samples,
        JoinKeyStrategy::GroupAndMerge,
        2,
    )
    .unwrap();

    // Filtered join queries — the cardinality constraints a workload would
    // contain — must match exactly too.
    let mut gen = WorkloadGenerator::new(&db, 123);
    for q in gen.multi_workload(60, 2) {
        assert_eq!(
            evaluate_cardinality(&generated, &q).unwrap(),
            evaluate_cardinality(&db, &q).unwrap(),
            "query {q}"
        );
    }
}

#[test]
fn pairwise_strategy_breaks_sibling_correlation_on_adversarial_foj() {
    // A sharpened version of the paper's Figure 4 argument: B and C values
    // are perfectly correlated per key, but A's content cannot tell the
    // keys apart. Group-and-Merge preserves the B⋈C correlation; pairwise
    // view matching cannot do better than chance.
    use sam::storage::{ColumnDef, DatabaseSchema, ForeignKeyEdge, Table, TableSchema};

    let a_schema = TableSchema::new(
        "A",
        vec![
            ColumnDef::primary_key("x"),
            ColumnDef::content("a", DataType::Str),
        ],
    );
    let b_schema = TableSchema::new(
        "B",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("b", DataType::Int),
        ],
    );
    let c_schema = TableSchema::new(
        "C",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("c", DataType::Int),
        ],
    );
    let schema = DatabaseSchema::new(
        vec![a_schema.clone(), b_schema.clone(), c_schema.clone()],
        vec![
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            },
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "C".into(),
                fk_column: "x".into(),
            },
        ],
    )
    .unwrap();

    // 20 keys, all with a = 'same'; B and C carry the key parity — B=C=i%2.
    let mut a_rows = Vec::new();
    let mut b_rows = Vec::new();
    let mut c_rows = Vec::new();
    for i in 0..20i64 {
        a_rows.push(vec![Value::Int(i), Value::str("same")]);
        b_rows.push(vec![Value::Int(i), Value::Int(i % 2)]);
        c_rows.push(vec![Value::Int(i), Value::Int(i % 2)]);
    }
    let db = Database::new(
        schema.clone(),
        vec![
            Table::from_rows(a_schema, &a_rows).unwrap(),
            Table::from_rows(b_schema, &b_rows).unwrap(),
            Table::from_rows(c_schema, &c_rows).unwrap(),
        ],
        true,
    )
    .unwrap();

    let stats = DatabaseStats::from_database(&db);
    let ar =
        sam::ar::ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let samples = super_ideal(&db, &ar);

    // Query: B.b = 0 AND C.c = 1 — zero in the original (parities agree).
    let q = Query::join(
        vec!["B".into(), "C".into()],
        vec![
            Predicate::compare("B", "b", CompareOp::Eq, 0i64),
            Predicate::compare("C", "c", CompareOp::Eq, 1i64),
        ],
    );
    assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 0);

    let gam = assemble_database(
        db.schema(),
        &ar,
        &samples,
        JoinKeyStrategy::GroupAndMerge,
        3,
    )
    .unwrap();
    let pairwise = assemble_database(
        db.schema(),
        &ar,
        &samples,
        JoinKeyStrategy::PairwiseViews,
        3,
    )
    .unwrap();

    let gam_card = evaluate_cardinality(&gam, &q).unwrap();
    let pairwise_card = evaluate_cardinality(&pairwise, &q).unwrap();
    assert_eq!(gam_card, 0, "Group-and-Merge must keep parities aligned");
    assert!(
        pairwise_card > 0,
        "pairwise matching on A's content alone must mix parities"
    );
}

/// Ideal samples helper shared with the first test (re-derivation for the
/// custom database).
fn super_ideal(db: &Database, ar: &sam::ar::ArSchema) -> Vec<ModelRow> {
    let foj = materialize_foj(db);
    (0..foj.num_rows())
        .map(|r| {
            ar.columns()
                .iter()
                .map(|col| {
                    let foj_pos = match col.kind {
                        sam::ar::ArColumnKind::Content { table, column } => {
                            foj.schema.content_position(table, column).unwrap()
                        }
                        sam::ar::ArColumnKind::Indicator { table } => {
                            foj.schema.indicator_index(table).unwrap()
                        }
                        sam::ar::ArColumnKind::Fanout { table } => {
                            foj.schema.fanout_index(table).unwrap()
                        }
                    };
                    let value = foj.value(r, foj_pos);
                    let code = col.encoding.base_domain().code_of(&value).unwrap_or(0);
                    col.encoding.bin_of_code(code) as u32
                })
                .collect()
        })
        .collect()
}
