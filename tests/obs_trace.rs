//! Acceptance test for the observability layer: a traced train + generate
//! run must produce a valid Chrome trace with one span per training epoch
//! and one per generation stage.
//!
//! Kept in its own test binary: the trace collector is process-global, and
//! this test must see exactly the spans of its own run.

use sam::prelude::*;
use sam::storage::paper_example;
use serde_json::Value as Json;

const EPOCHS: usize = 5;

#[test]
fn traced_run_covers_every_epoch_and_generation_stage() {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 21);
    let workload = label_workload(&db, gen.multi_workload(16, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 2,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: EPOCHS,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };

    sam::obs::enable_tracing();
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let (generated, _) = trained
        .generate(&GenerationConfig {
            foj_samples: 200,
            batch: 64,
            seed: 3,
            strategy: JoinKeyStrategy::GroupAndMerge,
        })
        .unwrap();
    sam::obs::disable_tracing();
    assert_eq!(generated.tables().len(), 3);

    let trace = sam::obs::take_chrome_trace();
    let doc = serde_json::parse_value(&trace).expect("trace is valid JSON");
    let events = doc.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty(), "traced run must emit events");

    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .count()
    };
    assert_eq!(count("train"), 1, "one span for the training run");
    assert_eq!(count("epoch"), EPOCHS, "one span per training epoch");
    assert_eq!(count("generate"), 1, "one span for the generation run");
    for stage in ["sample", "weight", "scale", "group_merge", "assemble"] {
        assert_eq!(count(stage), 1, "one span for generation stage {stage}");
    }

    // Every complete event carries the fields Chrome/Perfetto require.
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_u64).is_some());
        assert!(e.get("dur").and_then(Json::as_u64).is_some());
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
    }

    // Epoch spans carry their epoch index as an arg, 0..EPOCHS.
    let mut epochs: Vec<u64> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("epoch"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("epoch"))
                .and_then(Json::as_str)
                .expect("epoch arg")
                .parse()
                .expect("numeric epoch")
        })
        .collect();
    epochs.sort_unstable();
    assert_eq!(epochs, (0..EPOCHS as u64).collect::<Vec<_>>());
}
