//! True crash recovery: SIGKILL a `sam-cli serve` process mid-generation,
//! restart it on the same journal directory, and require the resumed job to
//! finish and export **bit-for-bit** the database a fresh run with the same
//! seed produces. This is the end-to-end guarantee `--journal-dir` makes:
//! a crash costs wall time, never results.

use sam::prelude::*;
use sam::serve::http::decode_chunked;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One-shot request (`Connection: close`); returns status, raw header
/// block, and raw body bytes (still chunk-framed for chunked responses).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: crash\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head, raw[split + 4..].to_vec())
}

fn json_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, _, body) = request(addr, method, path, body);
    let text = std::str::from_utf8(&body).expect("UTF-8 body");
    (status, serde_json::parse_value(text).expect("JSON body"))
}

/// Train a tiny model on the Figure-3 database and persist it for the CLI.
fn train_and_save(dir: &Path) -> PathBuf {
    let db = sam::storage::paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 3,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let path = dir.join("model.json");
    std::fs::write(
        &path,
        sam::ar::save_model(trained.model(), trained.db_schema()),
    )
    .unwrap();
    path
}

/// Generate in-process through the **same load path the server uses**
/// (`load_model` + `Sam::from_frozen`), so the comparison pins down the
/// serving stack, not checkpoint round-tripping.
fn fresh_generate(model_path: &Path, config: &GenerationConfig) -> Database {
    let text = std::fs::read_to_string(model_path).unwrap();
    let (model, db_schema) = sam::ar::load_model(&text).unwrap();
    let report = sam::ar::TrainReport {
        epoch_losses: Vec::new(),
        constraints_processed: 0,
        wall_seconds: 0.0,
    };
    let trained = Sam::from_frozen(db_schema, model, report);
    let (db, _) = trained.generate(config).unwrap();
    db
}

/// Spawn `sam-cli serve` on an ephemeral port and parse the bound address
/// from its startup banner.
fn spawn_server(model: &Path, journal: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sam-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--models",
            &format!("demo={}", model.display()),
            "--journal-dir",
            &journal.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sam-cli serve");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read server stdout") == 0 {
            panic!("server exited before announcing its address");
        }
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("server address");
        }
    };
    // Keep draining stdout so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

#[test]
fn killed_server_resumes_job_and_export_matches_fresh_run() {
    let dir = std::env::temp_dir().join(format!("sam_crash_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_dir = dir.join("journal");
    let model_path = train_and_save(&dir);
    let gen_config = GenerationConfig {
        foj_samples: 20_000,
        batch: 64,
        seed: 11,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };

    // Submit a job and SIGKILL the server the moment the journal shows it
    // running — no drain, no terminal event, exactly a crash.
    let (mut child, addr) = spawn_server(&model_path, &journal_dir);
    let (status, accepted) = json_request(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 20000, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Json::as_u64).unwrap();

    let log = journal_dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !std::fs::read_to_string(&log)
        .unwrap_or_default()
        .contains("\"running\"")
    {
        assert!(Instant::now() < deadline, "job never reached running");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL server");
    let _ = child.wait();

    // Restart on the same journal: the job must come back under its id and
    // run to completion from its recorded seed.
    let (mut child, addr) = spawn_server(&model_path, &journal_dir);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, polled) = json_request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "job unknown after restart: {polled:?}");
        match polled.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("running") => {
                assert!(Instant::now() < deadline, "resumed job did not finish");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("resumed job in unexpected state {other:?}: {polled:?}"),
        }
    }

    // The journal must show an actual resume (the kill landed mid-job, so
    // replay re-spawned the job rather than reloading a completed one).
    let log_text = std::fs::read_to_string(&log).unwrap();
    assert!(
        log_text.contains("\"resumed\""),
        "restart did not resume the interrupted job:\n{log_text}"
    );

    // Every exported relation must match a fresh same-seed run exactly.
    let reference = fresh_generate(&model_path, &gen_config);
    for table in reference.tables() {
        let (status, head, body) = request(
            addr,
            "GET",
            &format!("/jobs/{id}/export?relation={}", table.name()),
            "",
        );
        assert_eq!(status, 200, "export {}", table.name());
        assert!(
            head.to_ascii_lowercase()
                .contains("transfer-encoding: chunked"),
            "{head}"
        );
        let exported = decode_chunked(&body).expect("well-formed chunked stream");
        let mut want = Vec::new();
        sam::storage::csv::write_csv(table, &mut want).unwrap();
        assert_eq!(
            exported,
            want,
            "table {}: resumed export differs from fresh run",
            table.name()
        );
    }

    child.kill().expect("stop server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
