//! Crash recovery for train-as-a-service: SIGKILL a `sam-cli serve` process
//! mid-training, restart it on the same journal directory, and require the
//! resumed job to finish, pass its shadow evaluation, and promote a model
//! **bit-for-bit identical** to the one an uninterrupted run with the same
//! spec produces. A crash costs wall time, never results — the same
//! guarantee generation jobs get, extended to training.

use sam::prelude::*;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn json_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: crash\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw.split("\r\n\r\n").nth(1).expect("body");
    (status, serde_json::parse_value(body).expect("JSON body"))
}

/// A deliberately weak incumbent (one epoch, width 2): the retrained
/// candidate must beat it, so both runs end in promotion.
fn write_incumbent_and_data(dir: &Path) -> (PathBuf, PathBuf) {
    let db = sam::storage::paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![2],
            seed: 3,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        sam::ar::save_model(trained.model(), trained.db_schema()),
    )
    .unwrap();

    let data_dir = dir.join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    for table in db.tables() {
        let mut file =
            std::fs::File::create(data_dir.join(format!("{}.csv", table.name()))).unwrap();
        sam::storage::csv::write_csv(table, &mut file).unwrap();
        file.flush().unwrap();
    }
    (model_path, data_dir)
}

/// The workload the candidate retrains on: larger than the incumbent's so
/// each epoch takes long enough for the SIGKILL to land mid-train.
fn training_body() -> String {
    let db = sam::storage::paper_example::figure3_database();
    let mut gen = WorkloadGenerator::new(&db, 21);
    let workload = label_workload(&db, gen.multi_workload(300, 2)).unwrap();
    sam::query::format_workload(&workload)
}

fn spawn_server(model: &Path, data: &Path, journal: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sam-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--models",
            &format!("demo={}={}", model.display(), data.display()),
            "--journal-dir",
            &journal.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sam-cli serve");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read server stdout") == 0 {
            panic!("server exited before announcing its address");
        }
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("server address");
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

const TRAIN_PATH: &str =
    "/train?model=demo&epochs=60&batch=16&hidden=12&seed=5&holdout=0.2&eval_samples=64&checkpoint_every=1";

/// Submit the training job and wait for it to reach a terminal state;
/// panics unless that state is `promoted`. Returns the job id.
fn run_to_promotion(addr: SocketAddr, body: &str) -> u64 {
    let (status, accepted) = json_request(addr, "POST", TRAIN_PATH, body);
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Json::as_u64).unwrap();
    wait_promoted(addr, id);
    id
}

fn wait_promoted(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, polled) = json_request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "job unknown: {polled:?}");
        match polled.get("state").and_then(Json::as_str) {
            Some("promoted") => return,
            Some("running") => {
                assert!(Instant::now() < deadline, "training did not finish");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("training reached unexpected state {other:?}: {polled:?}"),
        }
    }
}

#[test]
fn killed_server_resumes_training_and_promotes_identical_model() {
    let dir = std::env::temp_dir().join(format!("sam_train_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (model_path, data_dir) = write_incumbent_and_data(&dir);
    let body = training_body();

    // Reference run, never interrupted: train to promotion and keep the
    // persisted candidate bytes.
    let journal_fresh = dir.join("journal_fresh");
    let (mut child, addr) = spawn_server(&model_path, &data_dir, &journal_fresh);
    let fresh_id = run_to_promotion(addr, &body);
    let fresh_model = std::fs::read(
        journal_fresh
            .join("jobs")
            .join(fresh_id.to_string())
            .join("model.json"),
    )
    .expect("fresh run persisted its candidate");
    child.kill().expect("stop reference server");
    let _ = child.wait();

    // Crash run: SIGKILL as soon as the journal shows training underway
    // (an epoch record), before any terminal event.
    let journal_crash = dir.join("journal_crash");
    let (mut child, addr) = spawn_server(&model_path, &data_dir, &journal_crash);
    let (status, accepted) = json_request(addr, "POST", TRAIN_PATH, &body);
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Json::as_u64).unwrap();

    let log = journal_crash.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let text = std::fs::read_to_string(&log).unwrap_or_default();
        assert!(
            !text.contains("\"promoted\"") && !text.contains("\"rejected\""),
            "training finished before the kill landed; raise epochs in TRAIN_PATH"
        );
        if text.contains("\"epoch\"") {
            break;
        }
        assert!(Instant::now() < deadline, "training never reached an epoch");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL server");
    let _ = child.wait();

    // Restart on the same journal: the interrupted job must come back under
    // its id, resume from its checkpoint, and promote.
    let (mut child, addr) = spawn_server(&model_path, &data_dir, &journal_crash);
    wait_promoted(addr, id);

    let log_text = std::fs::read_to_string(&log).unwrap();
    assert!(
        log_text.contains("\"resumed\""),
        "restart did not resume the interrupted training job:\n{log_text}"
    );

    // The promoted candidate serves as a new version of the incumbent name.
    let (status, est) = json_request(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 64, "seed": 1}"#,
    );
    assert_eq!(status, 200, "{est:?}");
    assert!(est.get("model_version").and_then(Json::as_u64).unwrap() >= 2);

    // Bit-for-bit: the resumed run's promoted weights equal the
    // uninterrupted run's.
    let resumed_model = std::fs::read(
        journal_crash
            .join("jobs")
            .join(id.to_string())
            .join("model.json"),
    )
    .expect("resumed run persisted its candidate");
    assert_eq!(
        resumed_model, fresh_model,
        "resumed training diverged from the uninterrupted run"
    );

    child.kill().expect("stop server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
