//! Deterministic failover for the sharded serving topology: a router
//! fronting two `sam-cli serve` worker subprocesses must never lose an
//! accepted generation job to a worker death.
//!
//! Two killers, one contract:
//!
//! * **Crash-point matrix** — arm `SAM_FAULT_CRASH` at each job-lifecycle
//!   point (`serve.job.pre_run`, `serve.job.generated`,
//!   `serve.job.persisted`) in worker 0's first process generation. The
//!   worker dies deterministically mid-protocol; the supervisor respawns it
//!   on the same per-shard store; the journal replay resumes the job from
//!   its recorded seed.
//! * **SIGKILL mid-generate** — no arming, just `kill -9` on the pid the
//!   router publishes at `/admin/topology` while the job is running.
//!
//! In both cases the resumed job's export must be **bit-for-bit** what an
//! uninterrupted same-seed run produces, the other shard must answer 200
//! throughout, and the router must report the restart in its metrics.

use sam::prelude::*;
use sam::router::{ModelSpec, Router, RouterConfig, WorkerHealth, WorkerSpec};
use sam::serve::http::decode_chunked;
use serde_json::Value as Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GENERATE_BODY: &str = r#"{"model": "alpha", "foj_samples": 20000, "batch": 64, "seed": 11}"#;

fn request(addr: &str, method: &str, path: &str, body: &str) -> Option<(u16, String, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .ok()?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: f\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, head, raw[split + 4..].to_vec()))
}

fn json_request(addr: &str, method: &str, path: &str, body: &str) -> Option<(u16, Json)> {
    let (status, _, body) = request(addr, method, path, body)?;
    let text = std::str::from_utf8(&body).ok()?;
    Some((status, serde_json::parse_value(text).ok()?))
}

/// Train a tiny model on the Figure-3 database and persist it for the CLI.
fn train_and_save(dir: &Path) -> PathBuf {
    let db = sam::storage::paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: ArModelConfig {
            hidden: vec![12],
            seed: 3,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
    let path = dir.join("model.json");
    std::fs::write(
        &path,
        sam::ar::save_model(trained.model(), trained.db_schema()),
    )
    .unwrap();
    path
}

/// The uninterrupted reference: generate in-process through the same
/// load path the workers use.
fn fresh_generate(model_path: &Path) -> Database {
    let text = std::fs::read_to_string(model_path).unwrap();
    let (model, db_schema) = sam::ar::load_model(&text).unwrap();
    let report = sam::ar::TrainReport {
        epoch_losses: Vec::new(),
        constraints_processed: 0,
        wall_seconds: 0.0,
    };
    let trained = Sam::from_frozen(db_schema, model, report);
    let config = GenerationConfig {
        foj_samples: 20_000,
        batch: 64,
        seed: 11,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    let (db, _) = trained.generate(&config).unwrap();
    db
}

fn model_spec(name: &str, slot: usize, model_path: &Path) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        path: model_path.display().to_string(),
        data: None,
        pin: Some(slot),
    }
}

/// Router over two managed `sam-cli serve` workers, `alpha` on shard 0 and
/// `beta` on shard 1, with `env` applied to worker 0's first spawn.
fn start_router(store_root: &Path, model_path: &Path, env: Vec<(String, String)>) -> Router {
    Router::start(RouterConfig {
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_sam-cli").to_string(),
            "serve".to_string(),
        ],
        workers: 2,
        models: vec![
            model_spec("alpha", 0, model_path),
            model_spec("beta", 1, model_path),
        ],
        store_root: store_root.to_path_buf(),
        specs: vec![
            WorkerSpec {
                env,
                ..WorkerSpec::default()
            },
            WorkerSpec::default(),
        ],
        health_interval_ms: 100,
        retry_wait_ms: 3_000,
        ..RouterConfig::default()
    })
    .expect("start router")
}

fn wait_all_healthy(router: &Router, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let workers = router.workers();
        if workers
            .iter()
            .all(|w| matches!(w.health(), WorkerHealth::Healthy))
        {
            return;
        }
        assert!(
            Instant::now() < until,
            "workers never became healthy: {:?}",
            workers
                .iter()
                .map(|w| (w.slot, w.health().label()))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Background poller hammering the *surviving* shard (`beta`) with
/// estimates through the router. Counts hard failures (non-200); the
/// failover contract says there must be none.
struct SurvivorPoller {
    stop: Arc<AtomicBool>,
    ok: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SurvivorPoller {
    fn start(addr: String) -> SurvivorPoller {
        let stop = Arc::new(AtomicBool::new(false));
        let ok = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let (t_stop, t_ok, t_fail) = (Arc::clone(&stop), Arc::clone(&ok), Arc::clone(&failures));
        let handle = std::thread::spawn(move || {
            let body = r#"{"model":"beta","sql":"SELECT COUNT(*) FROM A","samples":16,"seed":5}"#;
            while !t_stop.load(Ordering::SeqCst) {
                match request(&addr, "POST", "/estimate", body) {
                    Some((200, _, _)) => {
                        t_ok.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {
                        t_fail.fetch_add(1, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        SurvivorPoller {
            stop,
            ok,
            failures,
            handle: Some(handle),
        }
    }

    fn finish(mut self) -> (u64, u64) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        (
            self.ok.load(Ordering::SeqCst),
            self.failures.load(Ordering::SeqCst),
        )
    }
}

/// Submit the alpha generate job through the router. An armed
/// `serve.job.pre_run` can kill the worker before the 202 is written, so a
/// transport failure is tolerated — the job id is then recovered from the
/// shard's journal (`accepted` is logged before the job thread starts).
fn submit_generate(addr: &str, shard0_store: &Path) -> u64 {
    if let Some((status, doc)) = json_request(addr, "POST", "/generate", GENERATE_BODY) {
        if status == 202 {
            return doc.get("job_id").and_then(Json::as_u64).expect("job_id");
        }
    }
    let log = shard0_store.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = std::fs::read_to_string(&log).unwrap_or_default();
        if let Some(id) = text.lines().find_map(|line| {
            // Journal lines are `<checksum> <json>`.
            let payload = line.split_once(' ').map_or(line, |(_, rest)| rest);
            let doc = serde_json::parse_value(payload).ok()?;
            (doc.get("event").and_then(Json::as_str) == Some("accepted"))
                .then(|| doc.get("job").and_then(Json::as_u64))
                .flatten()
        }) {
            return id;
        }
        assert!(
            Instant::now() < deadline,
            "no accepted event in {}:\n{text}",
            log.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Poll the job through the router until `done`, then require its exported
/// relations to be bit-for-bit the uninterrupted reference.
fn assert_job_resumes_bit_for_bit(addr: &str, id: u64, reference: &Database, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        match json_request(addr, "GET", &format!("/jobs/{id}"), "") {
            Some((200, doc)) => match doc.get("state").and_then(Json::as_str) {
                Some("done") => break,
                Some("running") => {}
                other => panic!("{label}: job {id} in unexpected state {other:?}: {doc:?}"),
            },
            // 503 while the owning shard restarts is part of the contract;
            // transport glitches during the failover window likewise.
            Some((503, _)) | None => {}
            Some((status, doc)) => panic!("{label}: GET /jobs/{id} -> {status}: {doc:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "{label}: job {id} never finished"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    for table in reference.tables() {
        let (status, head, body) = request(
            addr,
            "GET",
            &format!("/jobs/{id}/export?relation={}", table.name()),
            "",
        )
        .expect("export exchange");
        assert_eq!(status, 200, "{label}: export {}", table.name());
        let exported = if head.to_ascii_lowercase().contains("chunked") {
            decode_chunked(&body).expect("well-formed chunked stream")
        } else {
            body
        };
        let mut want = Vec::new();
        sam::storage::csv::write_csv(table, &mut want).unwrap();
        assert_eq!(
            exported,
            want,
            "{label}: table {} differs from the uninterrupted run",
            table.name()
        );
    }
}

fn wait_restart(router: &Router, slot: usize, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let worker = router
            .workers()
            .into_iter()
            .find(|w| w.slot == slot)
            .expect("slot exists");
        if worker.restarts() >= 1 && matches!(worker.health(), WorkerHealth::Healthy) {
            return;
        }
        assert!(
            Instant::now() < until,
            "shard {slot} never restarted healthy (restarts {}, {})",
            worker.restarts(),
            worker.health().label()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One full kill-and-recover cycle with worker 0 armed to die at `point`
/// (empty = no arming; the caller kills by pid instead).
fn run_failover(point: Option<&str>, tag: &str) {
    let dir =
        std::env::temp_dir().join(format!("sam_router_failover_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = train_and_save(&dir);
    let store_root = dir.join("shards");
    let env = match point {
        Some(point) => vec![(sam::fault::CRASH_ENV.to_string(), point.to_string())],
        None => Vec::new(),
    };

    let router = start_router(&store_root, &model_path, env);
    let addr = router.addr().to_string();
    wait_all_healthy(&router, Duration::from_secs(60));
    let label = point.unwrap_or("sigkill");

    let poller = SurvivorPoller::start(addr.clone());
    let shard0_store = store_root.join("shard-0");
    let id = submit_generate(&addr, &shard0_store);
    assert_eq!(id, 1, "shard 0 mints from job-id base 0");

    if point.is_none() {
        // SIGKILL path: wait until the job is journaled as running, then
        // kill the pid the router publishes at /admin/topology.
        let log = shard0_store.join("journal.jsonl");
        let deadline = Instant::now() + Duration::from_secs(60);
        while !std::fs::read_to_string(&log)
            .unwrap_or_default()
            .contains("\"running\"")
        {
            assert!(Instant::now() < deadline, "job never reached running");
            std::thread::sleep(Duration::from_millis(10));
        }
        let (status, topology) = json_request(&addr, "GET", "/admin/topology", "").unwrap();
        assert_eq!(status, 200);
        let pid = topology
            .get("workers")
            .and_then(Json::as_array)
            .and_then(|workers| {
                workers.iter().find_map(|w| {
                    (w.get("slot").and_then(Json::as_u64) == Some(0))
                        .then(|| w.get("pid").and_then(Json::as_u64))
                        .flatten()
                })
            })
            .expect("shard 0 pid in topology");
        let killed = std::process::Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .expect("run kill");
        assert!(killed.success(), "kill -9 {pid} failed");
    }

    // The supervisor must respawn shard 0 (crash-armed workers never re-arm
    // on respawn), and the replayed journal must finish the job bit-for-bit.
    wait_restart(&router, 0, Duration::from_secs(120));
    assert!(
        router.metrics().worker_restarts.get() >= 1,
        "restart not reported in router metrics"
    );
    let reference = fresh_generate(&model_path);
    assert_job_resumes_bit_for_bit(&addr, id, &reference, label);

    let (survivor_ok, survivor_failures) = poller.finish();
    assert_eq!(
        survivor_failures, 0,
        "{label}: surviving shard answered non-200 during failover"
    );
    assert!(
        survivor_ok > 0,
        "{label}: surviving shard saw no successful requests"
    );

    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_pre_run_resumes_bit_for_bit() {
    run_failover(Some("serve.job.pre_run"), "pre_run");
}

#[test]
fn crash_after_generation_resumes_bit_for_bit() {
    run_failover(Some("serve.job.generated"), "generated");
}

#[test]
fn crash_after_persist_resumes_bit_for_bit() {
    run_failover(Some("serve.job.persisted"), "persisted");
}

#[test]
fn sigkill_via_topology_pid_resumes_bit_for_bit() {
    run_failover(None, "sigkill");
}
