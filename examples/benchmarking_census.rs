//! DBMS benchmarking without the data (paper §1, first use case).
//!
//! A cloud provider wants to benchmark an engine on a customer's database
//! it cannot access. It generates a synthetic stand-in from the query
//! workload and compares query latencies: if the *performance deviation*
//! between original and synthetic is small, benchmark results transfer.
//!
//! Run with: `cargo run --release --example benchmarking_census`

use sam::engine::{performance_deviation, Engine};
use sam::prelude::*;

fn main() {
    let target = sam::datasets::census(12_000, 1);
    let stats = DatabaseStats::from_database(&target);

    // Train from a workload and generate the stand-in.
    let mut gen = WorkloadGenerator::new(&target, 1);
    let workload =
        label_workload(&target, gen.single_workload("census", 2_000)).expect("labelling");
    let mut config = SamConfig::default();
    config.train.epochs = 8;
    let trained = Sam::fit(target.schema(), &stats, &workload, &config).expect("training");
    let (synthetic, _) = trained
        .generate(&GenerationConfig::default())
        .expect("generation");

    // An independent benchmark workload the provider wants to time.
    let bench_queries: Vec<Query> =
        WorkloadGenerator::new(&target, 999).single_workload("census", 40);

    // Run it on both databases with the same engine.
    let orig_engine = Engine::new(&target);
    let synth_engine = Engine::new(&synthetic);
    println!("{:<64} {:>10} {:>10}", "query", "orig µs", "synth µs");
    for q in bench_queries.iter().take(10) {
        let a = orig_engine.latency_ms(q, 7).unwrap() * 1e3;
        let b = synth_engine.latency_ms(q, 7).unwrap() * 1e3;
        let sql = q.to_string();
        let short = if sql.len() > 62 { &sql[..62] } else { &sql };
        println!("{short:<64} {a:>10.1} {b:>10.1}");
    }

    let dev = performance_deviation(&target, &synthetic, &bench_queries, 7).unwrap();
    let p = Percentiles::from_values(&dev.iter().map(|d| d * 1e3).collect::<Vec<_>>());
    println!(
        "\nperformance deviation: median {:.1} µs, 90th {:.1} µs, mean {:.1} µs",
        p.median, p.p90, p.mean
    );
    println!("small deviation ⇒ benchmark results on the synthetic database transfer.");
}
