//! Quickstart: the full SAM workflow on a small synthetic database.
//!
//! Run with: `cargo run --release --example quickstart`

use sam::prelude::*;

fn main() {
    // 1. The target database — in the paper's scenario this lives behind
    //    the customer's access controls and is never handed over. Here we
    //    stand it up synthetically.
    let target = sam::datasets::census(5_000, 42);
    let stats = DatabaseStats::from_database(&target);
    println!(
        "target: table `census`, {} rows x {} columns",
        target.tables()[0].num_rows(),
        target.tables()[0].num_columns()
    );

    // 2. The query workload — queries plus true cardinalities, the one
    //    artifact the cloud provider may see.
    let mut gen = WorkloadGenerator::new(&target, 42);
    let queries = gen.single_workload("census", 1_000);
    let workload = label_workload(&target, queries).expect("labelling");
    println!("workload: {} labelled queries, e.g.:", workload.len());
    for lq in workload.iter().take(3) {
        println!("  {}  -- Card = {}", lq.query, lq.cardinality);
    }

    // 3. Learning stage: train the autoregressive model from the
    //    (query, cardinality) pairs with differentiable progressive
    //    sampling. No row of the target database is read.
    let mut config = SamConfig::default();
    config.train.epochs = 8;
    let trained = Sam::fit(target.schema(), &stats, &workload, &config).expect("training");
    println!(
        "trained in {:.1}s; loss {:.3} -> {:.3}",
        trained.report.wall_seconds,
        trained.report.epoch_losses.first().unwrap(),
        trained.report.epoch_losses.last().unwrap()
    );

    // 4. Generation stage: sample a synthetic database of the same size.
    let (synthetic, report) = trained
        .generate(&GenerationConfig::default())
        .expect("generation");
    println!(
        "generated {} rows in {:.1}s",
        synthetic.tables()[0].num_rows(),
        report.wall_seconds
    );

    // 5. Fidelity: the input constraints hold on the synthetic database.
    let q_errors: Vec<f64> = workload
        .iter()
        .take(500)
        .map(|lq| {
            let got = evaluate_cardinality(&synthetic, &lq.query).unwrap() as f64;
            q_error(got, lq.cardinality as f64)
        })
        .collect();
    let p = Percentiles::from_values(&q_errors);
    println!(
        "input-query Q-Error: median {:.2}, 90th {:.2}, mean {:.2}",
        p.median, p.p90, p.mean
    );

    // 6. And it generalises: a brand-new query gets a similar count.
    let probe =
        parse_query("SELECT COUNT(*) FROM census WHERE census.age <= 40 AND census.income = 1")
            .expect("valid SQL");
    let truth = evaluate_cardinality(&target, &probe).unwrap();
    let synth = evaluate_cardinality(&synthetic, &probe).unwrap();
    println!("unseen probe: target {truth} vs synthetic {synth}");
}
