//! Bonus capability: the trained AR model is itself a query-driven
//! cardinality estimator (SAM builds on UAE-Q, §4.1) — estimates come from
//! progressive sampling without generating any database at all.
//!
//! Run with: `cargo run --release --example cardinality_estimation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sam::ar::estimate_cardinality;
use sam::prelude::*;

fn main() {
    let target = sam::datasets::dmv(10_000, 5);
    let stats = DatabaseStats::from_database(&target);

    let mut gen = WorkloadGenerator::new(&target, 5);
    let workload = label_workload(&target, gen.single_workload("dmv", 1_500)).expect("labelling");

    let mut config = SamConfig::default();
    config.train.epochs = 8;
    let trained = Sam::fit(target.schema(), &stats, &workload, &config).expect("training");
    let model = trained.model();

    // Estimate cardinalities of unseen queries straight from the model.
    let mut rng = StdRng::seed_from_u64(0);
    let probes = [
        "SELECT COUNT(*) FROM dmv WHERE dmv.body_type <= 5",
        "SELECT COUNT(*) FROM dmv WHERE dmv.state = 0 AND dmv.fuel_type = 0",
        "SELECT COUNT(*) FROM dmv WHERE dmv.unladen_weight >= 2000",
        "SELECT COUNT(*) FROM dmv WHERE dmv.suspension = 1 AND dmv.revocation = 1",
    ];
    println!(
        "{:<70} {:>8} {:>10} {:>7}",
        "query", "truth", "estimate", "Q-err"
    );
    let mut errors = Vec::new();
    for sql in probes {
        let q = parse_query(sql).expect("valid SQL");
        let truth = evaluate_cardinality(&target, &q).unwrap() as f64;
        let est = estimate_cardinality(model, &q, 512, &mut rng).expect("estimation");
        let qe = q_error(est, truth);
        errors.push(qe);
        println!("{sql:<70} {truth:>8.0} {est:>10.1} {qe:>7.2}");
    }

    // And across a batch of random test queries.
    let test = WorkloadGenerator::new(&target, 777).single_workload("dmv", 100);
    let mut qs = Vec::new();
    for q in &test {
        let truth = evaluate_cardinality(&target, q).unwrap() as f64;
        let est = estimate_cardinality(model, q, 256, &mut rng).expect("estimation");
        qs.push(q_error(est, truth));
    }
    let p = Percentiles::from_values(&qs);
    println!(
        "\n100 random test queries: median Q-Error {:.2}, 90th {:.2}, mean {:.2}",
        p.median, p.p90, p.mean
    );
}
