//! Bring your own schema, with zero data access — the paper's deployment
//! scenario driven through the library API: the generator sees only
//! (1) the schema, (2) coarse metadata (table sizes + column domains), and
//! (3) a labelled query workload. No tuple of the "customer database" is
//! ever read by SAM.
//!
//! Run with: `cargo run --release --example custom_schema_datafree`

use sam::prelude::*;
use sam::storage::{ColumnStats, Domain, TableStats};
use std::sync::Arc;

fn main() {
    // ---- The customer side (pretend this happens behind access control).
    // A custom orders table we stand up only to *label* the workload;
    // everything handed to SAM below is derived from queries + metadata.
    let schema = TableSchema::new(
        "orders",
        vec![
            ColumnDef::content("region", DataType::Int), // 6 regions
            ColumnDef::content("status", DataType::Int), // 4 statuses
            ColumnDef::content("priority", DataType::Int), // 3 priorities
            ColumnDef::content("amount", DataType::Int), // 1..=500
        ],
    );
    let customer_db = {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rows: Vec<Vec<Value>> = (0..9_000)
            .map(|_| {
                let region = rng.gen_range(0..6i64);
                // Status correlates with region; priority with status.
                let status = (region + rng.gen_range(0..2)) % 4;
                let priority = (status % 3 + rng.gen_range(0..2)) % 3;
                let base = 50 + region * 60 + status * 20;
                let amount = (base + rng.gen_range(-40..=40)).clamp(1, 500);
                vec![
                    Value::Int(region),
                    Value::Int(status),
                    Value::Int(priority),
                    Value::Int(amount),
                ]
            })
            .collect();
        Database::single(Table::from_rows(schema.clone(), &rows).unwrap())
    };

    // The customer runs the provider's query templates and returns ONLY the
    // labelled workload...
    let mut gen = WorkloadGenerator::new(&customer_db, 1);
    let workload =
        label_workload(&customer_db, gen.single_workload("orders", 1_500)).expect("labelling");
    // ...plus coarse metadata (declared domains, not data):
    let db_schema = sam::storage::DatabaseSchema::single(schema);
    let stats = DatabaseStats {
        tables: vec![TableStats {
            name: "orders".into(),
            num_rows: 9_000,
            max_fanout: 0,
            columns: vec![
                col("region", Domain::int_range(0, 5)),
                col("status", Domain::int_range(0, 3)),
                col("priority", Domain::int_range(0, 2)),
                col("amount", Domain::int_range(1, 500)),
            ],
        }],
        foj_size: 9_000,
    };

    // ---- The provider side: train from the workload + metadata only.
    let mut config = SamConfig::default();
    config.train.epochs = 10;
    let trained = Sam::fit(&db_schema, &stats, &workload, &config).expect("training");
    println!(
        "trained from {} constraints in {:.1}s (no data access)",
        workload.len(),
        trained.report.wall_seconds
    );
    let (synthetic, _) = trained
        .generate(&GenerationConfig::default())
        .expect("generation");

    // ---- Verification (only possible because we ARE the customer here).
    let qe: Vec<f64> = workload
        .iter()
        .take(600)
        .map(|lq| {
            let got = evaluate_cardinality(&synthetic, &lq.query).unwrap() as f64;
            q_error(got, lq.cardinality as f64)
        })
        .collect();
    let p = Percentiles::from_values(&qe);
    println!(
        "input constraints on the synthetic db: median Q {:.2}, 90th {:.2}, mean {:.2}",
        p.median, p.p90, p.mean
    );

    // The learned correlations survive: status tracks region.
    for region in [0i64, 3] {
        let q = Query::single(
            "orders",
            vec![
                Predicate::compare("orders", "region", CompareOp::Eq, region),
                Predicate::compare("orders", "status", CompareOp::Eq, region % 4),
            ],
        );
        let truth = evaluate_cardinality(&customer_db, &q).unwrap();
        let synth = evaluate_cardinality(&synthetic, &q).unwrap();
        println!("region={region} & matching status: target {truth} vs synthetic {synth}");
    }
}

fn col(name: &str, domain: Domain) -> ColumnStats {
    ColumnStats {
        name: name.into(),
        dtype: DataType::Int,
        domain: Arc::new(domain),
    }
}
