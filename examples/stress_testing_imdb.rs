//! Stress-testing a multi-relation database (paper §1, second use case).
//!
//! An engineering team needs a full-size copy of a strictly access-
//! controlled multi-relation database for load testing. SAM learns the
//! joint full-outer-join distribution from join-query cardinalities and
//! regenerates all six JOB-light relations — with join keys assigned by
//! Group-and-Merge so multi-way join behaviour survives.
//!
//! Run with: `cargo run --release --example stress_testing_imdb`

use sam::prelude::*;

fn main() {
    // The guarded production database (synthetic IMDB stand-in).
    let target = sam::datasets::imdb(&sam::datasets::ImdbConfig {
        titles: 1_500,
        seed: 3,
        ..Default::default()
    });
    let stats = DatabaseStats::from_database(&target);
    println!("target relations:");
    for t in target.tables() {
        println!("  {:<16} {:>8} rows", t.name(), t.num_rows());
    }

    // Query log: single-relation and join queries with counts.
    let mut gen = WorkloadGenerator::new(&target, 3);
    let workload = label_workload(&target, gen.multi_workload(2_000, 2)).expect("labelling");
    let joins: usize = workload
        .iter()
        .filter(|lq| lq.query.num_joins() > 0)
        .count();
    println!(
        "\nworkload: {} queries ({} with joins)",
        workload.len(),
        joins
    );

    // Train the single AR model of the full outer join.
    let mut config = SamConfig::default();
    config.train.epochs = 8;
    let trained = Sam::fit(target.schema(), &stats, &workload, &config).expect("training");

    // Generate with Group-and-Merge join keys.
    let (synthetic, report) = trained
        .generate(&GenerationConfig {
            foj_samples: 20_000,
            strategy: JoinKeyStrategy::GroupAndMerge,
            ..Default::default()
        })
        .expect("generation");
    println!("\ngenerated in {:.1}s; relations:", report.wall_seconds);
    for t in synthetic.tables() {
        let want = target.table_by_name(t.name()).unwrap().num_rows();
        println!(
            "  {:<16} {:>8} rows (target {want})",
            t.name(),
            t.num_rows()
        );
    }

    // Verify that multi-way join sizes — the stress-test load drivers —
    // carry over to the synthetic database.
    println!("\njoin cardinalities, target vs synthetic:");
    let joins: Vec<Vec<&str>> = vec![
        vec!["title", "cast_info"],
        vec!["title", "movie_info", "movie_keyword"],
        vec!["title", "cast_info", "movie_companies", "movie_info_idx"],
    ];
    for tables in joins {
        let q = Query::join(tables.iter().map(|s| s.to_string()).collect(), vec![]);
        let a = evaluate_cardinality(&target, &q).unwrap();
        let b = evaluate_cardinality(&synthetic, &q).unwrap();
        println!("  {:<60} {a:>9} vs {b:>9}", q.tables.join(" ⋈ "));
    }
}
