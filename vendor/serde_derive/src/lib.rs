//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the container has no
//! `syn`/`quote`), so it supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums of unit and one-field tuple variants (externally tagged),
//! * `#[serde(rename = "…")]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(skip_serializing_if = "path")]`.
//!
//! `Option` fields deserialise to `None` when the key is missing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------------ parsing

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    /// `Some(None)` = bare `default`, `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    ident: String,
    attrs: SerdeAttrs,
    is_option: bool,
}

#[derive(Debug)]
struct Variant {
    ident: String,
    attrs: SerdeAttrs,
    /// True for one-field tuple variants, false for unit variants.
    newtype: bool,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn strip_string_literal(lit: &str) -> String {
    // Token literals keep their quotes: `"type"` -> type.
    let t = lit.trim();
    let t = t.strip_prefix('"').unwrap_or(t);
    let t = t.strip_suffix('"').unwrap_or(t);
    t.to_string()
}

/// Parse the inside of one `#[serde(...)]` group into `attrs`.
fn parse_serde_attr(tokens: TokenStream, attrs: &mut SerdeAttrs) -> Result<(), String> {
    let mut it = tokens.into_iter().peekable();
    while let Some(tt) = it.next() {
        let key = match tt {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(ref p) if p.as_char() == ',' => continue,
            other => return Err(format!("unexpected token {other} in #[serde(...)]")),
        };
        let value = match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Literal(l)) => Some(strip_string_literal(&l.to_string())),
                    other => return Err(format!("expected string after {key} =, got {other:?}")),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("default", v) => attrs.default = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            // Accepted and ignored: only affects formats we don't implement.
            ("deny_unknown_fields", _) | ("transparent", _) => {}
            (other, _) => {
                return Err(format!(
                    "unsupported serde attribute `{other}` in offline vendored serde_derive"
                ))
            }
        }
    }
    Ok(())
}

/// Consume leading `#[...]` attribute groups, folding serde ones into the
/// result; returns the collected serde attrs.
fn take_attrs(
    it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let mut inner = g.stream().into_iter();
                        if let Some(TokenTree::Ident(id)) = inner.next() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.next() {
                                    parse_serde_attr(args.stream(), &mut attrs)?;
                                }
                            }
                        }
                    }
                    other => return Err(format!("expected [...] after #, got {other:?}")),
                }
            }
            _ => return Ok(attrs),
        }
    }
}

/// Skip `pub`, `pub(...)`.
fn skip_visibility(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            return Ok(fields);
        }
        let attrs = take_attrs(&mut it)?;
        skip_visibility(&mut it);
        let ident = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(fields),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field {ident}, got {other:?}")),
        }
        // Scan the type: record whether it starts with `Option`, then skip
        // to the next top-level comma (tracking `<`/`>` depth; parens and
        // brackets arrive as opaque groups).
        let mut is_option = false;
        let mut first = true;
        let mut angle_depth = 0i32;
        while let Some(tt) = it.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    it.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(id) if first => {
                    is_option = id.to_string() == "Option";
                }
                _ => {}
            }
            first = false;
            it.next();
        }
        fields.push(Field {
            ident,
            attrs,
            is_option,
        });
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            return Ok(variants);
        }
        let attrs = take_attrs(&mut it)?;
        let ident = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = it.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    newtype = true;
                    it.next();
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "struct variant {ident} unsupported by vendored serde_derive"
                    ))
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push(Variant {
            ident,
            attrs,
            newtype,
        });
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    let _ = take_attrs(&mut it)?; // container attrs (none supported, tolerated)
    skip_visibility(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "generic item {name} unsupported by vendored serde_derive"
            ))
        }
        other => return Err(format!("expected {{...}} body for {name}, got {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// --------------------------------------------------------------- generation

fn key_of_field(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.ident.clone())
}

fn key_of_variant(v: &Variant) -> String {
    v.attrs.rename.clone().unwrap_or_else(|| v.ident.clone())
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            body.push_str(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let key = key_of_field(f);
                let push = format!(
                    "__fields.push((\"{key}\".to_string(), ::serde::Serialize::to_json_value(&self.{id})));",
                    id = f.ident
                );
                if let Some(skip) = &f.attrs.skip_serializing_if {
                    body.push_str(&format!(
                        "if !{skip}(&self.{id}) {{ {push} }}\n",
                        id = f.ident
                    ));
                } else {
                    body.push_str(&push);
                    body.push('\n');
                }
            }
            body.push_str("::serde::json::Value::Object(__fields)");
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_json_value(&self) -> ::serde::json::Value {{\n {body}\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let key = key_of_variant(v);
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{id}(__x) => ::serde::json::Value::Object(vec![(\"{key}\".to_string(), ::serde::Serialize::to_json_value(__x))]),\n",
                        id = v.ident
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{id} => ::serde::json::Value::String(\"{key}\".to_string()),\n",
                        id = v.ident
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_json_value(&self) -> ::serde::json::Value {{\n match self {{\n {arms} }}\n }}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let key = key_of_field(f);
                let missing = match &f.attrs.default {
                    Some(Some(path)) => format!("{path}()"),
                    Some(None) => "::core::default::Default::default()".to_string(),
                    None if f.is_option => "::core::option::Option::None".to_string(),
                    None => format!(
                        "return ::core::result::Result::Err(::serde::DeError::msg(\"missing field `{key}` in {name}\"))"
                    ),
                };
                inits.push_str(&format!(
                    "{id}: match __v.get(\"{key}\") {{\n Some(__x) => ::serde::Deserialize::from_json_value(__x).map_err(|e| e.context(\"{name}.{key}\"))?,\n None => {missing},\n }},\n",
                    id = f.ident
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n if !matches!(__v, ::serde::json::Value::Object(_)) {{\n return ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\"expected object for {name}, found {{}}\", __v.kind())));\n }}\n ::core::result::Result::Ok({name} {{\n {inits} }})\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                let key = key_of_variant(v);
                if v.newtype {
                    newtype_arms.push_str(&format!(
                        "\"{key}\" => ::core::result::Result::Ok({name}::{id}(::serde::Deserialize::from_json_value(__val).map_err(|e| e.context(\"{name}::{id}\"))?)),\n",
                        id = v.ident
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{key}\" => ::core::result::Result::Ok({name}::{id}),\n",
                        id = v.ident
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n match __v {{\n ::serde::json::Value::String(__s) => match __s.as_str() {{\n {unit_arms} __other => ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n }},\n ::serde::json::Value::Object(__fields) if __fields.len() == 1 => {{\n let (__k, __val) = &__fields[0];\n match __k.as_str() {{\n {newtype_arms} __other => ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n }}\n }},\n __other => ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n }}\n }}\n}}"
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            format!("compile_error!(\"{escaped}\");").parse().unwrap()
        }
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
