//! Offline vendored stand-in for the [`rayon`] crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of rayon it uses: `into_par_iter()` over ranges and vectors
//! with `map` / `map_init` / `flat_map_iter` / `flatten_iter` / `for_each`
//! / `collect` / `sum`. Work *is* executed in parallel — each combinator
//! chain is evaluated stage-wise and the per-item closure runs on
//! `std::thread::scope` workers, chunked over [`current_num_threads`]
//! threads — it is simply not work-stealing.
//!
//! [`rayon`]: https://crates.io/crates/rayon

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads used for parallel evaluation: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive integer
/// (matching real rayon's default-pool override, read once per process),
/// otherwise `available_parallelism`.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Run `items` through `f` on scoped worker threads, preserving order.
fn parallel_map<T, B, F>(items: Vec<T>, f: F) -> Vec<B>
where
    T: Send,
    B: Send,
    F: Fn(T) -> B + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<Vec<B>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<B>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Like [`parallel_map`], but each worker chunk first builds a private
/// mutable state with `init` and threads it through its items — the shim's
/// counterpart of rayon's `map_init` (state per chunk, not per item).
fn parallel_map_init<T, S, B, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<B>
where
    T: Send,
    B: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> B + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let init = &init;
    let f = &f;
    let mut out: Vec<Vec<B>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    let mut state = init();
                    c.into_iter().map(|x| f(&mut state, x)).collect::<Vec<B>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A parallel iterator: a materialised item list plus a parallel evaluator.
pub trait ParallelIterator: Sized {
    /// Item type produced by this stage.
    type Item: Send;

    /// Evaluate this stage (and its predecessors) to a vector, in parallel.
    fn drive(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<B, F>(self, f: F) -> Map<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Parallel map with per-worker mutable state built by `init` — reuse
    /// expensive scratch (buffers, RNGs) across the items one worker chunk
    /// processes. Mirrors rayon's `map_init`: the state is per *chunk*, so
    /// output must not depend on how items are distributed over workers.
    fn map_init<S, B, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        B: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, Self::Item) -> B + Sync + Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Parallel map to a serial iterator per item, flattened.
    fn flat_map_iter<B, F, I>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator<Item = B>,
        B: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Flatten a stage whose items are themselves serial iterators.
    fn flatten_iter<B>(self) -> FlattenIter<Self>
    where
        Self::Item: IntoIterator<Item = B>,
        B: Send,
    {
        FlattenIter { base: self }
    }

    /// Parallel filter.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Apply `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map(self.drive(), &f);
    }

    /// Collect into any `FromIterator` container (order preserved).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Number of items (evaluates the chain).
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Base stage over already-materialised items.
pub struct Base<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for Base<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// `map` stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, B, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    B: Send,
    F: Fn(P::Item) -> B + Sync + Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        parallel_map(self.base.drive(), self.f)
    }
}

/// `map_init` stage.
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

impl<P, S, B, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    B: Send,
    INIT: Fn() -> S + Sync + Send,
    F: Fn(&mut S, P::Item) -> B + Sync + Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        parallel_map_init(self.base.drive(), self.init, self.f)
    }
}

/// `flatten_iter` stage.
pub struct FlattenIter<P> {
    base: P,
}

impl<P, B> ParallelIterator for FlattenIter<P>
where
    P: ParallelIterator,
    P::Item: IntoIterator<Item = B>,
    B: Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        self.base.drive().into_iter().flatten().collect()
    }
}

/// `flat_map_iter` stage.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, B, F, I> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    I: IntoIterator<Item = B>,
    B: Send,
    F: Fn(P::Item) -> I + Sync + Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        let f = self.f;
        parallel_map(self.base.drive(), |x| f(x).into_iter().collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `filter` stage.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;
    fn drive(self) -> Vec<P::Item> {
        let f = self.f;
        parallel_map(self.base.drive(), |x| if f(&x) { Some(x) } else { None })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Base<T>;
    fn into_par_iter(self) -> Base<T> {
        Base { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = Base<$t>;
            fn into_par_iter(self) -> Base<$t> {
                Base { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(usize, u32, u64, i32, i64);

/// The commonly glob-imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = (0..10usize)
            .into_par_iter()
            .flat_map_iter(|x| vec![x; x])
            .collect();
        let expect: Vec<usize> = (0..10).flat_map(|x| vec![x; x]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sum_and_filter() {
        let s: usize = (0..100usize).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum());
    }

    #[test]
    fn map_init_reuses_state_without_changing_output() {
        let out: Vec<usize> = (0..257usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, x| {
                scratch.push(x); // per-worker scratch grows, output ignores it
                x * 3
            })
            .collect();
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn flatten_iter_preserves_order() {
        let out: Vec<usize> = (0..10usize)
            .into_par_iter()
            .map(|x| vec![x; x])
            .flatten_iter()
            .collect();
        let expect: Vec<usize> = (0..10).flat_map(|x| vec![x; x]).collect();
        assert_eq!(out, expect);
    }
}
