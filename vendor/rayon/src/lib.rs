//! Offline vendored stand-in for the [`rayon`] crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of rayon it uses: `into_par_iter()` over ranges and vectors
//! with `map` / `flat_map_iter` / `for_each` / `collect` / `sum`. Work *is*
//! executed in parallel — each combinator chain is evaluated stage-wise and
//! the per-item closure runs on `std::thread::scope` workers, chunked over
//! `available_parallelism` threads — it is simply not work-stealing.
//!
//! [`rayon`]: https://crates.io/crates/rayon

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel evaluation.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `items` through `f` on scoped worker threads, preserving order.
fn parallel_map<T, B, F>(items: Vec<T>, f: F) -> Vec<B>
where
    T: Send,
    B: Send,
    F: Fn(T) -> B + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<Vec<B>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<B>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A parallel iterator: a materialised item list plus a parallel evaluator.
pub trait ParallelIterator: Sized {
    /// Item type produced by this stage.
    type Item: Send;

    /// Evaluate this stage (and its predecessors) to a vector, in parallel.
    fn drive(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<B, F>(self, f: F) -> Map<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Parallel map to a serial iterator per item, flattened.
    fn flat_map_iter<B, F, I>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator<Item = B>,
        B: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Parallel filter.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Apply `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map(self.drive(), &f);
    }

    /// Collect into any `FromIterator` container (order preserved).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Number of items (evaluates the chain).
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Base stage over already-materialised items.
pub struct Base<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for Base<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// `map` stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, B, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    B: Send,
    F: Fn(P::Item) -> B + Sync + Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        parallel_map(self.base.drive(), self.f)
    }
}

/// `flat_map_iter` stage.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, B, F, I> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    I: IntoIterator<Item = B>,
    B: Send,
    F: Fn(P::Item) -> I + Sync + Send,
{
    type Item = B;
    fn drive(self) -> Vec<B> {
        let f = self.f;
        parallel_map(self.base.drive(), |x| f(x).into_iter().collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `filter` stage.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;
    fn drive(self) -> Vec<P::Item> {
        let f = self.f;
        parallel_map(self.base.drive(), |x| if f(&x) { Some(x) } else { None })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Base<T>;
    fn into_par_iter(self) -> Base<T> {
        Base { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = Base<$t>;
            fn into_par_iter(self) -> Base<$t> {
                Base { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(usize, u32, u64, i32, i64);

/// The commonly glob-imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = (0..10usize)
            .into_par_iter()
            .flat_map_iter(|x| vec![x; x])
            .collect();
        let expect: Vec<usize> = (0..10).flat_map(|x| vec![x; x]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sum_and_filter() {
        let s: usize = (0..100usize).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum());
    }
}
