//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's
//! `harness = false` bench targets use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, iterations are auto-calibrated so a
//! sample lasts at least ~2 ms, then `sample_size` samples are timed and
//! the median/mean ns-per-iteration are printed to stdout. No statistics
//! beyond that, no plots, no baseline comparison — stable wall-clock
//! numbers good enough for the relative comparisons EXPERIMENTS.md records.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one sample should cover.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);
/// Soft cap on total measurement time per benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(5);

/// Top-level benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.effective_sample_size();
        run_benchmark(&label, sample_size, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.effective_sample_size();
        run_benchmark(&label, sample_size, |b| f(b, input));
        self
    }

    /// End the group (prints a trailing newline like upstream's summary).
    pub fn finish(self) {
        println!();
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size
            .unwrap_or(self._criterion.default_sample_size)
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    /// ns per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, auto-calibrating iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let bench_start = Instant::now();
        // Warm-up and calibration: grow iters until a sample is long
        // enough to time reliably (or a single iteration already is).
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            if bench_start.elapsed() > MAX_BENCH_TIME / 4 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(1),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "  {label}: median {} mean {} ({} samples)",
        format_ns(median),
        format_ns(mean),
        sorted.len()
    );
}

/// Render nanoseconds human-readably (ns/µs/ms/s).
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); accepted and
            // ignored — this harness always runs every benchmark.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<usize>()
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
