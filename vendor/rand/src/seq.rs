//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random selection from slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (fewer if the slice is
    /// shorter), as an iterator of references.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for SliceChooseIter<'a, T> {}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices: indices.into_iter(),
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
