//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256\*\* with SplitMix64
/// seed expansion. Fast, passes big statistical batteries, and — unlike
/// upstream's ChaCha12-based `StdRng` — fully implementable offline in a few
/// lines. Streams are deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The raw xoshiro256\*\* state, for checkpointing. Restoring it with
    /// [`StdRng::from_state`] resumes the stream at exactly this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`].
    /// An all-zero state (a fixed point of xoshiro) is remapped to a fixed
    /// non-zero state, mirroring the `seed_from_u64` guard.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
