//! Offline vendored stand-in for the [`rand`] crate (0.8-compatible surface).
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors a functional implementation of the `rand` API it
//! actually uses: [`rngs::StdRng`] (xoshiro256\*\* seeded via SplitMix64),
//! the [`Rng`] extension trait (`gen_range`, `gen_bool`), [`SeedableRng`],
//! and the slice helpers in [`seq`] (`choose`, `choose_multiple`,
//! `shuffle`).
//!
//! The generator is a different algorithm from upstream `rand`'s ChaCha12
//! `StdRng`, so seeded streams differ from upstream — but every consumer in
//! this workspace only relies on *self*-consistency of seeded streams, not
//! on upstream-exact values.
//!
//! [`rand`]: https://crates.io/crates/rand

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample a uniform value of type `T` from it.
///
/// Implemented via blanket impls over [`SampleUniform`] (mirroring
/// upstream) so that `rng.gen_range(0..4)` unifies the literal's type
/// with the surrounding expression instead of defaulting to `i32`.
pub trait SampleRange<T> {
    /// Draw one uniform sample; panics on an empty range like upstream.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from half-open / inclusive ranges.
pub trait SampleUniform: Sized + Copy {
    /// Uniform in `[lo, hi)`; panics if empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform in `[lo, hi]`; panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_uniform {
    ($($t:ty => $unit:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_uniform!(f64 => unit_f64, f32 => unit_f32);

/// User-facing extension methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }

    /// Draw from the "standard" distribution (uniform bits / unit interval).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// The commonly glob-imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 80_000.0;
            assert!((f - 0.125).abs() < 0.01, "bucket freq {f}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let f = hits as f64 / 50_000.0;
        assert!((f - 0.3).abs() < 0.01, "freq {f}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 5).cloned().collect();
        assert_eq!(picked.len(), 5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
