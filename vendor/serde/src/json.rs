//! The owned JSON tree shared by the vendored `serde` and `serde_json`.

/// A JSON number: integer-preserving where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    /// From a signed integer.
    pub fn from_i64(v: i64) -> Self {
        Number(N::Int(v))
    }

    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        if let Ok(i) = i64::try_from(v) {
            Number(N::Int(i))
        } else {
            Number(N::UInt(v))
        }
    }

    /// From a float.
    pub fn from_f64(v: f64) -> Self {
        Number(N::Float(v))
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::Int(i) => Some(i),
            N::UInt(u) => i64::try_from(u).ok(),
            N::Float(_) => None,
        }
    }

    /// As `u64` if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::Int(i) => u64::try_from(i).ok(),
            N::UInt(u) => Some(u),
            N::Float(_) => None,
        }
    }

    /// As `f64` if representable (always, like upstream for finite values).
    pub fn as_f64(&self) -> Option<f64> {
        Some(self.as_f64_lossy())
    }

    /// As `f64`, converting integers lossily if needed.
    pub fn as_f64_lossy(&self) -> f64 {
        match self.0 {
            N::Int(i) => i as f64,
            N::UInt(u) => u as f64,
            N::Float(f) => f,
        }
    }

    /// True if stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            N::Int(i) => write!(f, "{i}"),
            N::UInt(u) => write!(f, "{u}"),
            N::Float(x) => {
                if x.is_finite() {
                    // Emit a trailing `.0` for integral floats so the value
                    // re-parses as a float (JSON has no float/int marker).
                    if x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; upstream errors — emit null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key–value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As `&str` for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `i64` for integral numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `u64` for non-negative integral numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `f64` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Write compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Write pretty JSON (2-space indent) into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

/// Escape and quote `s` as a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}
