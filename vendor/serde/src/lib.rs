//! Offline vendored stand-in for the [`serde`] crate.
//!
//! The build container has no network access, so the workspace vendors a
//! functional serialisation layer with serde's *spelling* (`Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]`, a subset of
//! `#[serde(...)]` attributes) but a radically simpler data model: values
//! serialise to/from an owned JSON tree ([`json::Value`]), and
//! `serde_json` is a thin formatter/parser over that tree. This supports
//! everything the workspace needs — JSON only — and none of serde's
//! zero-copy or non-self-describing formats.
//!
//! Supported derive attributes: `#[serde(rename = "…")]` (fields and
//! variants), `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(skip_serializing_if = "path")]`. Missing `Option` fields
//! deserialise to `None` without needing `default`.
//!
//! [`serde`]: https://crates.io/crates/serde

pub mod json;

use json::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value serialisable to the JSON tree.
pub trait Serialize {
    /// Convert to the tree.
    fn to_json_value(&self) -> Value;
}

/// A value reconstructible from the JSON tree.
pub trait Deserialize: Sized {
    /// Parse from the tree.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialisation error: a human-readable path + reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// New error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Prefix the error with a field / context name.
    pub fn context(self, ctx: &str) -> Self {
        DeError(format!("{ctx}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// --------------------------------------------------------------- primitives

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Number(Number::from_i64(i)),
                    // Out of i64 range (large u64/u128): keep magnitude as u64
                    // when possible, else lossily as f64.
                    Err(_) => match u64::try_from(*self) {
                        Ok(u) => Value::Number(Number::from_u64(u)),
                        Err(_) => Value::Number(Number::from_f64(*self as f64)),
                    },
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => {
                        if let Some(i) = n.as_i64() {
                            <$t>::try_from(i).map_err(|_| {
                                DeError::msg(format!("integer {i} out of range for {}", stringify!($t)))
                            })
                        } else if let Some(u) = n.as_u64() {
                            <$t>::try_from(u).map_err(|_| {
                                DeError::msg(format!("integer {u} out of range for {}", stringify!($t)))
                            })
                        } else {
                            Err(DeError::msg(format!(
                                "expected integer, found float {:?}", n.as_f64()
                            )))
                        }
                    }
                    other => Err(DeError::msg(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64_lossy() as $t),
                    other => Err(DeError::msg(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, x)| T::from_json_value(x).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items = <Vec<T>>::from_json_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N}, found {got}")))
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_json_value(&items[$idx])
                            .map_err(|e| e.context(&format!("[{}]", $idx)))?,)+))
                    }
                    Value::Array(items) => Err(DeError::msg(format!(
                        "expected {LEN}-tuple, found array of {}", items.len()
                    ))),
                    other => Err(DeError::msg(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        for v in [0i64, -5, i64::MAX, i64::MIN] {
            let t = v.to_json_value();
            assert_eq!(i64::from_json_value(&t).unwrap(), v);
        }
        let t = (u64::MAX).to_json_value();
        assert_eq!(u64::from_json_value(&t).unwrap(), u64::MAX);
        let t = 1.5f64.to_json_value();
        assert_eq!(f64::from_json_value(&t).unwrap(), 1.5);
        let t = Some("hi".to_string()).to_json_value();
        assert_eq!(
            <Option<String>>::from_json_value(&t).unwrap(),
            Some("hi".to_string())
        );
        assert_eq!(
            <Option<String>>::from_json_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn tuple_and_array_round_trips() {
        let t = (1u32, "x".to_string()).to_json_value();
        assert_eq!(
            <(u32, String)>::from_json_value(&t).unwrap(),
            (1, "x".to_string())
        );
        let t = [3i64, 4].to_json_value();
        assert_eq!(<[i64; 2]>::from_json_value(&t).unwrap(), [3, 4]);
        assert!(<[i64; 3]>::from_json_value(&t).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(i64::from_json_value(&Value::String("x".into())).is_err());
        assert!(bool::from_json_value(&Value::Null).is_err());
        assert!(<Vec<i64>>::from_json_value(&Value::Bool(true)).is_err());
    }
}
