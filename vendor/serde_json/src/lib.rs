//! Offline vendored stand-in for the [`serde_json`] crate.
//!
//! A strict JSON text layer over the vendored `serde`'s owned tree
//! ([`Value`]): [`to_string`] / [`to_string_pretty`] / [`from_str`] plus the
//! [`json!`] literal macro. Supports exactly what the workspace uses.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

pub use serde::json::{Number, Value};
use serde::{Deserialize, Serialize};

/// Parse or serialisation failure with position info where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write_compact(&mut out);
    Ok(out)
}

/// Serialise to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_json_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        // Report 1-based line/column like upstream.
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs unsupported (unused by this
                            // workspace's writers): map to replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Build a [`Value`] with JSON literal syntax. Keys must be literals;
/// values may be nested JSON literals or any `Serialize` expression.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_value!($($tt)+) };
}

/// One JSON value (helper for [`json!`]; not public API).
#[macro_export]
#[doc(hidden)]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_inner!(@start __items ($($tt)*));
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_inner!(@start __fields ($($tt)*));
        $crate::Value::Object(__fields)
    }};
    ($($other:tt)+) => { $crate::to_value(&($($other)+)) };
}

/// Object-entry muncher for [`json!`] (not public API). Accumulates the
/// current value's tokens one `tt` at a time so arbitrary expressions work
/// as values; nested `{}`/`[]`/`()` arrive as single opaque token trees, so
/// any comma seen at this level is an entry separator.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_inner {
    (@entry $vec:ident ($key:literal) ($($val:tt)+) ()) => {
        ::std::vec::Vec::push(&mut $vec, ($key.to_string(), $crate::json_value!($($val)+)));
    };
    (@entry $vec:ident ($key:literal) ($($val:tt)+) (, $($rest:tt)*)) => {
        ::std::vec::Vec::push(&mut $vec, ($key.to_string(), $crate::json_value!($($val)+)));
        $crate::json_object_inner!(@start $vec ($($rest)*));
    };
    (@entry $vec:ident ($key:literal) ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_object_inner!(@entry $vec ($key) ($($val)* $next) ($($rest)*));
    };
    (@start $vec:ident ()) => {};
    (@start $vec:ident ($key:literal : $($rest:tt)*)) => {
        $crate::json_object_inner!(@entry $vec ($key) () ($($rest)*));
    };
}

/// Array-element muncher for [`json!`] (not public API).
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_inner {
    (@elem $vec:ident ($($val:tt)+) ()) => {
        ::std::vec::Vec::push(&mut $vec, $crate::json_value!($($val)+));
    };
    (@elem $vec:ident ($($val:tt)+) (, $($rest:tt)*)) => {
        ::std::vec::Vec::push(&mut $vec, $crate::json_value!($($val)+));
        $crate::json_array_inner!(@start $vec ($($rest)*));
    };
    (@elem $vec:ident ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_array_inner!(@elem $vec ($($val)* $next) ($($rest)*));
    };
    (@start $vec:ident ()) => {};
    (@start $vec:ident ($($rest:tt)+)) => {
        $crate::json_array_inner!(@elem $vec () ($($rest)+));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "name": "x",
            "n": 3,
            "f": 1.5,
            "flag": true,
            "none": null,
            "list": [1, 2, 3],
            "nested": {"a": [true, "s"]},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_rejects_garbage() {
        let v: Value = from_str(r#""a\"b\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA"));
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn numbers_preserve_integers() {
        let v: Value = from_str("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-1.25e2").unwrap();
        assert_eq!(v.as_f64(), Some(-125.0));
        // Float-typed integral values keep their float-ness through text.
        let text = to_string(&Value::Number(Number::from_f64(2.0))).unwrap();
        assert_eq!(text, "2.0");
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let x = 41;
        let v = json!({"a": x, "b": [x, 1], "s": format!("n={x}")});
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(41));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("n=41"));
    }
}
