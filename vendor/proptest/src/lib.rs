//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, numeric-range / tuple / `Just` / char-class-regex
//! strategies, `prop::collection::vec`, `prop::sample::Index`,
//! [`any`], [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics with the assertion message and the
//! case number; the RNG is seeded deterministically from the test name,
//! so failures reproduce exactly on re-run.

pub use rand::{RngCore, SeedableRng};

/// The RNG driving all strategies (deterministic per test).
pub type TestRng = rand::rngs::StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed assertion inside a proptest case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

pub mod strategy {
    //! The [`Strategy`] trait and the strategy combinators / primitives.

    use super::TestRng;
    use rand::Rng;

    /// Produces random values of `Self::Value`. Object safe; combinators
    /// are gated on `Self: Sized` so `Box<dyn Strategy<Value = V>>` works
    /// (needed by `prop_oneof!`).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn sample_value(&self, rng: &mut TestRng) -> V {
            (**self).sample_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// From `(weight, strategy)` arms; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample_value(rng);
                }
                pick -= *w;
            }
            unreachable!("weights summed to total")
        }
    }

    /// Box a strategy for use in heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: crate::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `&'static str` char-class patterns (`"[a-z ]{0,12}"`) act as
    /// string strategies, mirroring proptest's regex-string support for
    /// the single-class subset this workspace uses. A pattern without a
    /// leading `[` yields the literal string itself.
    impl Strategy for &'static str {
        type Value = String;

        fn sample_value(&self, rng: &mut TestRng) -> String {
            if !self.starts_with('[') {
                return (*self).to_string();
            }
            let (alphabet, min, max) = parse_char_class(self);
            if alphabet.is_empty() {
                return String::new();
            }
            let len = rng.gen_range(min..=max);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parse `[class]{m,n}` (or `[class]{n}` / bare `[class]`, meaning
    /// one repetition). Supports `\n`, `\r`, `\t`, `\\`, `\"`, escaped
    /// `\]`/`\-`, and `a-z` ranges inside the class.
    fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
        let chars: Vec<char> = pattern.chars().collect();
        if chars.first() != Some(&'[') {
            // Literal string: exactly itself.
            return (Vec::new(), 0, 0);
        }
        let mut alphabet = Vec::new();
        let mut i = 1;
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                match chars[i] {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                }
            } else {
                chars[i]
            };
            // Range like `a-z` (a bare `-` at class end is literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        alphabet.push(ch);
                    }
                }
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        // Past `]`: optional `{m,n}` / `{n}` repetition.
        let rest: String = chars.iter().skip(i + 1).collect();
        let (min, max) =
            if let Some(spec) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(0),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
        (alphabet, min, max.max(min))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::SeedableRng;

        #[test]
        fn char_class_respects_alphabet_and_length() {
            let mut rng = TestRng::seed_from_u64(1);
            for _ in 0..200 {
                let s = "[a-c]{2,5}".sample_value(&mut rng);
                assert!((2..=5).contains(&s.chars().count()), "len {}", s.len());
                assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            }
        }

        #[test]
        fn escaped_class_members() {
            let mut rng = TestRng::seed_from_u64(2);
            let s = "[\\n\"]{64}".sample_value(&mut rng);
            assert_eq!(s.chars().count(), 64);
            assert!(s.chars().all(|c| c == '\n' || c == '"'));
        }
    }
}

/// Types that `any::<T>()` can generate uniformly.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Uniform in [0, 1): full-range floats break most numeric code
        // in uninteresting ways, matching how the workspace uses ranges.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> sample::Index {
        sample::Index::from_raw(rng.next_u64())
    }
}

/// Uniform values of `T` (via [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specifier for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A `Vec` whose elements come from `element` and whose length comes
    /// from `len` (fixed or range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Index sampling (`any::<prop::sample::Index>()`).

    /// A deferred uniform index: stores raw entropy, projected onto a
    /// concrete `0..len` range only when [`Index::index`] is called.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Project onto `0..len`; panics if `len == 0` (as upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
        pub use crate::{collection, sample};
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` random draws; the
/// body may use `prop_assert*` macros (which short-circuit the case).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed (FNV-1a over the test name).
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __seed = (__seed ^ __b as u64).wrapping_mul(0x100_0000_01b3);
            }
            let mut __rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(
                    let $p = $crate::strategy::Strategy::sample_value(&($s), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert inside a proptest body; on failure the case returns an error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        __l,
                        __r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
}

/// Weighted alternation between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_compose(
            v in prop::collection::vec((0u8..4, 10i64..20), 2..6),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            let (a, b) = v[ix.index(v.len())];
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![3 => (0i64..5).prop_map(|v| v * 2), 1 => Just(99i64)]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 10), "got {}", x);
        }
    }

    #[test]
    fn proptest_macro_generates_runnable_tests() {
        ranges_stay_in_bounds();
        vec_and_tuple_compose();
        oneof_and_map();
    }
}
