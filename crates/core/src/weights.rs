//! Inverse probability weighting and scaling (paper §4.3.1, Algorithm 2).
//!
//! A uniform full-outer-join sample is *biased* for each base relation: a
//! base tuple fanned out `k` times appears `k` times as often. Following the
//! Horvitz–Thompson construction, each sampled FOJ row is down-weighted for
//! relation `T` by the inverse of the row's total fanout excluding `T` and
//! its ancestors (Eq 4). Scaling then renormalises the weights so they sum
//! to `|T|`, letting a small FOJ sample generate full-size relations.

use sam_ar::{ArSchema, ModelRow};

/// Per-sample, per-table weighting derived from one batch of model rows.
#[derive(Debug, Clone)]
pub struct WeightedSamples {
    /// `participates[r][t]`: table `t` is present in row `r` (its indicator
    /// and all its ancestors' indicators are 1; the root always is).
    pub participates: Vec<Vec<bool>>,
    /// `weight[r][t] = W_T(x_r)` (Eq 4); 0 when `t` does not participate.
    pub weight: Vec<Vec<f64>>,
    /// `scaled[r][t] = W^s_T(x_r)` after multiplying by `|T| / W^sum_T`.
    pub scaled: Vec<Vec<f64>>,
    /// Per-table cumulative raw weight `W^sum_T`.
    pub weight_sum: Vec<f64>,
    /// Per-table scale factor `|T| / W^sum_T` (0 if the sum is 0).
    pub scale_factor: Vec<f64>,
    /// Decoded fanout value per row per table (non-root; `max(F, 1)` applied,
    /// 1 for NULL/absent sides per the paper's NULL handling).
    pub fanout: Vec<Vec<u64>>,
}

/// Decode participation: a table is present iff its indicator bin is 1 and
/// its parent participates.
fn participation(schema: &ArSchema, row: &ModelRow) -> Vec<bool> {
    let graph = schema.graph();
    let n = graph.len();
    let mut out = vec![false; n];
    for &t in graph.topo_order() {
        out[t] = match graph.parent(t) {
            None => true,
            Some(p) => {
                out[p]
                    && schema
                        .indicator_pos(t)
                        .map(|pos| row[pos] == 1)
                        .unwrap_or(false)
            }
        };
    }
    out
}

/// Decode a row's effective fanout per table: `max(F_t, 1)` when the table
/// participates, else 1 (paper: NULL fanouts count as 1 in weights).
fn effective_fanouts(schema: &ArSchema, row: &ModelRow, participates: &[bool]) -> Vec<u64> {
    let graph = schema.graph();
    (0..graph.len())
        .map(|t| {
            if !participates[t] {
                return 1;
            }
            match schema.fanout_pos(t) {
                Some(pos) => {
                    let enc = &schema.columns()[pos].encoding;
                    let v = enc
                        .representative(row[pos] as usize)
                        .as_int()
                        .expect("fanout values are ints");
                    (v.max(1)) as u64
                }
                None => 1, // root
            }
        })
        .collect()
}

/// Apply inverse probability weighting + scaling to a batch of model rows.
pub fn weigh_samples(schema: &ArSchema, rows: &[ModelRow]) -> WeightedSamples {
    let graph = schema.graph();
    let n = graph.len();
    let mut participates = Vec::with_capacity(rows.len());
    let mut weight = Vec::with_capacity(rows.len());
    let mut fanout = Vec::with_capacity(rows.len());
    let mut weight_sum = vec![0.0f64; n];

    // Pre-compute, per table, which other tables' fanouts divide its weight:
    // everything except itself and its ancestors (Eq 4).
    let divisors: Vec<Vec<usize>> = (0..n)
        .map(|t| {
            let mut excluded = graph.ancestors(t);
            excluded.push(t);
            (0..n)
                .filter(|&o| graph.parent(o).is_some() && !excluded.contains(&o))
                .collect()
        })
        .collect();

    for row in rows {
        let part = participation(schema, row);
        let fans = effective_fanouts(schema, row, &part);
        let mut w = vec![0.0f64; n];
        for (t, wt) in w.iter_mut().enumerate() {
            if !part[t] {
                continue;
            }
            let denom: f64 = divisors[t].iter().map(|&o| fans[o] as f64).product();
            *wt = 1.0 / denom;
            weight_sum[t] += *wt;
        }
        participates.push(part);
        weight.push(w);
        fanout.push(fans);
    }

    let _scale_span = sam_obs::span!("scale", tables = n, rows = rows.len());
    let scale_factor: Vec<f64> = (0..n)
        .map(|t| {
            if weight_sum[t] > 0.0 {
                schema.table_size(t) as f64 / weight_sum[t]
            } else {
                0.0
            }
        })
        .collect();
    let scaled: Vec<Vec<f64>> = weight
        .iter()
        .map(|w| w.iter().zip(&scale_factor).map(|(a, s)| a * s).collect())
        .collect();

    WeightedSamples {
        participates,
        weight,
        scaled,
        weight_sum,
        scale_factor,
        fanout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_ar::{ArSchema, EncodingOptions};
    use sam_storage::{paper_example, DatabaseStats};

    fn schema() -> ArSchema {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap()
    }

    /// Recreate the four samples of Figure 3(c) as model rows.
    ///
    /// Model layout: [A.a, I_B, F_B, B.b, I_C, F_C, C.c]; domains:
    /// A.a {m,n}; F {0,1,2}; B.b {a,b,c}; C.c {i,j}.
    fn figure3c_rows() -> Vec<ModelRow> {
        vec![
            // (1,m): F_B=1, F_C=2; contents arbitrary in-branch.
            vec![0, 1, 1, 0, 1, 2, 0],
            // (2,m): F_B=2, F_C=2 — two samples.
            vec![0, 1, 2, 1, 1, 2, 0],
            vec![0, 1, 2, 2, 1, 2, 1],
            // (n): joins nothing.
            vec![1, 0, 0, 0, 0, 0, 0],
        ]
    }

    #[test]
    fn weights_match_paper_figure3() {
        let s = schema();
        let w = weigh_samples(&s, &figure3c_rows());
        let a = 0usize;
        // W_A per paper: 0.5, 0.25, 0.25, 1.
        assert!((w.weight[0][a] - 0.5).abs() < 1e-9);
        assert!((w.weight[1][a] - 0.25).abs() < 1e-9);
        assert!((w.weight[2][a] - 0.25).abs() < 1e-9);
        assert!((w.weight[3][a] - 1.0).abs() < 1e-9);
        // W_A^sum = 2, |A| = 4 → scale 2; scaled: 1, 0.5, 0.5, 2.
        assert!((w.weight_sum[a] - 2.0).abs() < 1e-9);
        assert!((w.scale_factor[a] - 2.0).abs() < 1e-9);
        assert!((w.scaled[0][a] - 1.0).abs() < 1e-9);
        assert!((w.scaled[3][a] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_weights_sum_to_table_sizes() {
        let s = schema();
        let w = weigh_samples(&s, &figure3c_rows());
        for t in 0..3 {
            let sum: f64 = w.scaled.iter().map(|r| r[t]).sum();
            assert!(
                (sum - s.table_size(t) as f64).abs() < 1e-9,
                "table {t}: {sum}"
            );
        }
    }

    #[test]
    fn null_rows_derive_only_root_samples() {
        let s = schema();
        let w = weigh_samples(&s, &figure3c_rows());
        // Fourth sample: B and C absent.
        assert!(w.participates[3][0]);
        assert!(!w.participates[3][1]);
        assert!(!w.participates[3][2]);
        assert_eq!(w.weight[3][1], 0.0);
        assert_eq!(w.weight[3][2], 0.0);
        // NULL fanouts counted as 1 in W_A.
        assert_eq!(w.fanout[3], vec![1, 1, 1]);
    }

    #[test]
    fn fk_table_weights_divide_by_sibling_fanout_only() {
        let s = schema();
        let w = weigh_samples(&s, &figure3c_rows());
        let b = 1usize;
        // W_B(row 0) = 1/F_C = 0.5 (B and its ancestor A excluded).
        assert!((w.weight[0][b] - 0.5).abs() < 1e-9);
        // Row 1: F_C = 2 → 0.5.
        assert!((w.weight[1][b] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inconsistent_indicator_descendant_is_absent() {
        // If a model samples I_B = 0 but some descendant indicator 1, the
        // descendant must still be treated as absent. (Use the deeper-tree
        // schema from sam-storage's tests via a quick inline build.)
        use sam_storage::{
            ColumnDef, DataType, Database, DatabaseSchema, ForeignKeyEdge, Table, TableSchema,
            Value,
        };
        let a_schema = TableSchema::new(
            "A",
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::content("a", DataType::Int),
            ],
        );
        let b_schema = TableSchema::new(
            "B",
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::foreign_key("aid", "A"),
                ColumnDef::content("b", DataType::Int),
            ],
        );
        let d_schema = TableSchema::new(
            "D",
            vec![
                ColumnDef::foreign_key("bid", "B"),
                ColumnDef::content("d", DataType::Int),
            ],
        );
        let schema = DatabaseSchema::new(
            vec![a_schema.clone(), b_schema.clone(), d_schema.clone()],
            vec![
                ForeignKeyEdge {
                    pk_table: "A".into(),
                    fk_table: "B".into(),
                    fk_column: "aid".into(),
                },
                ForeignKeyEdge {
                    pk_table: "B".into(),
                    fk_table: "D".into(),
                    fk_column: "bid".into(),
                },
            ],
        )
        .unwrap();
        let a = Table::from_rows(a_schema, &[vec![Value::Int(1), Value::Int(10)]]).unwrap();
        let b = Table::from_rows(
            b_schema,
            &[vec![Value::Int(1), Value::Int(1), Value::Int(5)]],
        )
        .unwrap();
        let d = Table::from_rows(d_schema, &[vec![Value::Int(1), Value::Int(7)]]).unwrap();
        let db = Database::new(schema, vec![a, b, d], true).unwrap();
        let stats = DatabaseStats::from_database(&db);
        let s = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        // Layout: [A.a, I_B, F_B, B.b, I_D, F_D, D.d]; set I_B=0 but I_D=1.
        let rows = vec![vec![0u32, 0, 0, 0, 1, 1, 0]];
        let w = weigh_samples(&s, &rows);
        assert!(!w.participates[0][1], "B absent");
        assert!(!w.participates[0][2], "D must be absent when B is");
    }
}

#[cfg(test)]
mod ablation_tests {
    //! The IPW ablation DESIGN.md calls for: uniform FOJ samples *without*
    //! inverse probability weighting recover a biased base-relation
    //! distribution; with IPW the bias disappears (Theorem 1).

    use super::*;
    use sam_ar::{ArSchema, EncodingOptions};
    use sam_storage::{materialize_foj, paper_example, DatabaseStats};

    fn exact_foj_rows(db: &sam_storage::Database, ar: &ArSchema) -> Vec<ModelRow> {
        let foj = materialize_foj(db);
        (0..foj.num_rows())
            .map(|r| {
                ar.columns()
                    .iter()
                    .map(|col| {
                        let pos = match col.kind {
                            sam_ar::ArColumnKind::Content { table, column } => {
                                foj.schema.content_position(table, column).unwrap()
                            }
                            sam_ar::ArColumnKind::Indicator { table } => {
                                foj.schema.indicator_index(table).unwrap()
                            }
                            sam_ar::ArColumnKind::Fanout { table } => {
                                foj.schema.fanout_index(table).unwrap()
                            }
                        };
                        let v = foj.value(r, pos);
                        let code = col.encoding.base_domain().code_of(&v).unwrap_or(0);
                        col.encoding.bin_of_code(code) as u32
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn without_ipw_the_marginal_is_biased_with_ipw_it_is_not() {
        // In the Figure-3 FOJ, A-tuple (2,m) appears 4/8 of the time, but
        // its true base-relation frequency is 1/4. Unweighted (all-ones)
        // estimates inherit the 'm' bias; IPW removes it.
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let rows = exact_foj_rows(&db, &ar);
        let w = weigh_samples(&ar, &rows);

        // Content column A.a is model position 0; bin 0 = 'm'.
        let m_rows: Vec<usize> = (0..rows.len()).filter(|&r| rows[r][0] == 0).collect();

        // Unweighted frequency of 'm' across FOJ samples: 6/8 = 0.75.
        let unweighted = m_rows.len() as f64 / rows.len() as f64;
        assert!((unweighted - 0.75).abs() < 1e-9);

        // IPW-weighted frequency: Σ W_A over 'm' rows / Σ W_A = 2/4 = 0.5,
        // the true base-relation marginal.
        let m_mass: f64 = m_rows.iter().map(|&r| w.weight[r][0]).sum();
        let weighted = m_mass / w.weight_sum[0];
        assert!(
            (weighted - 0.5).abs() < 1e-9,
            "IPW marginal {weighted} != 0.5"
        );
    }
}
