//! Turning weighted FOJ samples into base relations.
//!
//! Two join-key strategies:
//!
//! * [`JoinKeyStrategy::GroupAndMerge`] — the paper's Algorithm 3 (via
//!   [`crate::group_merge`]): keys derived from the full-outer-join sample
//!   itself, preserving correlations across *all* relations.
//! * [`JoinKeyStrategy::PairwiseViews`] — the naive baseline the paper's
//!   Figure 4 dissects (and the "SAM w/o Group-and-Merge" ablation of
//!   Tables 3/4/6): primary keys assigned in sample order, foreign keys
//!   resolved by matching only the *parent relation's content* — which keeps
//!   pairwise pk/fk correlation but breaks correlation between sibling
//!   relations.

use crate::error::SamError;
use crate::group_merge::{assign_keys_group_merge, AssignedKeys};
use crate::weights::WeightedSamples;
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_ar::{ArSchema, ModelRow};
use sam_storage::{ColumnRole, Database, DatabaseSchema, Table, Value};
use std::collections::HashMap;

/// How join keys are assigned to generated base relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKeyStrategy {
    /// Algorithm 3 (the paper's contribution).
    GroupAndMerge,
    /// Independent per-view assignment (the Figure-4 failure mode),
    /// used as the w/o-Group-and-Merge ablation.
    PairwiseViews,
}

/// Decode the content columns of table `t` from a sampled row into values,
/// drawing uniformly within intervalized bins.
fn decode_content(
    ar: &ArSchema,
    rows: &[ModelRow],
    row: usize,
    t: usize,
    rng: &mut StdRng,
) -> HashMap<usize, Value> {
    let mut out = HashMap::new();
    for &(ci, pos) in ar.content_pos(t) {
        let enc = &ar.columns()[pos].encoding;
        let code = enc.decode(rows[row][pos] as usize, rng);
        out.insert(ci, enc.base_domain().value(code).clone());
    }
    out
}

/// Emit one table's rows given a key source.
struct TableEmitter<'a> {
    db_schema: &'a DatabaseSchema,
    ar: &'a ArSchema,
}

impl<'a> TableEmitter<'a> {
    /// Build a full row of `t` from decoded content plus key values.
    fn make_row(
        &self,
        t: usize,
        content: &HashMap<usize, Value>,
        pk: Option<u64>,
        fk: Option<u64>,
        seq_pk: &mut u64,
    ) -> Vec<Value> {
        let tname = &self.ar.graph().tables()[t];
        let schema = self.db_schema.table(tname).expect("schema table");
        schema
            .columns
            .iter()
            .enumerate()
            .map(|(ci, col)| match &col.role {
                // Unmodelled columns (empty observed domain) emit NULL.
                ColumnRole::Content => content.get(&ci).cloned().unwrap_or(Value::Null),
                ColumnRole::PrimaryKey => match pk {
                    Some(k) => Value::Int(k as i64),
                    None => {
                        // Unreferenced pk: sequential assignment (paper:
                        // "assign values to the primary key columns
                        // sequentially").
                        *seq_pk += 1;
                        Value::Int(*seq_pk as i64)
                    }
                },
                ColumnRole::ForeignKey { .. } => match fk {
                    Some(k) => Value::Int(k as i64),
                    None => Value::Null,
                },
            })
            .collect()
    }
}

/// Assemble a multi-relation database with Group-and-Merge keys.
pub fn assemble_group_merge(
    db_schema: &DatabaseSchema,
    ar: &ArSchema,
    rows: &[ModelRow],
    weights: &WeightedSamples,
    assigned: &AssignedKeys,
    seed: u64,
) -> Result<Database, SamError> {
    let graph = ar.graph();
    let n = graph.len();
    let emitter = TableEmitter { db_schema, ar };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = Vec::with_capacity(n);

    for t in 0..n {
        let tname = &graph.tables()[t];
        let schema = db_schema
            .table(tname)
            .expect("graph tables come from schema")
            .clone();
        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        let mut seq_pk = 0u64;

        if !assigned.pk_tuples[t].is_empty() || !graph.children(t).is_empty() {
            // Referenced table: one tuple per assigned key.
            for pk in &assigned.pk_tuples[t] {
                let content = decode_content(ar, rows, pk.row, t, &mut rng);
                out_rows.push(emitter.make_row(
                    t,
                    &content,
                    Some(pk.key),
                    pk.parent_key,
                    &mut seq_pk,
                ));
            }
        } else {
            // Leaf table: "aggregate the scaled weights" (paper §4.3.2) per
            // (parent key, content signature) before rounding — rounding
            // per piece would bias against fractional-weight contents that
            // never land on a carry boundary.
            let parent = graph.parent(t);
            let content_positions: Vec<usize> =
                ar.content_pos(t).iter().map(|&(_, pos)| pos).collect();
            let mut agg: std::collections::BTreeMap<(u64, Vec<u32>), (f64, usize)> =
                std::collections::BTreeMap::new();
            for piece in &assigned.pieces {
                if !weights.participates[piece.row][t] {
                    continue;
                }
                let fk = match parent {
                    Some(p) => match piece.keys[p] {
                        Some(k) => k,
                        None => continue, // parent chunk never keyed
                    },
                    None => 0,
                };
                let sig: Vec<u32> = content_positions
                    .iter()
                    .map(|&pos| rows[piece.row][pos])
                    .collect();
                let entry = agg.entry((fk, sig)).or_insert((0.0, piece.row));
                entry.0 += piece.effective_weight(ar, weights, t);
            }
            let mut carry = 0.0f64;
            for ((fk, _sig), (w, rep_row)) in agg {
                carry += w;
                while carry >= 1.0 - 1e-9 {
                    carry -= 1.0;
                    let content = decode_content(ar, rows, rep_row, t, &mut rng);
                    let fk_value = parent.map(|_| fk);
                    out_rows.push(emitter.make_row(t, &content, None, fk_value, &mut seq_pk));
                }
            }
        }
        tables.push(Table::from_rows(schema, &out_rows)?);
    }

    // Order tables to match schema declaration order.
    let ordered = db_schema
        .tables()
        .iter()
        .map(|ts| {
            let idx = graph.index_of(&ts.name).expect("table in graph");
            tables[idx].clone()
        })
        .collect();
    Ok(Database::new(db_schema.clone(), ordered, true)?)
}

/// Assemble with the naive per-view key assignment (ablation baseline).
pub fn assemble_pairwise(
    db_schema: &DatabaseSchema,
    ar: &ArSchema,
    rows: &[ModelRow],
    weights: &WeightedSamples,
    seed: u64,
) -> Result<Database, SamError> {
    let graph = ar.graph();
    let n = graph.len();
    let emitter = TableEmitter { db_schema, ar };
    let mut rng = StdRng::seed_from_u64(seed);

    // Per referenced table: emitted keys with the representative row's
    // content-bin signature (the matching view of Figure 4 sees content
    // only — not fanouts, not sibling columns).
    let mut key_index: Vec<HashMap<Vec<u32>, Vec<u64>>> = vec![HashMap::new(); n];
    let mut key_rows: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n];
    let content_sig = |t: usize, row: usize| -> Vec<u32> {
        ar.content_pos(t)
            .iter()
            .map(|&(_, pos)| rows[row][pos])
            .collect()
    };

    for &t in graph.topo_order() {
        if graph.children(t).is_empty() {
            continue;
        }
        // Assign keys in plain sample order — no identifier grouping.
        let mut cum = 0.0f64;
        let mut counter = 0u64;
        for (r, part) in weights.participates.iter().enumerate() {
            if !part[t] {
                continue;
            }
            cum += weights.scaled[r][t];
            while cum >= 1.0 - 1e-9 {
                cum -= 1.0;
                counter += 1;
                key_rows[t].push((counter, r));
                key_index[t]
                    .entry(content_sig(t, r))
                    .or_default()
                    .push(counter);
            }
        }
    }

    // Resolve a foreign key for a tuple derived from `row` pointing at
    // parent `p`: uniform among parent keys whose content matches; fallback
    // uniform among all parent keys.
    let resolve_fk = |p: usize, row: usize, rng: &mut StdRng| -> Option<u64> {
        let sig = content_sig(p, row);
        if let Some(keys) = key_index[p].get(&sig) {
            return keys.choose(rng).copied();
        }
        let total = key_rows[p].len() as u64;
        if total == 0 {
            None
        } else {
            Some(rng.gen_range(1..=total))
        }
    };

    let mut tables = Vec::with_capacity(n);
    for t in 0..n {
        let tname = &graph.tables()[t];
        let schema = db_schema.table(tname).expect("schema table").clone();
        let mut out_rows = Vec::new();
        let mut seq_pk = 0u64;

        if !graph.children(t).is_empty() {
            let parent = graph.parent(t);
            let pairs = key_rows[t].clone();
            for (key, row) in pairs {
                let fk = parent.and_then(|p| resolve_fk(p, row, &mut rng));
                let content = decode_content(ar, rows, row, t, &mut rng);
                out_rows.push(emitter.make_row(t, &content, Some(key), fk, &mut seq_pk));
            }
        } else {
            // Aggregate scaled weights per content signature before rounding
            // (same fairness fix as Group-and-Merge emission); each emitted
            // copy resolves its fk independently through the pairwise view —
            // the naive strategy under test.
            let parent = graph.parent(t);
            let mut agg: std::collections::BTreeMap<Vec<u32>, (f64, usize)> =
                std::collections::BTreeMap::new();
            let positions: Vec<usize> = ar.content_pos(t).iter().map(|&(_, pos)| pos).collect();
            for (r, part) in weights.participates.iter().enumerate() {
                if !part[t] {
                    continue;
                }
                let sig: Vec<u32> = positions.iter().map(|&pos| rows[r][pos]).collect();
                let entry = agg.entry(sig).or_insert((0.0, r));
                entry.0 += weights.scaled[r][t];
            }
            let mut carry = 0.0f64;
            for (_sig, (w, rep_row)) in agg {
                carry += w;
                while carry >= 1.0 - 1e-9 {
                    carry -= 1.0;
                    let fk = match parent {
                        Some(p) => match resolve_fk(p, rep_row, &mut rng) {
                            Some(k) => Some(k),
                            None => continue,
                        },
                        None => None,
                    };
                    let content = decode_content(ar, rows, rep_row, t, &mut rng);
                    out_rows.push(emitter.make_row(t, &content, None, fk, &mut seq_pk));
                }
            }
        }
        tables.push(Table::from_rows(schema, &out_rows)?);
    }

    let ordered = db_schema
        .tables()
        .iter()
        .map(|ts| {
            let idx = graph.index_of(&ts.name).expect("table in graph");
            tables[idx].clone()
        })
        .collect();
    Ok(Database::new(db_schema.clone(), ordered, true)?)
}

/// Generate a multi-relation database from sampled model rows (Algorithm 2
/// + chosen key strategy).
pub fn assemble_database(
    db_schema: &DatabaseSchema,
    ar: &ArSchema,
    rows: &[ModelRow],
    strategy: JoinKeyStrategy,
    seed: u64,
) -> Result<Database, SamError> {
    let weights = {
        let _span = sam_obs::span!("weight", rows = rows.len());
        crate::weights::weigh_samples(ar, rows)
    };
    match strategy {
        JoinKeyStrategy::GroupAndMerge => {
            let assigned = {
                let _span = sam_obs::span!("group_merge", rows = rows.len());
                assign_keys_group_merge(ar, rows, &weights)
            };
            let _span = sam_obs::span!("assemble", strategy = "group_merge");
            assemble_group_merge(db_schema, ar, rows, &weights, &assigned, seed)
        }
        JoinKeyStrategy::PairwiseViews => {
            let _span = sam_obs::span!("assemble", strategy = "pairwise");
            assemble_pairwise(db_schema, ar, rows, &weights, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_ar::EncodingOptions;
    use sam_query::{evaluate_cardinality, Query};
    use sam_storage::{paper_example, DatabaseStats};

    fn setup() -> (sam_storage::Database, ArSchema) {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        (db, ar)
    }

    /// The Figure 3(c) samples (see weights.rs) with faithful content bins:
    /// row 0 = the (1,m) FOJ slice with B='a', C='i';
    /// rows 1–2 = the (2,m) slices with (B='b', C='i') and (B='c', C='j');
    /// row 3 = the NULL row for the 'n' tuples.
    fn figure3c_rows() -> Vec<ModelRow> {
        vec![
            vec![0, 1, 1, 0, 1, 2, 0],
            vec![0, 1, 2, 1, 1, 2, 0],
            vec![0, 1, 2, 2, 1, 2, 1],
            vec![1, 0, 0, 0, 0, 0, 0],
        ]
    }

    #[test]
    fn group_merge_recovers_paper_database_sizes() {
        let (db, ar) = setup();
        let gen = assemble_database(
            db.schema(),
            &ar,
            &figure3c_rows(),
            JoinKeyStrategy::GroupAndMerge,
            7,
        )
        .unwrap();
        assert_eq!(gen.table_by_name("A").unwrap().num_rows(), 4);
        assert_eq!(gen.table_by_name("B").unwrap().num_rows(), 3);
        assert_eq!(gen.table_by_name("C").unwrap().num_rows(), 4);
    }

    #[test]
    fn group_merge_recovers_join_cardinalities() {
        // The generated database must reproduce the original's join
        // cardinalities — the whole point of Group-and-Merge.
        let (db, ar) = setup();
        let gen = assemble_database(
            db.schema(),
            &ar,
            &figure3c_rows(),
            JoinKeyStrategy::GroupAndMerge,
            7,
        )
        .unwrap();
        for q in [
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["A".into(), "C".into()], vec![]),
            Query::join(vec!["B".into(), "C".into()], vec![]),
            Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
        ] {
            let truth = evaluate_cardinality(&db, &q).unwrap();
            let got = evaluate_cardinality(&gen, &q).unwrap();
            assert_eq!(got, truth, "query {q}");
        }
    }

    #[test]
    fn group_merge_recovers_content_marginals() {
        let (db, ar) = setup();
        let gen = assemble_database(
            db.schema(),
            &ar,
            &figure3c_rows(),
            JoinKeyStrategy::GroupAndMerge,
            7,
        )
        .unwrap();
        // A has 2 'm' and 2 'n' tuples.
        let a = gen.table_by_name("A").unwrap();
        let m_count = a
            .column_by_name("a")
            .unwrap()
            .iter()
            .filter(|v| *v == Value::str("m"))
            .count();
        assert_eq!(m_count, 2);
        let _ = db;
    }

    #[test]
    fn pairwise_preserves_sizes_but_may_break_sibling_joins() {
        let (db, ar) = setup();
        let gen = assemble_database(
            db.schema(),
            &ar,
            &figure3c_rows(),
            JoinKeyStrategy::PairwiseViews,
            11,
        )
        .unwrap();
        assert_eq!(gen.table_by_name("A").unwrap().num_rows(), 4);
        assert_eq!(gen.table_by_name("B").unwrap().num_rows(), 3);
        assert_eq!(gen.table_by_name("C").unwrap().num_rows(), 4);
        // Pairwise joins still close to truth; the FOJ-wide correlation may
        // differ (this is the documented failure mode, not asserted here).
        let q = Query::join(vec!["A".into(), "B".into()], vec![]);
        let truth = evaluate_cardinality(&db, &q).unwrap();
        let got = evaluate_cardinality(&gen, &q).unwrap();
        assert!((got as i64 - truth as i64).unsigned_abs() <= 3);
    }

    #[test]
    fn generated_database_passes_integrity_checks() {
        let (db, ar) = setup();
        // Database::new(check_integrity=true) runs inside assemble — reaching
        // here with Ok proves fk integrity.
        assert!(assemble_database(
            db.schema(),
            &ar,
            &figure3c_rows(),
            JoinKeyStrategy::GroupAndMerge,
            3,
        )
        .is_ok());
    }
}
