//! Error type for the SAM pipeline.

use std::fmt;

/// Errors raised by the SAM pipeline.
#[derive(Debug)]
pub enum SamError {
    /// AR-model layer error.
    Ar(sam_ar::ArError),
    /// Storage layer error.
    Storage(sam_storage::StorageError),
    /// Invalid configuration or degenerate state (message).
    Invalid(String),
    /// The job was cancelled before completing.
    Cancelled,
}

impl fmt::Display for SamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamError::Ar(e) => write!(f, "model error: {e}"),
            SamError::Storage(e) => write!(f, "storage error: {e}"),
            SamError::Invalid(m) => write!(f, "invalid: {m}"),
            SamError::Cancelled => write!(f, "generation job cancelled"),
        }
    }
}

impl std::error::Error for SamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamError::Ar(e) => Some(e),
            SamError::Storage(e) => Some(e),
            SamError::Invalid(_) | SamError::Cancelled => None,
        }
    }
}

impl From<sam_ar::ArError> for SamError {
    fn from(e: sam_ar::ArError) -> Self {
        SamError::Ar(e)
    }
}

impl From<sam_storage::StorageError> for SamError {
    fn from(e: sam_storage::StorageError) -> Self {
        SamError::Storage(e)
    }
}
