//! The end-to-end SAM pipeline (paper §3.2, Figure 1).
//!
//! **Learning stage**: build the model schema from metadata + the workload's
//! predicate constants, then train a single deep AR model of the full outer
//! join from the (query, cardinality) pairs with DPS.
//!
//! **Generation stage**: sample FOJ tuples from the model, apply inverse
//! probability weighting and scaling for unbiased base-relation samples, and
//! assign join keys with Group-and-Merge.

use crate::assemble::{assemble_database, JoinKeyStrategy};
use crate::error::SamError;
use crate::job::{JobControl, JobStage};
use crate::single::generate_single_relation;
use sam_ar::{
    sample_model_rows_range, train_observed, ArModel, ArModelConfig, ArSchema, EncodingOptions,
    FrozenModel, TrainConfig, TrainReport,
};
use sam_query::Workload;
use sam_storage::{Database, DatabaseSchema, DatabaseStats};
use std::time::Instant;

/// Pipeline hyperparameters.
#[derive(Debug, Clone, Default)]
pub struct SamConfig {
    /// AR model architecture.
    pub model: ArModelConfig,
    /// DPS training parameters.
    pub train: TrainConfig,
    /// Encoding / intervalization policy.
    pub encoding: EncodingOptions,
}

/// Generation-stage parameters.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// FOJ samples to draw for multi-relation databases (`k` of Alg 2).
    /// Ignored for single relations (which sample exactly `|T|`).
    pub foj_samples: usize,
    /// Sampling batch size (one forward pass per batch).
    pub batch: usize,
    /// Sampling / decoding seed.
    pub seed: u64,
    /// Join-key assignment strategy.
    pub strategy: JoinKeyStrategy,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            foj_samples: 10_000,
            batch: 256,
            seed: 0,
            strategy: JoinKeyStrategy::GroupAndMerge,
        }
    }
}

/// A trained SAM ready to generate databases.
#[derive(Clone)]
pub struct TrainedSam {
    db_schema: DatabaseSchema,
    model: FrozenModel,
    /// Training summary (losses, wall time).
    pub report: TrainReport,
}

/// The SAM entry point.
pub struct Sam;

impl Sam {
    /// Learning stage: fit an AR model of the database's joint distribution
    /// from a labelled query workload. `stats` is the metadata summary (table
    /// sizes, domains, fanout caps) — the only data-side input.
    pub fn fit(
        db_schema: &DatabaseSchema,
        stats: &DatabaseStats,
        workload: &Workload,
        config: &SamConfig,
    ) -> Result<TrainedSam, SamError> {
        Sam::fit_observed(db_schema, stats, workload, config, &mut |_| {
            sam_ar::TrainControl::Continue
        })
    }

    /// [`fit`](Sam::fit), reporting per-epoch progress through `observe` and
    /// honouring its [`sam_ar::TrainControl`] verdict — the entry point for
    /// supervised training services that journal epoch events and support
    /// cooperative cancellation.
    pub fn fit_observed(
        db_schema: &DatabaseSchema,
        stats: &DatabaseStats,
        workload: &Workload,
        config: &SamConfig,
        observe: &mut dyn FnMut(sam_ar::TrainProgress) -> sam_ar::TrainControl,
    ) -> Result<TrainedSam, SamError> {
        let queries: Vec<sam_query::Query> = workload.iter().map(|lq| lq.query.clone()).collect();
        let ar_schema = ArSchema::build(db_schema, stats, &queries, &config.encoding)?;
        let mut model = ArModel::new(ar_schema, &config.model);
        let report = train_observed(&mut model, workload, &config.train, observe)?;
        Ok(TrainedSam {
            db_schema: db_schema.clone(),
            model: model.freeze(),
            report,
        })
    }

    /// Wrap an externally trained model (used by experiments that train
    /// incrementally or reuse models).
    pub fn from_frozen(
        db_schema: DatabaseSchema,
        model: FrozenModel,
        report: TrainReport,
    ) -> TrainedSam {
        TrainedSam {
            db_schema,
            model,
            report,
        }
    }
}

/// Summary of one generation run.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// FOJ samples drawn (0 for single-relation generation).
    pub foj_samples: usize,
    /// Wall-clock seconds of the generation stage.
    pub wall_seconds: f64,
}

impl TrainedSam {
    /// The frozen AR model.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// Re-target the frozen model onto another inference backend (weights
    /// shared, kernel swapped): `f32` is the bit-exact reference, `f16` the
    /// blocked half-precision kernel for throughput-bound generation.
    pub fn with_backend(self, kind: sam_nn::BackendKind) -> TrainedSam {
        TrainedSam {
            db_schema: self.db_schema,
            model: self.model.with_backend(kind),
            report: self.report,
        }
    }

    /// The target database schema.
    pub fn db_schema(&self) -> &DatabaseSchema {
        &self.db_schema
    }

    /// Generation stage: produce a synthetic database instance.
    pub fn generate(
        &self,
        config: &GenerationConfig,
    ) -> Result<(Database, GenerationReport), SamError> {
        self.generate_controlled(config, &JobControl::new())
    }

    /// [`generate`](Self::generate) with cooperative cancellation and
    /// progress reporting through `control`.
    ///
    /// The FOJ sampling stage runs in chunks (via
    /// [`sam_ar::sample_model_rows_range`], which reproduces the one-shot
    /// sampler bit-for-bit and keeps one reusable [`sam_ar::SampleBatch`]
    /// per worker so the batch-major forward buffers persist across
    /// batches), checking `control` between chunks, so a cancelled job
    /// returns [`SamError::Cancelled`] within one chunk. The generated
    /// database is identical to a plain `generate` call with the same
    /// config.
    pub fn generate_controlled(
        &self,
        config: &GenerationConfig,
        control: &JobControl,
    ) -> Result<(Database, GenerationReport), SamError> {
        /// Batches sampled between two cancellation / progress checks.
        const CHUNK_BATCHES: usize = 8;

        let start = Instant::now();
        if control.is_cancelled() {
            return Err(SamError::Cancelled);
        }
        let graph = self.model.schema.graph();
        let mut gen_span = sam_obs::span!(
            "generate",
            tables = graph.len(),
            foj_samples = config.foj_samples,
            batch = config.batch
        );
        let db = if graph.len() == 1 {
            control.set_stage(JobStage::Sampling);
            let _sample_span = sam_obs::span!("sample", rows = self.model.schema.table_size(0));
            let table_schema = self
                .db_schema
                .table(&graph.tables()[0])
                .expect("single table present")
                .clone();
            let rows = self.model.schema.table_size(0) as usize;
            generate_single_relation(&self.model, &table_schema, rows, config.batch, config.seed)?
        } else {
            control.set_stage(JobStage::Sampling);
            let batch = config.batch.max(1);
            let n_batches = config.foj_samples.div_ceil(batch);
            let mut rows = Vec::with_capacity(config.foj_samples);
            let sample_span = sam_obs::span!("sample", rows = config.foj_samples, batch = batch);
            let mut next = 0usize;
            while next < n_batches {
                if control.is_cancelled() {
                    return Err(SamError::Cancelled);
                }
                let upto = (next + CHUNK_BATCHES).min(n_batches);
                rows.extend(sample_model_rows_range(
                    &self.model,
                    config.foj_samples,
                    batch,
                    config.seed,
                    next..upto,
                ));
                next = upto;
                control.set_progress(rows.len(), config.foj_samples);
            }
            drop(sample_span);
            if control.is_cancelled() {
                return Err(SamError::Cancelled);
            }
            control.set_stage(JobStage::Assembling);
            assemble_database(
                &self.db_schema,
                &self.model.schema,
                &rows,
                config.strategy,
                config.seed,
            )?
        };
        let generated_tuples: usize = db.tables().iter().map(|t| t.num_rows()).sum();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            sam_obs::gauge("sam_generate_tuples_per_sec").set(generated_tuples as f64 / elapsed);
        }
        gen_span.record("tuples", generated_tuples);
        drop(gen_span);
        control.set_progress(1, 1);
        control.set_stage(JobStage::Finished);
        let report = GenerationReport {
            foj_samples: if graph.len() == 1 {
                0
            } else {
                config.foj_samples
            },
            wall_seconds: start.elapsed().as_secs_f64(),
        };
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_query::{evaluate_cardinality, label_workload, WorkloadGenerator};
    use sam_storage::paper_example;

    /// End-to-end single relation: train on workload, generate, check the
    /// generated relation satisfies the trained constraints roughly.
    #[test]
    fn end_to_end_single_relation() {
        let db = paper_example::figure3_database();
        let single = Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let mut gen = WorkloadGenerator::new(&single, 3);
        let workload = label_workload(&single, gen.single_workload("A", 48)).unwrap();

        let config = SamConfig {
            model: sam_ar::ArModelConfig {
                hidden: vec![16],
                seed: 1,
                residual: false,
                transformer: None,
            },
            train: sam_ar::TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 2e-2,
                ..Default::default()
            },
            ..Default::default()
        };
        let trained = Sam::fit(single.schema(), &stats, &workload, &config).unwrap();
        let (generated, report) = trained.generate(&GenerationConfig::default()).unwrap();
        assert!(report.wall_seconds >= 0.0);
        let t = generated.table_by_name("A").unwrap();
        assert_eq!(t.num_rows(), 4);

        // The generated relation should satisfy most input constraints
        // reasonably (tiny data, so allow slack).
        let mut close = 0;
        for lq in workload.iter() {
            let got = evaluate_cardinality(&generated, &lq.query).unwrap();
            let (a, b) = (got.max(1) as f64, lq.cardinality.max(1) as f64);
            if (a / b).max(b / a) <= 2.0 {
                close += 1;
            }
        }
        assert!(
            close * 2 >= workload.len(),
            "only {close}/{} constraints within 2x",
            workload.len()
        );
    }

    /// Controlled generation is deterministic, reports terminal state, and
    /// honours pre-cancellation.
    #[test]
    fn controlled_generation_matches_plain_and_cancels() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let mut gen = WorkloadGenerator::new(&db, 4);
        let workload = label_workload(&db, gen.multi_workload(16, 2)).unwrap();
        let config = SamConfig {
            model: sam_ar::ArModelConfig {
                hidden: vec![12],
                seed: 4,
                residual: false,
                transformer: None,
            },
            train: sam_ar::TrainConfig {
                epochs: 4,
                batch_size: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
        let gen_config = GenerationConfig {
            foj_samples: 300,
            batch: 32, // 10 batches → several chunk boundaries
            seed: 6,
            strategy: JoinKeyStrategy::GroupAndMerge,
        };

        let control = crate::job::JobControl::new();
        let (a, _) = trained.generate_controlled(&gen_config, &control).unwrap();
        assert_eq!(control.stage(), crate::job::JobStage::Finished);
        assert_eq!(control.progress(), 1.0);

        let (b, _) = trained.generate(&gen_config).unwrap();
        for (ta, tb) in a.tables().iter().zip(b.tables()) {
            assert_eq!(ta.num_rows(), tb.num_rows());
            for r in 0..ta.num_rows() {
                assert_eq!(ta.row(r), tb.row(r), "row {r} of {}", ta.name());
            }
        }

        let cancelled = crate::job::JobControl::new();
        cancelled.cancel();
        match trained.generate_controlled(&gen_config, &cancelled) {
            Err(SamError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|_| "db")),
        }
    }

    /// End-to-end multi-relation on the Figure-3 database.
    #[test]
    fn end_to_end_multi_relation() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let mut gen = WorkloadGenerator::new(&db, 5);
        let workload = label_workload(&db, gen.multi_workload(64, 2)).unwrap();

        let config = SamConfig {
            model: sam_ar::ArModelConfig {
                hidden: vec![24],
                seed: 2,
                residual: false,
                transformer: None,
            },
            train: sam_ar::TrainConfig {
                epochs: 30,
                batch_size: 16,
                lr: 1e-2,
                ..Default::default()
            },
            ..Default::default()
        };
        let trained = Sam::fit(db.schema(), &stats, &workload, &config).unwrap();
        let (generated, _) = trained
            .generate(&GenerationConfig {
                foj_samples: 512,
                batch: 64,
                seed: 9,
                strategy: JoinKeyStrategy::GroupAndMerge,
            })
            .unwrap();
        // Sizes are within ±2 of the targets (carving can drop tails).
        for name in ["A", "B", "C"] {
            let want = db.table_by_name(name).unwrap().num_rows() as i64;
            let got = generated.table_by_name(name).unwrap().num_rows() as i64;
            assert!((got - want).abs() <= 2, "{name}: wanted ~{want}, got {got}");
        }
    }
}
