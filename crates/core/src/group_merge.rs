//! Group-and-Merge join-key assignment (paper §4.3.2, Algorithm 3).
//!
//! Theorem 2: FOJ rows sharing a join key `T.pk` agree on `T.pk`'s
//! *identifier columns*. The algorithm therefore groups the weighted FOJ
//! samples by identifier-column values and greedily merges rows within each
//! group, emitting one primary-key value whenever the merged scaled weights
//! reach 1 — so the generated base relations, joined back together, recover
//! the full outer join the model sampled.
//!
//! Multiple join keys (deeper trees) are handled recursively, as the paper
//! sketches: keys are assigned top-down; the grouping for a deeper table's
//! key includes the already-assigned ancestor keys, so merges never straddle
//! distinct parent tuples. A sampled row whose scaled weight exceeds 1
//! splits into multiple *pieces*, each carrying a fraction of the row's
//! mass and its own key — this is how one high-weight sample legitimately
//! yields several primary-key tuples (the paper's Group 3 walk-through).
//!
//! **Leftover handling (extension beyond the paper).** Algorithm 3 as
//! written silently drops group tails whose merged weight never reaches 1.
//! When identifier combinations are diverse (every group's total weight
//! `|T|·P(group)` can sit below 1), that would discard most of the mass. We
//! instead resample the leftover sets *systematically by weight*: about
//! `Σ tails` of them receive keys, and their pieces get a Horvitz–Thompson
//! boost `1/π` recorded per pk table so that descendant-relation masses stay
//! unbiased. With concentrated groups (the paper's regime) tails are rare
//! and this path is almost never taken.

use crate::weights::WeightedSamples;
use sam_ar::{ArSchema, ModelRow};
use std::collections::BTreeMap;

const EPS: f64 = 1e-9;

/// Merged-set grouping key: (ancestor keys, identifier-column bins).
type GroupMap = BTreeMap<(Vec<Option<u64>>, Vec<u32>), Vec<Piece>>;

/// A fragment of a sampled FOJ row with its assigned keys.
#[derive(Debug, Clone)]
pub struct Piece {
    /// Index into the sampled rows.
    pub row: usize,
    /// Fraction of the original row's mass carried by this piece.
    pub fraction: f64,
    /// Assigned primary-key value per table (pk tables only).
    pub keys: Vec<Option<u64>>,
    /// Per pk table: Horvitz–Thompson boost applied to the masses of that
    /// table's *descendants* (1.0 unless the piece survived leftover
    /// resampling).
    pub boost: Vec<f64>,
}

impl Piece {
    /// Effective emission weight of table `t` for this piece: the scaled
    /// sample weight times the piece fraction times the boosts of `t`'s
    /// pk ancestors.
    pub fn effective_weight(&self, schema: &ArSchema, weights: &WeightedSamples, t: usize) -> f64 {
        let mut w = weights.scaled[self.row][t] * self.fraction;
        for a in schema.graph().ancestors(t) {
            w *= self.boost[a];
        }
        w
    }
}

/// A generated primary-key tuple.
#[derive(Debug, Clone)]
pub struct PkTuple {
    /// The assigned key (1-based).
    pub key: u64,
    /// Representative sampled row (identifier columns — hence the pk table's
    /// content — are shared by every merged row).
    pub row: usize,
    /// The parent key this tuple's own fk points at (None for the root).
    pub parent_key: Option<u64>,
}

/// Result of key assignment.
#[derive(Debug, Clone)]
pub struct AssignedKeys {
    /// Final row pieces with per-table keys.
    pub pieces: Vec<Piece>,
    /// Per table: generated pk tuples (empty for tables nothing references).
    pub pk_tuples: Vec<Vec<PkTuple>>,
}

/// Group-and-Merge over weighted samples.
pub fn assign_keys_group_merge(
    schema: &ArSchema,
    rows: &[ModelRow],
    weights: &WeightedSamples,
) -> AssignedKeys {
    let graph = schema.graph();
    let n = graph.len();
    let mut pieces: Vec<Piece> = (0..rows.len())
        .map(|r| Piece {
            row: r,
            fraction: 1.0,
            keys: vec![None; n],
            boost: vec![1.0; n],
        })
        .collect();
    let mut pk_tuples: Vec<Vec<PkTuple>> = vec![Vec::new(); n];

    // Tables whose pk is referenced, root-first.
    let pk_tables: Vec<usize> = graph
        .topo_order()
        .iter()
        .copied()
        .filter(|&t| !graph.children(t).is_empty())
        .collect();

    for p in pk_tables {
        let identifier = schema.identifier_columns(p);
        let ancestors = graph.ancestors(p);
        let parent = graph.parent(p);

        // Partition pieces: those eligible for a p-key vs. the rest.
        let mut groups: GroupMap = BTreeMap::new();
        let mut done: Vec<Piece> = Vec::new();
        for piece in pieces.drain(..) {
            let eligible = weights.participates[piece.row][p]
                && parent.is_none_or(|pp| piece.keys[pp].is_some());
            if !eligible {
                done.push(piece);
                continue;
            }
            let anc_keys: Vec<Option<u64>> = ancestors.iter().map(|&a| piece.keys[a]).collect();
            let id_bins: Vec<u32> = identifier.iter().map(|&c| rows[piece.row][c]).collect();
            groups.entry((anc_keys, id_bins)).or_default().push(piece);
        }

        let mut counter: u64 = 0;
        // Leftover merged sets that never filled a unit: (pieces, weight).
        let mut leftovers: Vec<(Vec<Piece>, f64)> = Vec::new();

        for (_gk, group) in groups {
            let mut acc = 0.0f64;
            let mut current: Vec<Piece> = Vec::new();
            for mut piece in group {
                let row_unit = piece.effective_weight(schema, weights, p) / piece.fraction.max(EPS);
                let mut w = row_unit * piece.fraction;
                // Carve unit chunks while the accumulated mass fills keys.
                while acc + w >= 1.0 - EPS {
                    let take = (1.0 - acc).max(0.0);
                    let take_fraction = if row_unit > 0.0 { take / row_unit } else { 0.0 };
                    counter += 1;
                    let key = counter;
                    // The chunk of this piece belonging to the new key.
                    let mut head = piece.clone();
                    head.fraction = take_fraction.min(piece.fraction);
                    head.keys[p] = Some(key);
                    // Everything accumulated so far merges under this key.
                    for mut prev in current.drain(..) {
                        prev.keys[p] = Some(key);
                        done.push(prev);
                    }
                    pk_tuples[p].push(PkTuple {
                        key,
                        row: head.row,
                        parent_key: parent
                            .map(|pp| head.keys[pp].expect("eligibility checked parent key")),
                    });
                    piece.fraction -= head.fraction;
                    done.push(head);
                    w -= take;
                    acc = 0.0;
                    if piece.fraction <= EPS {
                        break;
                    }
                }
                if piece.fraction > EPS && w > EPS {
                    acc += w;
                    current.push(piece);
                }
            }
            if acc > EPS && !current.is_empty() {
                leftovers.push((current, acc));
            }
        }

        // Systematic weighted resampling of leftover sets (see module docs).
        let total_tail: f64 = leftovers.iter().map(|(_, w)| w).sum();
        let n_keys = total_tail.round() as u64;
        if n_keys > 0 {
            let spacing = total_tail / n_keys as f64;
            let mut next_mark = spacing / 2.0;
            let mut cum = 0.0f64;
            for (mut set, w) in leftovers {
                cum += w;
                let selected = next_mark < cum - EPS;
                if selected {
                    // Consume every mark inside this set (a set wider than
                    // the spacing would deserve several keys; we assign one
                    // — the case requires w ≈ 1 and is vanishingly rare).
                    while next_mark < cum - EPS {
                        next_mark += spacing;
                    }
                    counter += 1;
                    let key = counter;
                    // Inclusion probability π = w / spacing (≤ 1 since w < 1
                    // and spacing ≈ 1); boost descendants by 1/π.
                    let pi = (w / spacing).min(1.0);
                    let rep = set[0].clone();
                    pk_tuples[p].push(PkTuple {
                        key,
                        row: rep.row,
                        parent_key: parent.map(|pp| rep.keys[pp].expect("parent key present")),
                    });
                    for mut piece in set.drain(..) {
                        piece.keys[p] = Some(key);
                        piece.boost[p] = 1.0 / pi.max(EPS);
                        done.push(piece);
                    }
                } else {
                    done.append(&mut set);
                }
            }
        } else {
            for (mut set, _) in leftovers {
                done.append(&mut set);
            }
        }
        pieces = done;
    }

    AssignedKeys { pieces, pk_tuples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::weigh_samples;
    use sam_ar::{ArSchema, EncodingOptions};
    use sam_storage::{paper_example, DatabaseStats};

    fn schema() -> ArSchema {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap()
    }

    /// The Figure 3(c) samples: see weights.rs tests for the layout.
    fn figure3c_rows() -> Vec<ModelRow> {
        vec![
            vec![0, 1, 1, 0, 1, 2, 0],
            vec![0, 1, 2, 1, 1, 2, 0],
            vec![0, 1, 2, 2, 1, 2, 1],
            vec![1, 0, 0, 0, 0, 0, 0],
        ]
    }

    #[test]
    fn paper_walkthrough_assigns_four_keys() {
        let s = schema();
        let rows = figure3c_rows();
        let w = weigh_samples(&s, &rows);
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        // |A| = 4 keys: one from group 1, one merged from group 2, two from
        // the weight-2 sample in group 3.
        assert_eq!(assigned.pk_tuples[0].len(), 4);
        let keys: Vec<u64> = assigned.pk_tuples[0].iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
        // Root tuples carry no parent key.
        assert!(assigned.pk_tuples[0].iter().all(|t| t.parent_key.is_none()));
        // No keys for B/C (nothing references them).
        assert!(assigned.pk_tuples[1].is_empty());
        assert!(assigned.pk_tuples[2].is_empty());
    }

    #[test]
    fn samples_two_and_three_merge_under_one_key() {
        let s = schema();
        let rows = figure3c_rows();
        let w = weigh_samples(&s, &rows);
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        let key_of = |row: usize| -> Vec<u64> {
            assigned
                .pieces
                .iter()
                .filter(|p| p.row == row)
                .filter_map(|p| p.keys[0])
                .collect()
        };
        let k1 = key_of(1);
        let k2 = key_of(2);
        assert_eq!(k1.len(), 1);
        assert_eq!(k1, k2, "merged samples must share the key");
    }

    #[test]
    fn high_weight_sample_splits_into_two_keys() {
        let s = schema();
        let rows = figure3c_rows();
        let w = weigh_samples(&s, &rows);
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        let keys: Vec<u64> = assigned
            .pieces
            .iter()
            .filter(|p| p.row == 3)
            .filter_map(|p| p.keys[0])
            .collect();
        assert_eq!(keys.len(), 2, "weight-2 sample yields two pk tuples");
        assert_ne!(keys[0], keys[1]);
        for p in assigned.pieces.iter().filter(|p| p.row == 3) {
            assert!((p.fraction - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn groups_never_merge_across_identifier_values() {
        let s = schema();
        let rows = figure3c_rows();
        let w = weigh_samples(&s, &rows);
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        let k0: Vec<u64> = assigned
            .pieces
            .iter()
            .filter(|p| p.row == 0)
            .filter_map(|p| p.keys[0])
            .collect();
        let k1: Vec<u64> = assigned
            .pieces
            .iter()
            .filter(|p| p.row == 1)
            .filter_map(|p| p.keys[0])
            .collect();
        assert!(!k0.is_empty() && !k1.is_empty());
        assert_ne!(k0[0], k1[0]);
    }

    #[test]
    fn leftover_resampling_assigns_about_total_tail_keys() {
        // Three distinct groups with weight 0.4 each: ~1 key in total, and
        // the surviving pieces carry a boost ≈ 1/0.4 ≈ 2.5... capped by π≤1.
        let s = schema();
        let rows: Vec<ModelRow> = vec![
            vec![0, 1, 1, 0, 1, 1, 0],
            vec![0, 1, 1, 1, 1, 2, 1],
            vec![1, 0, 0, 0, 0, 0, 0],
        ];
        let mut w = weigh_samples(&s, &rows);
        for r in 0..3 {
            w.scaled[r][0] = 0.4;
        }
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        assert_eq!(assigned.pk_tuples[0].len(), 1);
        // The keyed piece is boosted; unkeyed pieces are not.
        for p in &assigned.pieces {
            if p.keys[0].is_some() {
                assert!(p.boost[0] > 1.0);
            } else {
                assert_eq!(p.boost[0], 1.0);
            }
        }
    }

    #[test]
    fn leftover_mass_is_preserved_in_expectation() {
        // Many small groups: #keys ≈ |T| and total boosted child mass stays
        // close to the unboosted total.
        let s = schema();
        // 40 rows alternating identifier signatures, each weight 0.1 for A.
        let mut rows: Vec<ModelRow> = Vec::new();
        for i in 0..40u32 {
            // Vary F_B between 1 and 2 to alternate identifier groups.
            let fb = 1 + (i % 2);
            rows.push(vec![0, 1, fb, (i % 3), 1, 1, (i % 2)]);
        }
        let mut w = weigh_samples(&s, &rows);
        for r in 0..rows.len() {
            w.scaled[r][0] = 0.1;
            w.scaled[r][1] = 0.075; // B mass: 3 total
        }
        let assigned = assign_keys_group_merge(&s, &rows, &w);
        // 40 × 0.1 = 4 keys expected (two groups of weight 2 each → exactly
        // 2 keys per group by carving).
        assert_eq!(assigned.pk_tuples[0].len(), 4);
        // Every piece that got a key contributes B mass; total effective B
        // mass over keyed pieces ≈ 3.
        let total_b: f64 = assigned
            .pieces
            .iter()
            .filter(|p| p.keys[0].is_some())
            .map(|p| p.effective_weight(&s, &w, 1))
            .sum();
        assert!((total_b - 3.0).abs() < 0.5, "B mass {total_b}");
    }
}
