//! Single-relation generation (paper §4.2, Algorithm 1).
//!
//! Sample `|T|` tuples from the AR model (batched, embarrassingly parallel)
//! and decode each model bin to a concrete value — uniform within
//! intervalized bins (§4.3.2). Primary keys, if declared, are sequential.

use crate::error::SamError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{sample_model_rows, FrozenModel};
use sam_storage::{ColumnRole, Database, Table, TableSchema, Value};

/// Generate a single-relation database of `num_rows` tuples.
pub fn generate_single_relation(
    model: &FrozenModel,
    table_schema: &TableSchema,
    num_rows: usize,
    batch: usize,
    seed: u64,
) -> Result<Database, SamError> {
    let ar = &model.schema;
    if ar.graph().len() != 1 {
        return Err(SamError::Invalid(
            "generate_single_relation requires a single-table model".into(),
        ));
    }
    let rows = sample_model_rows(model, num_rows, batch, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDECAF);

    let content = ar.content_pos(0);
    let mut out_rows = Vec::with_capacity(num_rows);
    let mut seq_pk = 0u64;
    for row in &rows {
        let tuple: Vec<Value> = table_schema
            .columns
            .iter()
            .enumerate()
            .map(|(ci, col)| match &col.role {
                ColumnRole::Content => match content.iter().find(|&&(c, _)| c == ci) {
                    Some(&(_, pos)) => {
                        let enc = &ar.columns()[pos].encoding;
                        let code = enc.decode(row[pos] as usize, &mut rng);
                        enc.base_domain().value(code).clone()
                    }
                    // Unmodelled column (empty observed domain).
                    None => Value::Null,
                },
                ColumnRole::PrimaryKey => {
                    seq_pk += 1;
                    Value::Int(seq_pk as i64)
                }
                ColumnRole::ForeignKey { .. } => Value::Null,
            })
            .collect();
        out_rows.push(tuple);
    }
    let table = Table::from_rows(table_schema.clone(), &out_rows)?;
    Ok(Database::single(table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_ar::{ArModel, ArModelConfig, ArSchema, EncodingOptions};
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn generates_requested_row_count() {
        let db = paper_example::figure3_database();
        let single = Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let ar =
            ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(ar, &ArModelConfig::default()).freeze();
        let schema = single.schema().table("A").unwrap().clone();
        let gen = generate_single_relation(&model, &schema, 37, 8, 5).unwrap();
        let t = gen.table_by_name("A").unwrap();
        assert_eq!(t.num_rows(), 37);
        // Sequential pks.
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(36, 0), Value::Int(37));
        // Content values stay inside the known domain.
        for v in t.column_by_name("a").unwrap().iter() {
            assert!(v == Value::str("m") || v == Value::str("n"));
        }
    }

    #[test]
    fn rejects_multi_table_model() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(ar, &ArModelConfig::default()).freeze();
        let schema = db.schema().table("A").unwrap().clone();
        assert!(generate_single_relation(&model, &schema, 10, 8, 1).is_err());
    }
}
