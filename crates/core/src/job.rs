//! Cooperative control for long-running generation jobs.
//!
//! A [`JobControl`] is a cheap, cloneable handle shared between the thread
//! running [`TrainedSam::generate_controlled`] and whoever supervises it
//! (the serving layer's job registry, a CLI progress printer, a test).
//! The worker publishes its [`JobStage`] and fractional progress; the
//! supervisor may request cancellation, which the worker honours at chunk
//! boundaries — so a cancelled job stops within one sampling chunk rather
//! than running to completion.
//!
//! [`TrainedSam::generate_controlled`]: crate::pipeline::TrainedSam::generate_controlled

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;

/// Coarse phase of a generation job, for status endpoints and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStage {
    /// Accepted, not started.
    Queued,
    /// Drawing FOJ tuples from the model (Algorithm 1).
    Sampling,
    /// Weighting samples and assigning join keys (Algorithms 2–3).
    Assembling,
    /// Finished successfully.
    Finished,
}

impl JobStage {
    fn from_u8(v: u8) -> JobStage {
        match v {
            1 => JobStage::Sampling,
            2 => JobStage::Assembling,
            3 => JobStage::Finished,
            _ => JobStage::Queued,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            JobStage::Queued => 0,
            JobStage::Sampling => 1,
            JobStage::Assembling => 2,
            JobStage::Finished => 3,
        }
    }
}

impl std::fmt::Display for JobStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobStage::Queued => "queued",
            JobStage::Sampling => "sampling",
            JobStage::Assembling => "assembling",
            JobStage::Finished => "finished",
        })
    }
}

#[derive(Debug, Default)]
struct ControlInner {
    cancelled: AtomicBool,
    stage: AtomicU8,
    progress_permille: AtomicU32,
}

/// Shared cancellation + progress handle for one generation job.
#[derive(Debug, Clone, Default)]
pub struct JobControl {
    inner: Arc<ControlInner>,
}

impl JobControl {
    /// A fresh handle (stage `Queued`, progress 0, not cancelled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the running job to stop at its next chunk boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Current coarse stage.
    pub fn stage(&self) -> JobStage {
        JobStage::from_u8(self.inner.stage.load(Ordering::Relaxed))
    }

    /// Fraction of the job completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.inner.progress_permille.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Publish the current stage (worker side).
    pub fn set_stage(&self, stage: JobStage) {
        self.inner.stage.store(stage.as_u8(), Ordering::Relaxed);
    }

    /// Publish progress as `done` of `total` units (worker side).
    pub fn set_progress(&self, done: usize, total: usize) {
        let permille = if total == 0 {
            1000
        } else {
            ((done.min(total) as u64 * 1000) / total as u64) as u32
        };
        self.inner
            .progress_permille
            .store(permille, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_round_trips_and_displays() {
        let ctl = JobControl::new();
        assert_eq!(ctl.stage(), JobStage::Queued);
        for stage in [JobStage::Sampling, JobStage::Assembling, JobStage::Finished] {
            ctl.set_stage(stage);
            assert_eq!(ctl.stage(), stage);
            assert!(!stage.to_string().is_empty());
        }
    }

    #[test]
    fn progress_saturates_and_handles_zero_total() {
        let ctl = JobControl::new();
        assert_eq!(ctl.progress(), 0.0);
        ctl.set_progress(5, 10);
        assert_eq!(ctl.progress(), 0.5);
        ctl.set_progress(20, 10);
        assert_eq!(ctl.progress(), 1.0);
        ctl.set_progress(0, 0);
        assert_eq!(ctl.progress(), 1.0);
    }

    #[test]
    fn cancellation_is_visible_across_clones() {
        let ctl = JobControl::new();
        let seen_by_worker = ctl.clone();
        assert!(!seen_by_worker.is_cancelled());
        ctl.cancel();
        assert!(seen_by_worker.is_cancelled());
    }
}
