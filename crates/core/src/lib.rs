//! # sam-core — the SAM pipeline (the paper's contribution)
//!
//! Reproduction of *SAM: Database Generation from Query Workloads with
//! Supervised Autoregressive Models* (SIGMOD 2022):
//!
//! * [`pipeline::Sam::fit`] — learning stage: train a single deep AR model
//!   of the full outer join from (query, cardinality) pairs via
//!   Differentiable Progressive Sampling (§4.1).
//! * [`single::generate_single_relation`] — Algorithm 1.
//! * [`weights`] — inverse probability weighting + scaling (§4.3.1, Alg 2).
//! * [`group_merge`] — Group-and-Merge join-key assignment (§4.3.2, Alg 3),
//!   including the recursive multi-key extension.
//! * [`assemble`] — base-relation emission, with the naive pairwise-view key
//!   assignment as the w/o-Group-and-Merge ablation.

#![warn(missing_docs)]

pub mod assemble;
pub mod error;
pub mod group_merge;
pub mod job;
pub mod pipeline;
pub mod single;
pub mod weights;

pub use assemble::{assemble_database, JoinKeyStrategy};
pub use error::SamError;
pub use group_merge::{assign_keys_group_merge, AssignedKeys, Piece, PkTuple};
pub use job::{JobControl, JobStage};
pub use pipeline::{GenerationConfig, GenerationReport, Sam, SamConfig, TrainedSam};
pub use single::generate_single_relation;
pub use weights::{weigh_samples, WeightedSamples};
