//! # sam-engine — an in-memory COUNT(*) execution engine
//!
//! The PostgreSQL substitute for the paper's performance-deviation
//! experiments (Tables 8–9): a small but real executor — sequential scans
//! with predicate filters, left-deep hash joins materialising intermediate
//! match vectors, and a COUNT aggregate — whose wall-clock latency scales
//! with scan sizes and join cardinalities exactly the way benchmark
//! latencies do. Performance deviation compares the *same engine* on the
//! original vs. the generated database, preserving the metric's meaning.

#![warn(missing_docs)]

use sam_query::{CodeSet, Query};
use sam_storage::{Database, StorageError, Table, Value, NULL_CODE};
use std::collections::HashMap;
use std::time::Instant;

/// Execution counters (for tests and plan inspection).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base rows scanned across all inputs.
    pub rows_scanned: u64,
    /// Tuples produced by all join steps combined.
    pub rows_joined: u64,
    /// Final count.
    pub output: u64,
}

/// A query executor over one database.
pub struct Engine<'db> {
    db: &'db Database,
}

impl<'db> Engine<'db> {
    /// Create an engine over `db`.
    pub fn new(db: &'db Database) -> Self {
        Engine { db }
    }

    /// Filtered row ids of one table (sequential scan + predicate filters).
    fn scan(
        &self,
        table: &Table,
        query: &Query,
        stats: &mut ExecStats,
    ) -> Result<Vec<usize>, StorageError> {
        stats.rows_scanned += table.num_rows() as u64;
        let preds = query.predicates_on(table.name());
        let mut keep: Vec<bool> = vec![true; table.num_rows()];
        for p in preds {
            let ci = table
                .schema()
                .column_index(&p.column)
                .ok_or_else(|| StorageError::UnknownColumn(p.table.clone(), p.column.clone()))?;
            let col = table.column(ci);
            let set = p.code_set(col.domain());
            match set {
                CodeSet::Range(r) => {
                    for (row, k) in keep.iter_mut().enumerate() {
                        let c = col.code(row);
                        *k &= c != NULL_CODE && r.contains(&c);
                    }
                }
                CodeSet::Set(s) => {
                    for (row, k) in keep.iter_mut().enumerate() {
                        let c = col.code(row);
                        *k &= c != NULL_CODE && s.binary_search(&c).is_ok();
                    }
                }
            }
        }
        Ok(keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i)
            .collect())
    }

    /// Execute `SELECT COUNT(*)` and return the count with counters.
    ///
    /// Plan: scan + filter every closure table, then left-deep hash joins in
    /// topological order (parent before child), materialising intermediate
    /// key vectors; finally count. Time and memory are proportional to scan
    /// sizes plus join output sizes, like a hash-join engine's.
    pub fn count(&self, query: &Query) -> Result<(u64, ExecStats), StorageError> {
        let mut stats = ExecStats::default();
        let graph = self.db.graph();
        let closure = query
            .table_closure(graph)
            .ok_or_else(|| StorageError::UnknownTable(query.tables.join(",")))?;

        // Scans.
        let mut filtered: HashMap<usize, Vec<usize>> = HashMap::new();
        for &t in &closure {
            let rows = self.scan(self.db.table(t), query, &mut stats)?;
            filtered.insert(t, rows);
        }

        // Closure root: the table whose parent is outside the closure.
        let root = closure
            .iter()
            .copied()
            .find(|&t| graph.parent(t).is_none_or(|p| !closure.contains(&p)))
            .expect("closure non-empty");

        let order: Vec<usize> = graph
            .topo_order()
            .iter()
            .copied()
            .filter(|t| closure.contains(t))
            .collect();

        let pending_children = |t: usize| -> usize {
            graph
                .children(t)
                .iter()
                .filter(|c| closure.contains(c))
                .count()
        };

        // Intermediate: per tuple, (table, pk value) for every bound table
        // that still has closure children to join.
        let root_table = self.db.table(root);
        let root_pk = root_table.schema().pk_index();
        let mut current: Vec<Vec<(usize, Value)>> = filtered[&root]
            .iter()
            .map(|&r| {
                if pending_children(root) > 0 {
                    let pk = root_pk.expect("root with children has pk");
                    vec![(root, root_table.value(r, pk))]
                } else {
                    vec![]
                }
            })
            .collect();

        for &t in order.iter().skip(1) {
            if t == root {
                continue;
            }
            let parent = graph.parent(t).expect("non-root in closure");
            let table = self.db.table(t);
            let fk_name = graph.fk_column(t).expect("non-root fk");
            let fk_idx = table
                .schema()
                .column_index(fk_name)
                .ok_or_else(|| StorageError::UnknownColumn(table.name().into(), fk_name.into()))?;
            // Build hash on the (filtered) child side.
            let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
            for &r in &filtered[&t] {
                let k = table.value(r, fk_idx);
                if !k.is_null() {
                    build.entry(k).or_default().push(r);
                }
            }
            let t_pending = pending_children(t);
            let t_pk = table.schema().pk_index();
            // Probe with the running intermediate.
            let mut next: Vec<Vec<(usize, Value)>> = Vec::new();
            for tuple in &current {
                let key = tuple
                    .iter()
                    .find(|(tt, _)| *tt == parent)
                    .map(|(_, v)| v.clone())
                    .expect("parent pk bound before child join");
                if let Some(matches) = build.get(&key) {
                    for &r in matches {
                        let mut out = tuple.clone();
                        if t_pending > 0 {
                            let pk = t_pk.expect("table with children has pk");
                            out.push((t, table.value(r, pk)));
                        }
                        next.push(out);
                    }
                }
            }
            stats.rows_joined += next.len() as u64;
            current = next;
        }

        stats.output = current.len() as u64;
        Ok((stats.output, stats))
    }

    /// Median wall-clock latency of `query` over `repeats` runs, in
    /// milliseconds.
    pub fn latency_ms(&self, query: &Query, repeats: usize) -> Result<f64, StorageError> {
        let repeats = repeats.max(1);
        let mut times = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let start = Instant::now();
            let _ = self.count(query)?;
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_unstable_by(|a, b| a.total_cmp(b));
        Ok(times[times.len() / 2])
    }
}

/// Per-query performance deviation: `|latency(generated) − latency(original)|`
/// in milliseconds (paper §5.1, following Touchstone \[21\]).
pub fn performance_deviation(
    original: &Database,
    generated: &Database,
    queries: &[Query],
    repeats: usize,
) -> Result<Vec<f64>, StorageError> {
    let orig = Engine::new(original);
    let gen = Engine::new(generated);
    queries
        .iter()
        .map(|q| {
            let a = orig.latency_ms(q, repeats)?;
            let b = gen.latency_ms(q, repeats)?;
            Ok((a - b).abs())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_query::{evaluate_cardinality, CompareOp, Predicate, WorkloadGenerator};
    use sam_storage::paper_example;

    #[test]
    fn counts_agree_with_reference_evaluator() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let queries = vec![
            Query::single("A", vec![]),
            Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "m")]),
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["B".into(), "C".into()], vec![]),
            Query::join(
                vec!["A".into(), "B".into(), "C".into()],
                vec![Predicate::compare("C", "c", CompareOp::Ge, "j")],
            ),
        ];
        for q in queries {
            let (got, _) = engine.count(&q).unwrap();
            let want = evaluate_cardinality(&db, &q).unwrap();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn counts_agree_on_random_workload() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let mut gen = WorkloadGenerator::new(&db, 17);
        for q in gen.multi_workload(60, 2) {
            let (got, _) = engine.count(&q).unwrap();
            assert_eq!(got, evaluate_cardinality(&db, &q).unwrap(), "query {q}");
        }
    }

    #[test]
    fn stats_reflect_work() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        let (count, stats) = engine.count(&q).unwrap();
        assert_eq!(count, 6);
        assert_eq!(stats.rows_scanned, 4 + 3 + 4);
        assert!(stats.rows_joined >= count);
        assert_eq!(stats.output, 6);
    }

    #[test]
    fn latency_is_positive_and_repeatable() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let q = Query::join(vec!["A".into(), "C".into()], vec![]);
        let l = engine.latency_ms(&q, 5).unwrap();
        assert!(l >= 0.0);
        assert!(l < 1e3);
    }

    #[test]
    fn performance_deviation_of_identical_dbs_is_small() {
        let db = paper_example::figure3_database();
        let queries = vec![
            Query::single("A", vec![]),
            Query::join(vec!["A".into(), "B".into()], vec![]),
        ];
        let dev = performance_deviation(&db, &db, &queries, 5).unwrap();
        for d in dev {
            assert!(d < 5.0, "deviation {d} ms on identical data");
        }
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use sam_query::{CompareOp, Predicate};
    use sam_storage::{paper_example, ColumnDef, DataType, Table, TableSchema};

    #[test]
    fn impossible_predicate_returns_zero_fast() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let q = Query::single(
            "A",
            vec![Predicate::compare("A", "a", CompareOp::Eq, "zzz")],
        );
        let (count, stats) = engine.count(&q).unwrap();
        assert_eq!(count, 0);
        assert_eq!(stats.rows_scanned, 4);
        assert_eq!(stats.rows_joined, 0);
    }

    #[test]
    fn unknown_table_and_column_error_cleanly() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        assert!(engine.count(&Query::single("Z", vec![])).is_err());
        let q = Query::single(
            "A",
            vec![Predicate::compare("A", "nope", CompareOp::Eq, 1i64)],
        );
        assert!(engine.count(&q).is_err());
    }

    #[test]
    fn null_fk_rows_never_join() {
        use sam_storage::{DatabaseSchema, ForeignKeyEdge};
        let a_schema = TableSchema::new(
            "A",
            vec![
                ColumnDef::primary_key("x"),
                ColumnDef::content("a", DataType::Int),
            ],
        );
        let b_schema = TableSchema::new(
            "B",
            vec![
                ColumnDef::foreign_key("x", "A"),
                ColumnDef::content("b", DataType::Int),
            ],
        );
        let schema = DatabaseSchema::new(
            vec![a_schema.clone(), b_schema.clone()],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap();
        let a = Table::from_rows(a_schema, &[vec![Value::Int(1), Value::Int(10)]]).unwrap();
        // One joining row, one NULL-fk row (allowed: integrity skips NULLs).
        let b = Table::from_rows(
            b_schema,
            &[
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Null, Value::Int(6)],
            ],
        )
        .unwrap();
        let db = sam_storage::Database::new(schema, vec![a, b], true).unwrap();
        let engine = Engine::new(&db);
        let q = Query::join(vec!["A".into(), "B".into()], vec![]);
        let (count, _) = engine.count(&q).unwrap();
        assert_eq!(count, 1, "NULL fk must not match any key");
    }

    #[test]
    fn empty_filtered_build_side_short_circuits() {
        let db = paper_example::figure3_database();
        let engine = Engine::new(&db);
        let q = Query::join(
            vec!["A".into(), "B".into()],
            vec![Predicate::compare("B", "b", CompareOp::Eq, "zzz")],
        );
        let (count, stats) = engine.count(&q).unwrap();
        assert_eq!(count, 0);
        assert_eq!(stats.rows_joined, 0);
    }
}
