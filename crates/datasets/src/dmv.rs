//! Synthetic DMV-like dataset (substitution for the New York vehicle
//! registration data \[37\]).
//!
//! Matches the published shape: 11 columns with wildly different domain
//! sizes (2 up to ~2101), dominated by categoricals with a couple of
//! large-domain numerics, plus the correlations a registration file shows:
//! body type determines registration class and weight range; fuel follows
//! body type; suspension/revocation flags are rare and co-occur.

use crate::util::{gaussian_int, weighted_index, zipf_weights};
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value};

const RECORD_TYPE: usize = 4;
const REG_CLASS: usize = 75;
const STATE: usize = 67;
const COUNTY: usize = 62;
const BODY: usize = 35;
const FUEL: usize = 9;
const COLOR: usize = 225;

/// Schema of the synthetic DMV relation (11 columns).
pub fn dmv_schema() -> TableSchema {
    TableSchema::new(
        "dmv",
        vec![
            ColumnDef::content("record_type", DataType::Int), // 4
            ColumnDef::content("reg_class", DataType::Int),   // 75
            ColumnDef::content("state", DataType::Int),       // 67
            ColumnDef::content("county", DataType::Int),      // 62
            ColumnDef::content("body_type", DataType::Int),   // 35
            ColumnDef::content("fuel_type", DataType::Int),   // 9
            ColumnDef::content("color", DataType::Int),       // 225
            ColumnDef::content("unladen_weight", DataType::Int), // ~2101
            ColumnDef::content("scofflaw", DataType::Int),    // 2
            ColumnDef::content("suspension", DataType::Int),  // 2
            ColumnDef::content("revocation", DataType::Int),  // 2
        ],
    )
}

/// Generate the synthetic DMV relation with `rows` tuples.
pub fn dmv(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let state_w = zipf_weights(STATE, 2.2); // one home state dominates
    let county_w = zipf_weights(COUNTY, 0.9);
    let color_w = zipf_weights(COLOR, 1.3);
    let body_w = zipf_weights(BODY, 1.2);

    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let record_type = weighted_index(&zipf_weights(RECORD_TYPE, 1.5), &mut rng) as i64;
        let body = weighted_index(&body_w, &mut rng) as i64;
        // Registration class strongly follows body type.
        let reg_class = ((body * 2 + rng.gen_range(0..3)) as usize % REG_CLASS) as i64;
        let state = weighted_index(&state_w, &mut rng) as i64;
        // County only meaningful in-state; out-of-state pools into county 0.
        let county = if state == 0 {
            weighted_index(&county_w, &mut rng) as i64
        } else {
            0
        };
        // Fuel follows body type: heavy bodies skew diesel (1).
        let fuel = if body >= 20 {
            if rng.gen_bool(0.6) {
                1
            } else {
                rng.gen_range(0..FUEL as i64)
            }
        } else if rng.gen_bool(0.8) {
            0
        } else {
            rng.gen_range(0..FUEL as i64)
        };
        let color = weighted_index(&color_w, &mut rng) as i64;
        // Weight range keyed to body type; ~2101 distinct values overall.
        let base = 900 + body * 55;
        let weight = gaussian_int(base as f64, 180.0, 500, 2600, &mut rng);
        let scofflaw = i64::from(rng.gen_bool(0.02));
        // Suspension rare, revocation mostly conditioned on suspension.
        let suspension = i64::from(rng.gen_bool(0.04));
        let revocation = if suspension == 1 {
            i64::from(rng.gen_bool(0.5))
        } else {
            i64::from(rng.gen_bool(0.005))
        };

        data.push(vec![
            Value::Int(record_type),
            Value::Int(reg_class),
            Value::Int(state),
            Value::Int(county),
            Value::Int(body),
            Value::Int(fuel),
            Value::Int(color),
            Value::Int(weight),
            Value::Int(scofflaw),
            Value::Int(suspension),
            Value::Int(revocation),
        ]);
    }
    let table = Table::from_rows(dmv_schema(), &data).expect("dmv rows match schema");
    Database::single(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let db = dmv(5000, 1);
        let t = db.table_by_name("dmv").unwrap();
        assert_eq!(t.num_rows(), 5000);
        assert_eq!(t.schema().arity(), 11);
        // Binary flags and a large numeric domain.
        assert_eq!(t.column_by_name("scofflaw").unwrap().domain().len(), 2);
        let weight_domain = t.column_by_name("unladen_weight").unwrap().domain().len();
        assert!(
            weight_domain > 500,
            "weight should have a large domain, got {weight_domain}"
        );
        assert!(weight_domain <= 2101);
    }

    #[test]
    fn determinism() {
        let a = dmv(50, 9);
        let b = dmv(50, 9);
        for r in 0..50 {
            assert_eq!(
                a.table_by_name("dmv").unwrap().row(r),
                b.table_by_name("dmv").unwrap().row(r)
            );
        }
    }

    #[test]
    fn weight_correlates_with_body_type() {
        let db = dmv(6000, 4);
        let t = db.table_by_name("dmv").unwrap();
        let body = t.column_by_name("body_type").unwrap();
        let w = t.column_by_name("unladen_weight").unwrap();
        let (mut light_sum, mut light_n, mut heavy_sum, mut heavy_n) = (0f64, 0u32, 0f64, 0u32);
        for r in 0..t.num_rows() {
            let b = body.value(r).as_int().unwrap();
            let wt = w.value(r).as_int().unwrap() as f64;
            if b <= 3 {
                light_sum += wt;
                light_n += 1;
            } else if b >= 20 {
                heavy_sum += wt;
                heavy_n += 1;
            }
        }
        let light = light_sum / light_n.max(1) as f64;
        let heavy = heavy_sum / heavy_n.max(1) as f64;
        assert!(heavy > light + 400.0, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn home_state_dominates() {
        let db = dmv(4000, 2);
        let t = db.table_by_name("dmv").unwrap();
        let home = t
            .column_by_name("state")
            .unwrap()
            .iter()
            .filter(|v| *v == Value::Int(0))
            .count();
        assert!(home as f64 / 4000.0 > 0.5);
    }
}
