//! Synthetic Census-like dataset (substitution for UCI Adult/Census \[2\]).
//!
//! Matches the published shape: 14 columns, a mix of categoricals and
//! numerics, domain sizes from 2 to ~123, and strong cross-column
//! correlations (education drives education-num and income; age and hours
//! interact with income; occupation depends on workclass) — the structure
//! SAM must learn through cardinality constraints alone.

use crate::util::{gaussian_int, weighted_index, zipf_weights};
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value};

const WORKCLASS: usize = 9;
const EDUCATION: usize = 16;
const MARITAL: usize = 7;
const OCCUPATION: usize = 15;
const RELATIONSHIP: usize = 6;
const RACE: usize = 5;
const COUNTRY: usize = 42;

/// Schema of the synthetic census relation (14 columns).
pub fn census_schema() -> TableSchema {
    TableSchema::new(
        "census",
        vec![
            ColumnDef::content("age", DataType::Int),       // 17..=90
            ColumnDef::content("workclass", DataType::Int), // 9
            ColumnDef::content("education", DataType::Int), // 16
            ColumnDef::content("education_num", DataType::Int), // 16
            ColumnDef::content("marital_status", DataType::Int), // 7
            ColumnDef::content("occupation", DataType::Int), // 15
            ColumnDef::content("relationship", DataType::Int), // 6
            ColumnDef::content("race", DataType::Int),      // 5
            ColumnDef::content("sex", DataType::Int),       // 2
            ColumnDef::content("capital_gain", DataType::Int), // ~120 buckets
            ColumnDef::content("capital_loss", DataType::Int), // ~95 buckets
            ColumnDef::content("hours_per_week", DataType::Int), // 1..=99
            ColumnDef::content("native_country", DataType::Int), // 42
            ColumnDef::content("income", DataType::Int),    // 2
        ],
    )
}

/// Generate the synthetic census relation with `rows` tuples.
pub fn census(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let workclass_w = zipf_weights(WORKCLASS, 1.1);
    let education_w = zipf_weights(EDUCATION, 0.7);
    let country_w = zipf_weights(COUNTRY, 1.6);

    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let age = gaussian_int(38.0, 13.0, 17, 90, &mut rng);
        let workclass = weighted_index(&workclass_w, &mut rng) as i64;
        let education = weighted_index(&education_w, &mut rng) as i64;
        // education_num is a noisy monotone function of education.
        let education_num = (education + rng.gen_range(-1i64..=1)).clamp(0, EDUCATION as i64 - 1);
        // Marital status correlates with age.
        let marital = if age < 25 {
            if rng.gen_bool(0.8) {
                0
            } else {
                rng.gen_range(1..MARITAL as i64)
            }
        } else if rng.gen_bool(0.55) {
            1
        } else {
            rng.gen_range(0..MARITAL as i64)
        };
        // Occupation depends on workclass and education.
        let occupation =
            ((workclass * 2 + education / 3 + rng.gen_range(0..4)) as usize % OCCUPATION) as i64;
        let relationship = if marital == 1 {
            if rng.gen_bool(0.7) {
                0
            } else {
                rng.gen_range(1..RELATIONSHIP as i64)
            }
        } else {
            rng.gen_range(0..RELATIONSHIP as i64)
        };
        let race = weighted_index(&zipf_weights(RACE, 1.8), &mut rng) as i64;
        let sex = if rng.gen_bool(0.52) { 0 } else { 1 };
        // Capital gain: mostly zero, heavy bucketed tail.
        let capital_gain = if rng.gen_bool(0.90) {
            0
        } else {
            (rng.gen_range(1..120i64)) * 500
        };
        let capital_loss = if rng.gen_bool(0.95) {
            0
        } else {
            rng.gen_range(1..95i64) * 20
        };
        let hours = gaussian_int(40.0, 12.0, 1, 99, &mut rng);
        let country = weighted_index(&country_w, &mut rng) as i64;
        // Income: logistic-ish in education_num, age, hours, capital gain.
        let score = 0.35 * education_num as f64
            + 0.04 * age as f64
            + 0.03 * hours as f64
            + if capital_gain > 0 { 2.0 } else { 0.0 }
            - 6.0;
        let p = 1.0 / (1.0 + (-score).exp());
        let income = if rng.gen_bool(p.clamp(0.01, 0.99)) {
            1
        } else {
            0
        };

        data.push(vec![
            Value::Int(age),
            Value::Int(workclass),
            Value::Int(education),
            Value::Int(education_num),
            Value::Int(marital),
            Value::Int(occupation),
            Value::Int(relationship),
            Value::Int(race),
            Value::Int(sex),
            Value::Int(capital_gain),
            Value::Int(capital_loss),
            Value::Int(hours),
            Value::Int(country),
            Value::Int(income),
        ]);
    }
    let table = Table::from_rows(census_schema(), &data).expect("census rows match schema");
    Database::single(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let db = census(2000, 1);
        let t = db.table_by_name("census").unwrap();
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(t.schema().arity(), 14);
        // Domain sizes within the published 2..=123 band (small samples may
        // not realise every value; check bounds).
        for c in 0..t.num_columns() {
            let d = t.column(c).domain().len();
            assert!(d >= 2, "col {c} domain {d}");
            assert!(d <= 130, "col {c} domain {d}");
        }
        // sex and income are binary.
        assert_eq!(t.column_by_name("sex").unwrap().domain().len(), 2);
        assert_eq!(t.column_by_name("income").unwrap().domain().len(), 2);
    }

    #[test]
    fn determinism() {
        let a = census(100, 7);
        let b = census(100, 7);
        let ta = a.table_by_name("census").unwrap();
        let tb = b.table_by_name("census").unwrap();
        for r in 0..100 {
            assert_eq!(ta.row(r), tb.row(r));
        }
    }

    #[test]
    fn income_correlates_with_education() {
        let db = census(8000, 3);
        let t = db.table_by_name("census").unwrap();
        let edu = t.column_by_name("education_num").unwrap();
        let inc = t.column_by_name("income").unwrap();
        let mut hi = (0u32, 0u32); // (high-edu rows, high-edu & income=1)
        let mut lo = (0u32, 0u32);
        for r in 0..t.num_rows() {
            let e = edu.value(r).as_int().unwrap();
            let i = inc.value(r).as_int().unwrap();
            if e >= 12 {
                hi.0 += 1;
                hi.1 += i as u32;
            } else if e <= 4 {
                lo.0 += 1;
                lo.1 += i as u32;
            }
        }
        let p_hi = hi.1 as f64 / hi.0.max(1) as f64;
        let p_lo = lo.1 as f64 / lo.0.max(1) as f64;
        assert!(
            p_hi > p_lo + 0.15,
            "income|high-edu {p_hi} vs income|low-edu {p_lo}"
        );
    }

    #[test]
    fn capital_gain_is_zero_heavy() {
        let db = census(4000, 5);
        let t = db.table_by_name("census").unwrap();
        let zeros = t
            .column_by_name("capital_gain")
            .unwrap()
            .iter()
            .filter(|v| *v == Value::Int(0))
            .count();
        let f = zeros as f64 / 4000.0;
        assert!(f > 0.8 && f < 0.99, "zero fraction {f}");
    }
}
