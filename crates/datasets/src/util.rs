//! Shared sampling helpers for the synthetic dataset generators.

use rand::Rng;

/// Draw an index from unnormalised weights.
///
/// # Panics
/// Panics if the weights are empty or sum to zero.
pub fn weighted_index(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Zipf-like weights `1/(k+1)^s` for `n` categories.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect()
}

/// Draw from a (rough) zipf over `0..n`.
pub fn zipf(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    weighted_index(&zipf_weights(n, s), rng)
}

/// Draw a clamped, rounded gaussian via the central-limit trick (12 uniform
/// draws), avoiding a dependency on rand_distr.
pub fn gaussian_int(mean: f64, std: f64, lo: i64, hi: i64, rng: &mut impl Rng) -> i64 {
    let z: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
    ((mean + std * z).round() as i64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_index_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [1.0, 3.0];
        let hits = (0..4000)
            .filter(|_| weighted_index(&w, &mut rng) == 1)
            .count();
        let f = hits as f64 / 4000.0;
        assert!((f - 0.75).abs() < 0.03, "freq {f}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            counts[zipf(10, 1.2, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn gaussian_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = gaussian_int(50.0, 20.0, 0, 100, &mut rng);
            assert!((0..=100).contains(&v));
        }
        // Mean roughly correct.
        let mean: f64 = (0..2000)
            .map(|_| gaussian_int(50.0, 10.0, 0, 100, &mut rng) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 50.0).abs() < 2.0);
    }
}
