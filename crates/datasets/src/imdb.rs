//! Synthetic IMDB / JOB-light-like database (substitution for [18, 19]).
//!
//! The JOB-light schema: a central `title` relation joined by five fact
//! relations through `movie_id` foreign keys (a star — the acyclic tree SAM
//! requires). The generator reproduces the traits the benchmark leans on:
//! skewed, correlated fanouts (popular recent movies accumulate cast/info
//! rows; a sizeable share of titles join *nothing*, putting NULL rows in the
//! full outer join), content columns correlated with the title side, and —
//! crucially — a **latent per-title factor** (think genre/production scale)
//! that correlates the *sibling* fact relations with each other without
//! being observable in any `title` column. This is what real IMDB data has
//! and what view-based key assignment cannot preserve (paper Figure 4):
//! matching on title content alone severs latent-mediated correlations.

use crate::util::{gaussian_int, weighted_index, zipf_weights};
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_storage::{
    ColumnDef, DataType, Database, DatabaseSchema, ForeignKeyEdge, Table, TableSchema, Value,
};

/// Scale/shape knobs for the synthetic IMDB database.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of `title` rows.
    pub titles: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean fanout of each fact table (before zeros).
    pub mean_fanout: f64,
    /// Fraction of titles joining nothing in a given fact table.
    pub zero_fraction: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            titles: 2_000,
            seed: 0,
            mean_fanout: 2.5,
            zero_fraction: 0.25,
        }
    }
}

const KINDS: usize = 6;
const ROLES: usize = 11;
const COMPANY_TYPES: usize = 2;
const INFO_TYPES: usize = 110;
const INFO_IDX_TYPES: usize = 5;
const KEYWORDS: usize = 100;

/// The JOB-light database schema (6 relations, star on `title`).
pub fn imdb_schema() -> DatabaseSchema {
    let title = TableSchema::new(
        "title",
        vec![
            ColumnDef::primary_key("id"),
            ColumnDef::content("kind_id", DataType::Int), // 6
            ColumnDef::content("production_year", DataType::Int), // ~140
        ],
    );
    let fact = |name: &str, col: &str| {
        TableSchema::new(
            name,
            vec![
                ColumnDef::foreign_key("movie_id", "title"),
                ColumnDef::content(col, DataType::Int),
            ],
        )
    };
    let tables = vec![
        title,
        fact("cast_info", "role_id"),
        fact("movie_companies", "company_type_id"),
        fact("movie_info", "info_type_id"),
        fact("movie_info_idx", "info_type_id"),
        fact("movie_keyword", "keyword_id"),
    ];
    let edges = [
        "cast_info",
        "movie_companies",
        "movie_info",
        "movie_info_idx",
        "movie_keyword",
    ]
    .iter()
    .map(|t| ForeignKeyEdge {
        pk_table: "title".into(),
        fk_table: (*t).into(),
        fk_column: "movie_id".into(),
    })
    .collect();
    DatabaseSchema::new(tables, edges).expect("JOB-light schema is a valid star")
}

/// Generate the synthetic IMDB database.
pub fn imdb(config: &ImdbConfig) -> Database {
    let schema = imdb_schema();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Titles: production year 1880..2019 with recency skew; kind zipf.
    let kind_w = zipf_weights(KINDS, 1.0);
    let mut titles = Vec::with_capacity(config.titles);
    // Per-title popularity drives every fact table's fanout (correlated
    // fanouts are what make the FOJ interesting).
    let mut popularity = Vec::with_capacity(config.titles);
    // Latent per-title factor: influences every fact table's content and
    // fanout but is NOT a title column.
    let mut latent = Vec::with_capacity(config.titles);
    for i in 0..config.titles {
        let kind = weighted_index(&kind_w, &mut rng) as i64;
        let year = 2019 - (140.0 * rng.gen_range(0.0f64..1.0).powf(2.5)) as i64;
        titles.push(vec![
            Value::Int((i + 1) as i64),
            Value::Int(kind),
            Value::Int(year),
        ]);
        let l = rng.gen_range(0..4usize);
        latent.push(l);
        // Newer movies, kind 0 (movie), and high-latent titles are popular.
        let recency = ((year - 1880) as f64 / 140.0).clamp(0.0, 1.0);
        let kind_boost = if kind == 0 { 1.5 } else { 1.0 };
        let latent_boost = 0.6 + 0.35 * l as f64;
        popularity.push((0.3 + recency) * kind_boost * latent_boost * rng.gen_range(0.7f64..1.3));
    }
    let title_table = Table::from_rows(schema.table("title").unwrap().clone(), &titles)
        .expect("title rows match schema");

    // Fact tables: fanout ~ popularity-scaled geometric with zero inflation.
    let fact_specs: [(&str, usize, f64); 5] = [
        ("cast_info", ROLES, 1.4),
        ("movie_companies", COMPANY_TYPES, 0.5),
        ("movie_info", INFO_TYPES, 1.2),
        ("movie_info_idx", INFO_IDX_TYPES, 0.4),
        ("movie_keyword", KEYWORDS, 0.9),
    ];
    let mut tables = vec![title_table];
    for (name, domain, fanout_scale) in fact_specs {
        let content_w = zipf_weights(domain, 1.1);
        let mut rows = Vec::new();
        for (i, &pop) in popularity.iter().enumerate() {
            if rng.gen_bool(config.zero_fraction) {
                continue;
            }
            let mean = (config.mean_fanout * fanout_scale * pop).max(0.2);
            let fanout = gaussian_int(mean, mean.sqrt(), 1, (mean * 6.0).ceil() as i64, &mut rng);
            let movie_id = (i + 1) as i64;
            let year = titles[i][2].as_int().unwrap();
            for _ in 0..fanout {
                // Content correlated with the title's year bucket AND the
                // latent factor — the latter induces sibling-to-sibling
                // correlation invisible from title's columns.
                let shift = ((2019 - year) / 20) as usize + latent[i] * (domain / 4).max(1);
                let c = (weighted_index(&content_w, &mut rng) + shift) % domain;
                rows.push(vec![Value::Int(movie_id), Value::Int(c as i64)]);
            }
        }
        tables.push(
            Table::from_rows(schema.table(name).unwrap().clone(), &rows)
                .expect("fact rows match schema"),
        );
    }

    Database::new(schema, tables, cfg!(debug_assertions)).expect("synthetic IMDB is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_storage::foj_size;

    #[test]
    fn schema_is_job_light() {
        let s = imdb_schema();
        assert_eq!(s.tables().len(), 6);
        assert_eq!(s.edges().len(), 5);
        let g = sam_storage::JoinGraph::new(&s).unwrap();
        assert_eq!(g.root(), g.index_of("title").unwrap());
        assert_eq!(g.children(g.root()).len(), 5);
    }

    #[test]
    fn generates_consistent_star() {
        let db = imdb(&ImdbConfig {
            titles: 300,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(db.table_by_name("title").unwrap().num_rows(), 300);
        for t in ["cast_info", "movie_info", "movie_keyword"] {
            assert!(db.table_by_name(t).unwrap().num_rows() > 0);
        }
        // FOJ is larger than any base relation (fanout effect).
        let foj = foj_size(&db);
        assert!(foj as usize >= db.table_by_name("title").unwrap().num_rows());
    }

    #[test]
    fn some_titles_join_nothing() {
        let db = imdb(&ImdbConfig {
            titles: 500,
            seed: 3,
            ..Default::default()
        });
        let cast = db.graph().index_of("cast_info").unwrap();
        let fanouts = db.fanout_of(cast).unwrap();
        // Some pk values absent → zero fanout → NULL rows in the FOJ.
        assert!(fanouts.len() < 500, "all titles joined cast_info");
    }

    #[test]
    fn fanout_correlates_with_recency() {
        let db = imdb(&ImdbConfig {
            titles: 2000,
            seed: 5,
            ..Default::default()
        });
        let title = db.table_by_name("title").unwrap();
        let cast = db.graph().index_of("cast_info").unwrap();
        let fanouts = db.fanout_of(cast).unwrap();
        let (mut new_sum, mut new_n, mut old_sum, mut old_n) = (0f64, 0u32, 0f64, 0u32);
        for r in 0..title.num_rows() {
            let id = title.value(r, 0);
            let year = title.value(r, 2).as_int().unwrap();
            let f = fanouts.get(&id).copied().unwrap_or(0) as f64;
            if year >= 2005 {
                new_sum += f;
                new_n += 1;
            } else if year <= 1960 {
                old_sum += f;
                old_n += 1;
            }
        }
        let new_mean = new_sum / new_n.max(1) as f64;
        let old_mean = old_sum / old_n.max(1) as f64;
        assert!(
            new_mean > old_mean,
            "recent titles should fan out more: {new_mean} vs {old_mean}"
        );
    }

    #[test]
    fn determinism() {
        let a = imdb(&ImdbConfig {
            titles: 100,
            seed: 11,
            ..Default::default()
        });
        let b = imdb(&ImdbConfig {
            titles: 100,
            seed: 11,
            ..Default::default()
        });
        assert_eq!(
            a.table_by_name("cast_info").unwrap().num_rows(),
            b.table_by_name("cast_info").unwrap().num_rows()
        );
    }
}
