//! # sam-datasets — synthetic stand-ins for the paper's datasets
//!
//! Seeded generators matching the published *shape* of Census (48K×14,
//! domains 2–123), DMV (11.6M×11, domains 2–2101 — scaled down here), and
//! the IMDB/JOB-light star (6 relations, skewed correlated fanouts, zero-
//! fanout titles). See DESIGN.md for the substitution rationale: SAM only
//! observes (query, cardinality) pairs and schema metadata, so correlated
//! synthetics with the same shape exercise identical code paths.

#![warn(missing_docs)]

pub mod census;
pub mod dmv;
pub mod imdb;
pub mod util;

pub use census::{census, census_schema};
pub use dmv::{dmv, dmv_schema};
pub use imdb::{imdb, imdb_schema, ImdbConfig};
