//! A tiny deterministic RNG for the synthesizer.
//!
//! The synthesizer's acceptance contract is *byte-identical* output for a
//! given (profile, seed) — forever. Owning the generator (SplitMix64,
//! Steele et al., a fixed published algorithm) pins the byte stream to this
//! crate instead of to whatever `rand` ships, and makes per-query streams
//! trivially derivable: query `i` draws from `SplitMix64::for_index(seed, i)`,
//! so generation order, batching, and resume points never change the output.

/// SplitMix64: 64 bits of state, one multiply-xorshift avalanche per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded directly.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The sub-stream for item `index` of a master seed: one avalanche step
    /// separates the master seed and the index so neighbouring indices give
    /// unrelated streams.
    pub fn for_index(seed: u64, index: u64) -> Self {
        let mut mix = SplitMix64::new(
            seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index ^ 0xA076_1D64_78BD_642F),
        );
        let reseeded = mix.next_u64();
        SplitMix64::new(reseeded)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift; the bias is < 2^-64 per draw, far below anything
        // observable, and the mapping is stable across platforms.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive); `lo` when the range is
    /// inverted.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Index drawn from non-negative `weights` (≥1 entry with weight > 0
    /// required — returns 0 if all weights vanish).
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                continue;
            }
            if u < w {
                return i;
            }
            u -= w;
        }
        weights
            .iter()
            .rposition(|&w| w.is_finite() && w > 0.0)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn reference_vector() {
        // SplitMix64 with seed 1234567: published reference outputs.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn indexed_streams_are_unrelated() {
        let mut s0 = SplitMix64::for_index(42, 0);
        let mut s1 = SplitMix64::for_index(42, 1);
        let a: Vec<u64> = (0..4).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let x = r.range_inclusive(5, 9);
            assert!((5..=9).contains(&x));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range_inclusive(9, 5), 9);
    }

    #[test]
    fn weighted_respects_zeroes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..200 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
        assert_eq!(r.weighted(&[0.0, 0.0]), 0, "degenerate weights fall back");
    }
}
