//! # sam-workgen — workload synthesis, hard-query mining, load generation
//!
//! Three layers that close the evaluation loop around the SAM pipeline:
//!
//! 1. **Synthesis** ([`synth`], [`profile`]): a seeded, rule-based query
//!    generator over any schema. A TOML [`SynthProfile`] fixes the mixture
//!    (join sizes, predicate shapes, selectivity / skew / correlation
//!    knobs); a seed fixes the draw. `(profile, seed)` reproduces a
//!    workload byte for byte, streaming millions of distinct queries in the
//!    interchange format `sam-ar` training consumes.
//! 2. **Mining** ([`miner`]): adversarial mutate-and-climb over predicate
//!    bounds, guided by measured Q-Error against a trained model via the
//!    batched estimation path — surfaces the queries a model is worst at.
//! 3. **Load** ([`load`]): an open-loop trace-replaying HTTP client that
//!    drives `sam-serve` at a target offered rate over keep-alive
//!    connections, recording coordinated-omission-free latency into the
//!    `sam-metrics` histogram machinery.

#![warn(missing_docs)]

pub mod error;
pub mod load;
pub mod miner;
pub mod profile;
pub mod rng;
pub mod synth;

pub use error::WorkgenError;
pub use load::{
    run_load, run_load_with_seeds, scrape_server_counters, ClassReport, LoadConfig, LoadReport,
    ServerCounters,
};
pub use miner::{mine_hard_queries, MinedQuery, MinerConfig, MinerReport};
pub use profile::{ColumnKnob, ShapeWeights, SynthProfile};
pub use rng::SplitMix64;
pub use synth::{synthesize, synthesize_into, QueryStream, SynthReport, SynthTarget};
