//! Error type shared by the workgen layers.

use std::fmt;

/// Anything that can go wrong while synthesizing, mining, or replaying.
#[derive(Debug)]
pub enum WorkgenError {
    /// A profile failed to parse or validate.
    Profile(String),
    /// The schema/stats pair cannot back a synthesis target (unknown column
    /// override, empty schema, no filterable columns, …).
    Target(String),
    /// Query evaluation or estimation failed while labelling or mining.
    Eval(String),
    /// The load generator hit a configuration or protocol problem.
    Load(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for WorkgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkgenError::Profile(m) => write!(f, "profile: {m}"),
            WorkgenError::Target(m) => write!(f, "target: {m}"),
            WorkgenError::Eval(m) => write!(f, "eval: {m}"),
            WorkgenError::Load(m) => write!(f, "load: {m}"),
            WorkgenError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for WorkgenError {}

impl From<std::io::Error> for WorkgenError {
    fn from(e: std::io::Error) -> Self {
        WorkgenError::Io(e)
    }
}
