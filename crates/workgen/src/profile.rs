//! Workload mixture profiles: every synthesizer knob in one TOML document.
//!
//! A profile plus a seed fully determines a synthesized workload (see
//! [`crate::synth`]), so profiles are the unit of workload reproducibility:
//! check the TOML into the experiment repo, quote the seed, and anyone can
//! regenerate the identical byte stream. The parser is a hand-rolled TOML
//! subset (sections, `key = value` with numbers / strings / booleans /
//! number arrays, `#` comments) — enough for profiles, zero dependencies.
//! Unknown sections or keys are **errors**, not silence: a typoed knob must
//! not quietly fall back to its default.
//!
//! Reference for every knob: `docs/WORKGEN.md`.

use crate::error::WorkgenError;
use std::fmt::Write as _;

/// Relative frequencies of the four predicate shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeWeights {
    /// `col = v` point predicates.
    pub point: f64,
    /// Two-sided `lo <= col <= hi` range predicates.
    pub range: f64,
    /// `col IN (…)` list predicates.
    pub in_list: f64,
    /// Disjunctions of disjoint ranges on one column, materialized as an
    /// IN list over the union (keeps the emitted query conjunctive).
    pub dnf: f64,
}

/// Per-column overrides of the global knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnKnob {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Relative weight when choosing which column a predicate filters
    /// (global default 1.0; 0 excludes the column).
    pub weight: f64,
    /// Override of [`SynthProfile::selectivity`] for this column.
    pub selectivity: Option<f64>,
    /// Override of [`SynthProfile::skew`] for this column.
    pub skew: Option<f64>,
}

/// All synthesizer knobs. See `docs/WORKGEN.md` for the TOML reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProfile {
    /// Profile name (informational, echoed in reports).
    pub name: String,
    /// Default query count (`workgen synth --count` overrides).
    pub queries: u64,
    /// Weight of queries spanning `i + 1` tables; entries beyond the
    /// schema's table count are ignored. Empty means single-table only.
    pub join_weights: Vec<f64>,
    /// Predicate-shape mixture.
    pub shapes: ShapeWeights,
    /// Fewest predicates per query.
    pub preds_min: u32,
    /// Most predicates per query.
    pub preds_max: u32,
    /// Target per-predicate selectivity as a fraction of the column's
    /// domain (e.g. 0.1 → ranges cover ~10% of the distinct values).
    pub selectivity: f64,
    /// Log-uniform jitter half-width applied to `selectivity`: each
    /// predicate's effective target is `selectivity * exp(U[-jitter, jitter])`.
    pub jitter: f64,
    /// Skew exponent for anchor placement: 0 = uniform over the domain,
    /// larger values concentrate predicates on low-code (small) values —
    /// anchor fraction is drawn as `u^(1 + skew)`.
    pub skew: f64,
    /// Attribute correlation in `[0, 1]`: the probability that each
    /// predicate after the first re-uses the first predicate's relative
    /// anchor position on its own domain (1.0 → all predicates of a query
    /// aim at the same region of every column).
    pub correlation: f64,
    /// Fewest values per IN list.
    pub in_min: u32,
    /// Most values per IN list.
    pub in_max: u32,
    /// Fewest disjuncts per DNF predicate.
    pub dnf_terms_min: u32,
    /// Most disjuncts per DNF predicate.
    pub dnf_terms_max: u32,
    /// Cap on total codes a DNF union may expand to (bounds query text).
    pub dnf_max_codes: u32,
    /// Per-column overrides.
    pub columns: Vec<ColumnKnob>,
}

impl Default for SynthProfile {
    fn default() -> Self {
        SynthProfile {
            name: "default".to_string(),
            queries: 1000,
            join_weights: vec![1.0],
            shapes: ShapeWeights {
                point: 0.25,
                range: 0.45,
                in_list: 0.2,
                dnf: 0.1,
            },
            preds_min: 1,
            preds_max: 3,
            selectivity: 0.2,
            jitter: 1.0,
            skew: 0.0,
            correlation: 0.0,
            in_min: 2,
            in_max: 8,
            dnf_terms_min: 2,
            dnf_terms_max: 3,
            dnf_max_codes: 64,
            columns: Vec::new(),
        }
    }
}

impl SynthProfile {
    /// The override knob for `table.column`, if any.
    pub fn column_knob(&self, table: &str, column: &str) -> Option<&ColumnKnob> {
        self.columns
            .iter()
            .find(|k| k.table == table && k.column == column)
    }

    /// Check knob ranges (weights non-negative, probabilities in `[0,1]`,
    /// min ≤ max pairs ordered, at least one positive shape weight).
    ///
    /// # Errors
    ///
    /// [`WorkgenError::Profile`] naming the offending knob.
    pub fn validate(&self) -> Result<(), WorkgenError> {
        let bad = |m: String| Err(WorkgenError::Profile(m));
        let weights = [
            self.shapes.point,
            self.shapes.range,
            self.shapes.in_list,
            self.shapes.dnf,
        ];
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return bad("shape weights must be finite and non-negative".into());
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return bad("at least one shape weight must be positive".into());
        }
        if self.join_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return bad("joins.weights must be finite and non-negative".into());
        }
        if self.preds_min == 0 || self.preds_min > self.preds_max {
            return bad(format!(
                "predicates.min..max must satisfy 1 <= min <= max (got {}..{})",
                self.preds_min, self.preds_max
            ));
        }
        if !(self.selectivity > 0.0 && self.selectivity <= 1.0) {
            return bad(format!(
                "selectivity.target must be in (0, 1] (got {})",
                self.selectivity
            ));
        }
        if !(self.jitter >= 0.0 && self.jitter.is_finite()) {
            return bad("selectivity.jitter must be finite and >= 0".into());
        }
        if !(self.skew >= 0.0 && self.skew.is_finite()) {
            return bad("selectivity.skew must be finite and >= 0".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return bad(format!(
                "correlation.strength must be in [0, 1] (got {})",
                self.correlation
            ));
        }
        if self.in_min == 0 || self.in_min > self.in_max {
            return bad("in_lists.min..max must satisfy 1 <= min <= max".into());
        }
        if self.dnf_terms_min == 0 || self.dnf_terms_min > self.dnf_terms_max {
            return bad("dnf.terms_min..terms_max must satisfy 1 <= min <= max".into());
        }
        if self.dnf_max_codes == 0 {
            return bad("dnf.max_codes must be >= 1".into());
        }
        for k in &self.columns {
            if !k.weight.is_finite() || k.weight < 0.0 {
                return bad(format!(
                    "columns.{}.{}: weight must be >= 0",
                    k.table, k.column
                ));
            }
            if let Some(s) = k.selectivity {
                if !(s > 0.0 && s <= 1.0) {
                    return bad(format!(
                        "columns.{}.{}: selectivity must be in (0, 1]",
                        k.table, k.column
                    ));
                }
            }
            if let Some(s) = k.skew {
                if !(s >= 0.0 && s.is_finite()) {
                    return bad(format!(
                        "columns.{}.{}: skew must be finite and >= 0",
                        k.table, k.column
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to the TOML subset [`SynthProfile::from_toml`] reads.
    /// `from_toml(to_toml(p)) == p` for any valid profile.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# sam-workgen synthesis profile");
        let _ = writeln!(out, "[profile]");
        let _ = writeln!(out, "name = {:?}", self.name);
        let _ = writeln!(out, "queries = {}", self.queries);
        let _ = writeln!(out, "\n[joins]");
        let _ = writeln!(out, "weights = {}", fmt_array(&self.join_weights));
        let _ = writeln!(out, "\n[shapes]");
        let _ = writeln!(out, "point = {}", fmt_f64(self.shapes.point));
        let _ = writeln!(out, "range = {}", fmt_f64(self.shapes.range));
        let _ = writeln!(out, "in = {}", fmt_f64(self.shapes.in_list));
        let _ = writeln!(out, "dnf = {}", fmt_f64(self.shapes.dnf));
        let _ = writeln!(out, "\n[predicates]");
        let _ = writeln!(out, "min = {}", self.preds_min);
        let _ = writeln!(out, "max = {}", self.preds_max);
        let _ = writeln!(out, "\n[selectivity]");
        let _ = writeln!(out, "target = {}", fmt_f64(self.selectivity));
        let _ = writeln!(out, "jitter = {}", fmt_f64(self.jitter));
        let _ = writeln!(out, "skew = {}", fmt_f64(self.skew));
        let _ = writeln!(out, "\n[correlation]");
        let _ = writeln!(out, "strength = {}", fmt_f64(self.correlation));
        let _ = writeln!(out, "\n[in_lists]");
        let _ = writeln!(out, "min = {}", self.in_min);
        let _ = writeln!(out, "max = {}", self.in_max);
        let _ = writeln!(out, "\n[dnf]");
        let _ = writeln!(out, "terms_min = {}", self.dnf_terms_min);
        let _ = writeln!(out, "terms_max = {}", self.dnf_terms_max);
        let _ = writeln!(out, "max_codes = {}", self.dnf_max_codes);
        for k in &self.columns {
            let _ = writeln!(out, "\n[columns.{:?}]", format!("{}.{}", k.table, k.column));
            let _ = writeln!(out, "weight = {}", fmt_f64(k.weight));
            if let Some(s) = k.selectivity {
                let _ = writeln!(out, "selectivity = {}", fmt_f64(s));
            }
            if let Some(s) = k.skew {
                let _ = writeln!(out, "skew = {}", fmt_f64(s));
            }
        }
        out
    }

    /// Parse a profile from the TOML subset, filling unset knobs from
    /// [`SynthProfile::default`] and validating the result.
    ///
    /// # Errors
    ///
    /// [`WorkgenError::Profile`] with the line number for syntax errors,
    /// unknown sections/keys, type mismatches, or out-of-range knobs.
    pub fn from_toml(text: &str) -> Result<SynthProfile, WorkgenError> {
        let mut profile = SynthProfile::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let fail = |m: String| Err(WorkgenError::Profile(format!("line {line_no}: {m}")));
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return fail("unterminated section header".into());
                };
                section = name.trim().to_string();
                let known = [
                    "profile",
                    "joins",
                    "shapes",
                    "predicates",
                    "selectivity",
                    "correlation",
                    "in_lists",
                    "dnf",
                ];
                if !known.contains(&section.as_str()) && !section.starts_with("columns.") {
                    return fail(format!("unknown section [{section}]"));
                }
                if let Some(col) = section.strip_prefix("columns.") {
                    let spec = unquote(col.trim())
                        .map_err(|m| WorkgenError::Profile(format!("line {line_no}: {m}")))?;
                    let Some((table, column)) = spec.split_once('.') else {
                        return fail(format!(
                            "column section needs \"table.column\", got {spec:?}"
                        ));
                    };
                    profile.columns.push(ColumnKnob {
                        table: table.to_string(),
                        column: column.to_string(),
                        weight: 1.0,
                        selectivity: None,
                        skew: None,
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return fail(format!("expected `key = value`, got {line:?}"));
            };
            let key = key.trim();
            let value = value.trim();
            apply_key(&mut profile, &section, key, value)
                .map_err(|m| WorkgenError::Profile(format!("line {line_no}: {m}")))?;
        }
        profile.validate()?;
        Ok(profile)
    }
}

/// Set one `key = value` within `section` on the profile being built.
fn apply_key(
    profile: &mut SynthProfile,
    section: &str,
    key: &str,
    value: &str,
) -> Result<(), String> {
    let unknown = || Err(format!("unknown key '{key}' in section [{section}]"));
    match section {
        "profile" => match key {
            "name" => profile.name = unquote(value)?,
            "queries" => profile.queries = parse_u64(value)?,
            _ => return unknown(),
        },
        "joins" => match key {
            "weights" => profile.join_weights = parse_array(value)?,
            _ => return unknown(),
        },
        "shapes" => match key {
            "point" => profile.shapes.point = parse_f64(value)?,
            "range" => profile.shapes.range = parse_f64(value)?,
            "in" => profile.shapes.in_list = parse_f64(value)?,
            "dnf" => profile.shapes.dnf = parse_f64(value)?,
            _ => return unknown(),
        },
        "predicates" => match key {
            "min" => profile.preds_min = parse_u64(value)? as u32,
            "max" => profile.preds_max = parse_u64(value)? as u32,
            _ => return unknown(),
        },
        "selectivity" => match key {
            "target" => profile.selectivity = parse_f64(value)?,
            "jitter" => profile.jitter = parse_f64(value)?,
            "skew" => profile.skew = parse_f64(value)?,
            _ => return unknown(),
        },
        "correlation" => match key {
            "strength" => profile.correlation = parse_f64(value)?,
            _ => return unknown(),
        },
        "in_lists" => match key {
            "min" => profile.in_min = parse_u64(value)? as u32,
            "max" => profile.in_max = parse_u64(value)? as u32,
            _ => return unknown(),
        },
        "dnf" => match key {
            "terms_min" => profile.dnf_terms_min = parse_u64(value)? as u32,
            "terms_max" => profile.dnf_terms_max = parse_u64(value)? as u32,
            "max_codes" => profile.dnf_max_codes = parse_u64(value)? as u32,
            _ => return unknown(),
        },
        s if s.starts_with("columns.") => {
            let knob = profile
                .columns
                .last_mut()
                .ok_or_else(|| "column key outside a [columns.\"T.c\"] section".to_string())?;
            match key {
                "weight" => knob.weight = parse_f64(value)?,
                "selectivity" => knob.selectivity = Some(parse_f64(value)?),
                "skew" => knob.skew = Some(parse_f64(value)?),
                _ => return unknown(),
            }
        }
        "" => return Err(format!("key '{key}' before any [section]")),
        _ => return unknown(),
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string stays; profiles only quote in values,
    // so scan with a simple in-quote flag.
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(value: &str) -> Result<String, String> {
    let v = value.trim();
    if let Some(inner) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        if inner.contains('"') {
            return Err(format!("embedded quote in string {v:?}"));
        }
        Ok(inner.to_string())
    } else {
        Err(format!("expected a quoted string, got {v:?}"))
    }
}

fn parse_f64(value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|_| format!("expected a number, got {value:?}"))
}

fn parse_u64(value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("expected a non-negative integer, got {value:?}"))
}

fn parse_array(value: &str) -> Result<Vec<f64>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array [..], got {value:?}"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|p| parse_f64(p.trim())).collect()
}

fn fmt_f64(x: f64) -> String {
    // Always keep a decimal point so the value re-parses as written.
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn fmt_array(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| fmt_f64(*x)).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_round_trip_preserves_profile() {
        let mut p = SynthProfile {
            name: "mixed".into(),
            queries: 5000,
            join_weights: vec![0.6, 0.3, 0.1],
            correlation: 0.7,
            skew: 1.5,
            ..SynthProfile::default()
        };
        p.columns.push(ColumnKnob {
            table: "census".into(),
            column: "age".into(),
            weight: 2.0,
            selectivity: Some(0.05),
            skew: Some(2.0),
        });
        let text = p.to_toml();
        let back = SynthProfile::from_toml(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn defaults_fill_unset_sections() {
        let p = SynthProfile::from_toml("[profile]\nname = \"tiny\"\n").unwrap();
        assert_eq!(p.name, "tiny");
        assert_eq!(p.queries, SynthProfile::default().queries);
        assert_eq!(p.shapes, SynthProfile::default().shapes);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n[profile]\n\nname = \"x\" # trailing\nqueries = 7\n";
        let p = SynthProfile::from_toml(text).unwrap();
        assert_eq!(p.name, "x");
        assert_eq!(p.queries, 7);
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(matches!(
            SynthProfile::from_toml("[profile]\nnom = \"typo\"\n"),
            Err(WorkgenError::Profile(m)) if m.contains("unknown key 'nom'")
        ));
        assert!(matches!(
            SynthProfile::from_toml("[shapez]\npoint = 1.0\n"),
            Err(WorkgenError::Profile(m)) if m.contains("unknown section")
        ));
        assert!(matches!(
            SynthProfile::from_toml("queries = 3\n"),
            Err(WorkgenError::Profile(m)) if m.contains("before any")
        ));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for text in [
            "[shapes]\npoint = 0.0\nrange = 0.0\nin = 0.0\ndnf = 0.0\n",
            "[predicates]\nmin = 3\nmax = 1\n",
            "[selectivity]\ntarget = 1.5\n",
            "[correlation]\nstrength = 2.0\n",
            "[dnf]\nmax_codes = 0\n",
        ] {
            assert!(
                matches!(SynthProfile::from_toml(text), Err(WorkgenError::Profile(_))),
                "accepted invalid profile: {text}"
            );
        }
    }

    #[test]
    fn column_sections_parse_quoted_names() {
        let text = "[columns.\"T.c\"]\nweight = 3.0\nselectivity = 0.1\n";
        let p = SynthProfile::from_toml(text).unwrap();
        let k = p.column_knob("T", "c").expect("knob recorded");
        assert_eq!(k.weight, 3.0);
        assert_eq!(k.selectivity, Some(0.1));
        assert_eq!(k.skew, None);
    }
}
