//! Open-loop HTTP load generation against a running `sam-serve`.
//!
//! Replays a query trace as `POST /estimate` requests at a target *offered*
//! rate over N keep-alive connections. The schedule is open-loop in the
//! wrk2 sense: request `k` has the fixed scheduled start `t0 + k/rate`, and
//! its latency is measured **from that scheduled instant**, not from the
//! moment a connection happened to become free — so when the server falls
//! behind, queueing delay shows up in the percentiles instead of being
//! silently absorbed (no coordinated omission).
//!
//! Latencies land in the `sam-metrics` histogram machinery twice: a local
//! [`LatencyHistogram`] snapshotted into the [`LoadReport`], and the global
//! `sam-obs` registry (`workgen_load_latency`) so traces and other
//! observers see the run.

use crate::error::WorkgenError;
use sam_metrics::{LatencyHistogram, LatencySnapshot};
use sam_query::query::Query;
use sam_storage::jsonl::push_json_str;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-run knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Registered model name the estimates target.
    pub model: String,
    /// Offered request rate (requests / second).
    pub rate: f64,
    /// Keep-alive client connections.
    pub connections: usize,
    /// Run length; `ceil(rate * duration)` requests are scheduled.
    pub duration: Duration,
    /// Progressive samples per estimate request.
    pub samples: u64,
    /// Per-request timeout, sent to the server and applied to socket reads.
    pub timeout_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:8080".to_string(),
            model: "default".to_string(),
            rate: 100.0,
            connections: 4,
            duration: Duration::from_secs(10),
            samples: 64,
            timeout_ms: 10_000,
        }
    }
}

/// Outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The offered rate the schedule was built for.
    pub offered_rate: f64,
    /// Requests scheduled (`ceil(rate * duration)`).
    pub scheduled: u64,
    /// Requests with a parsed HTTP response.
    pub completed: u64,
    /// Transport-level failures (connect, write, read, timeout).
    pub errors: u64,
    /// Responses with 2xx status.
    pub status_2xx: u64,
    /// Responses with 4xx status.
    pub status_4xx: u64,
    /// Responses with 5xx status.
    pub status_5xx: u64,
    /// Wall-clock run time in seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second of wall clock.
    pub throughput: f64,
    /// Scheduled-start-to-response latency distribution.
    pub latency: LatencySnapshot,
    /// Per-class breakdown when the run mixed request classes (mined seed
    /// queries vs synthetic trace); empty for a single-class run.
    pub classes: Vec<ClassReport>,
}

/// Latency breakdown for one request class of a mixed load run.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Class label (`synthetic` or `mined`).
    pub label: String,
    /// Distinct queries of this class in the replayed trace.
    pub trace_queries: u64,
    /// Requests of this class with a parsed HTTP response.
    pub completed: u64,
    /// Transport-level failures on requests of this class.
    pub errors: u64,
    /// Scheduled-start-to-response latency distribution for this class.
    pub latency: LatencySnapshot,
}

impl LoadReport {
    /// Markdown table header matching [`LoadReport::markdown_row`].
    pub fn markdown_header() -> String {
        "| offered req/s | achieved req/s | completed | errors | 5xx | p50 ms | p95 ms | p99 ms | max ms |\n\
         |---|---|---|---|---|---|---|---|---|"
            .to_string()
    }

    /// One Markdown table row (the EXPERIMENTS.md format).
    pub fn markdown_row(&self) -> String {
        format!(
            "| {:.0} | {:.1} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            self.offered_rate,
            self.throughput,
            self.completed,
            self.errors,
            self.status_5xx,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
        )
    }

    /// Markdown section breaking latency percentiles down by request class
    /// (mined seed queries vs the synthetic trace). `None` unless the run
    /// actually mixed classes — single-class runs have nothing to compare.
    /// Deliberately a different column count from [`markdown_header`]
    /// (9 columns) and the server-delta section (2), so table-shape-aware
    /// consumers can tell the sections apart.
    ///
    /// [`markdown_header`]: LoadReport::markdown_header
    pub fn markdown_class_section(&self) -> Option<String> {
        if self.classes.len() < 2 {
            return None;
        }
        let mut out = String::from(
            "### Per-class latency (mined seeds vs synthetic)\n\n\
             | class | trace queries | completed | errors | p50 ms | p95 ms |\n\
             |---|---|---|---|---|---|",
        );
        for class in &self.classes {
            out.push_str(&format!(
                "\n| {} | {} | {} | {} | {:.2} | {:.2} |",
                class.label,
                class.trace_queries,
                class.completed,
                class.errors,
                class.latency.p50_ms,
                class.latency.p95_ms,
            ));
        }
        Some(out)
    }
}

/// Server-side counters scraped from `GET /metrics` (the JSON document).
/// Scraped before and after a load run, the difference says what the
/// *server* thinks happened — which the client-side numbers alone cannot
/// (cache hits, worker panics, quality alerts are invisible from outside).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// HTTP requests the server accepted.
    pub http_requests: u64,
    /// Estimates answered 200.
    pub estimates_ok: u64,
    /// Estimate-cache hits.
    pub cache_hits: u64,
    /// Estimate-cache misses.
    pub cache_misses: u64,
    /// Inference-worker panics contained by the batcher.
    pub worker_panics: u64,
    /// Estimates shadow-scored by the quality monitor.
    pub quality_samples: u64,
    /// Shadow scores whose Q-Error crossed the alert threshold.
    pub quality_alerts: u64,
}

impl ServerCounters {
    /// Counter-wise difference `self - before` (saturating, so a server
    /// restart mid-run degrades to zeros instead of nonsense).
    pub fn delta(&self, before: &ServerCounters) -> ServerCounters {
        ServerCounters {
            http_requests: self.http_requests.saturating_sub(before.http_requests),
            estimates_ok: self.estimates_ok.saturating_sub(before.estimates_ok),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(before.cache_misses),
            worker_panics: self.worker_panics.saturating_sub(before.worker_panics),
            quality_samples: self.quality_samples.saturating_sub(before.quality_samples),
            quality_alerts: self.quality_alerts.saturating_sub(before.quality_alerts),
        }
    }

    /// Cache hit rate over the window, `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        (lookups > 0).then(|| self.cache_hits as f64 / lookups as f64)
    }

    /// Markdown section for the load report (deltas over the run window).
    pub fn markdown_section(&self) -> String {
        let hit_rate = self
            .cache_hit_rate()
            .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0));
        format!(
            "### Server-side delta (scraped from /metrics)\n\n\
             | metric | value |\n|---|---|\n\
             | http requests | {} |\n\
             | estimates ok | {} |\n\
             | cache hit rate | {hit_rate} |\n\
             | worker panics | {} |\n\
             | quality samples | {} |\n\
             | quality alerts | {} |",
            self.http_requests,
            self.estimates_ok,
            self.worker_panics,
            self.quality_samples,
            self.quality_alerts,
        )
    }
}

/// Scrape `GET /metrics` from the server and parse the counters this
/// module reports on. `None` on any transport or parse problem — a load
/// run must not fail because the scrape did.
pub fn scrape_server_counters(addr: &str, timeout: Duration) -> Option<ServerCounters> {
    let body = http_get_body(addr, "/metrics", timeout).ok()?;
    let doc = serde_json::parse_value(&body).ok()?;
    // A router's merged /metrics sums counters across shards in f64, so
    // the fields may come back as floats — accept either representation.
    let field = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_u64().or_else(|| v.as_f64().map(|f| f as u64)))
            .unwrap_or(0)
    };
    Some(ServerCounters {
        http_requests: field("http_requests"),
        estimates_ok: field("estimates_ok"),
        cache_hits: field("cache_hits"),
        cache_misses: field("cache_misses"),
        worker_panics: field("worker_panics"),
        quality_samples: field("quality_samples"),
        quality_alerts: field("quality_alerts"),
    })
}

/// Minimal one-shot `GET` returning the response body as text.
fn http_get_body(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(stream);
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    reader.get_mut().write_all(request.as_bytes())?;
    // Headers, then (Connection: close) the body runs to EOF.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(body)
}

/// Pre-rendered request: the full HTTP bytes for one trace entry.
fn render_request(config: &LoadConfig, query: &Query, seed: u64) -> Vec<u8> {
    let mut body = String::with_capacity(160);
    body.push_str("{\"model\":");
    push_json_str(&mut body, &config.model);
    body.push_str(",\"sql\":");
    push_json_str(&mut body, &query.to_string());
    body.push_str(&format!(
        ",\"samples\":{},\"seed\":{},\"timeout_ms\":{}}}",
        config.samples, seed, config.timeout_ms
    ));
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(b"POST /estimate HTTP/1.1\r\n");
    out.extend_from_slice(format!("Host: {}\r\n", config.addr).as_bytes());
    out.extend_from_slice(b"Connection: keep-alive\r\n");
    out.extend_from_slice(b"Content-Type: application/json\r\n");
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// A keep-alive connection that lazily (re)connects.
struct ClientConn {
    addr: String,
    timeout: Duration,
    reader: Option<BufReader<TcpStream>>,
}

impl ClientConn {
    fn new(addr: &str, timeout: Duration) -> ClientConn {
        ClientConn {
            addr: addr.to_string(),
            timeout,
            reader: None,
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.reader.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.reader = Some(BufReader::new(stream));
        }
        Ok(self.reader.as_mut().expect("just ensured"))
    }

    /// One request/response exchange; returns the status code.
    fn exchange(&mut self, request: &[u8]) -> std::io::Result<u16> {
        let reader = self.ensure()?;
        reader.get_mut().write_all(request)?;
        let (status, close) = read_response(reader)?;
        if close {
            self.reader = None; // server announced the close; reconnect next time
        }
        Ok(status)
    }

    fn drop_conn(&mut self) {
        self.reader = None;
    }
}

/// Read one HTTP/1.1 response, discarding the body. Returns
/// `(status, connection_closing)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, bool)> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
                }
                "transfer-encoding" if value.eq_ignore_ascii_case("chunked") => chunked = true,
                "connection" if value.eq_ignore_ascii_case("close") => close = true,
                _ => {}
            }
        }
    }
    let mut sink = Vec::new();
    if chunked {
        // Discard chunks until the terminating zero-size chunk.
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside chunked body",
                ));
            }
            let size =
                usize::from_str_radix(line.trim(), 16).map_err(|_| bad("bad chunk size line"))?;
            sink.resize(size + 2, 0); // chunk data + trailing CRLF
            reader.read_exact(&mut sink)?;
            if size == 0 {
                break;
            }
        }
    } else if let Some(n) = content_length {
        sink.resize(n, 0);
        reader.read_exact(&mut sink)?;
    } else {
        // No framing: the body runs to EOF and the connection dies with it.
        reader.read_to_end(&mut sink)?;
        close = true;
    }
    Ok((status, close))
}

/// Shared run state across worker threads.
struct RunState {
    next: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    by_class: [AtomicU64; 3], // 2xx / 4xx / 5xx
    latency: LatencyHistogram,
    // Per request-class (synthetic / mined) breakdown, indexed like `labels`
    // in the run loop. Single-class runs only ever touch slot 0.
    class_completed: Vec<AtomicU64>,
    class_errors: Vec<AtomicU64>,
    class_latency: Vec<LatencyHistogram>,
}

/// Replay `trace` against the server in `config` and report throughput and
/// latency percentiles.
///
/// Worker `i` owns one keep-alive connection; workers pull scheduled
/// requests from a shared counter, sleep until each request's scheduled
/// instant, and time it from that instant. A transport error costs that
/// one request (counted in `errors`) and the connection is re-established.
///
/// # Errors
///
/// [`WorkgenError::Load`] on invalid configuration (zero rate, empty
/// trace, …) or if not a single request completed.
pub fn run_load(trace: &[Query], config: &LoadConfig) -> Result<LoadReport, WorkgenError> {
    run_load_with_seeds(trace, &[], config)
}

/// Like [`run_load`], but replays a mined hard-query seed set *alongside*
/// the synthetic trace and reports per-class latency percentiles
/// ([`LoadReport::classes`], rendered by
/// [`LoadReport::markdown_class_section`]).
///
/// The two traces are interleaved proportionally (each class appears
/// throughout the request cycle at its share of the combined trace), so
/// mined and synthetic requests experience the same server conditions and
/// their percentiles are directly comparable. With an empty `mined` slice
/// this is exactly `run_load`.
///
/// # Errors
///
/// Same as [`run_load`]; `synthetic` may be empty if `mined` is not.
pub fn run_load_with_seeds(
    synthetic: &[Query],
    mined: &[Query],
    config: &LoadConfig,
) -> Result<LoadReport, WorkgenError> {
    if synthetic.is_empty() && mined.is_empty() {
        return Err(WorkgenError::Load("empty query trace".into()));
    }
    if !(config.rate > 0.0 && config.rate.is_finite()) {
        return Err(WorkgenError::Load(format!("bad rate {}", config.rate)));
    }
    if config.connections == 0 {
        return Err(WorkgenError::Load("need at least one connection".into()));
    }
    let scheduled = (config.rate * config.duration.as_secs_f64()).ceil() as u64;
    if scheduled == 0 {
        return Err(WorkgenError::Load(
            "duration too short: zero requests".into(),
        ));
    }

    // Pre-render every distinct request once (tagged with its class index);
    // the schedule cycles the combined trace. Mined entries are spread
    // proportionally through the cycle rather than appended as a block, so
    // both classes sample the whole run, not disjoint phases of it.
    let mixed = !synthetic.is_empty() && !mined.is_empty();
    let class_count = if mixed { 2 } else { 1 };
    let total = synthetic.len() + mined.len();
    let mut requests: Vec<(Vec<u8>, usize)> = Vec::with_capacity(total);
    let (mut si, mut mi) = (0usize, 0usize);
    for k in 0..total {
        let mined_due = (k + 1) * mined.len() / total;
        let (query, class) = if mi < mined_due {
            mi += 1;
            (&mined[mi - 1], if mixed { 1 } else { 0 })
        } else {
            si += 1;
            (&synthetic[si - 1], 0)
        };
        requests.push((render_request(config, query, k as u64), class));
    }

    let state = Arc::new(RunState {
        next: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        by_class: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        latency: LatencyHistogram::new(),
        class_completed: (0..class_count).map(|_| AtomicU64::new(0)).collect(),
        class_errors: (0..class_count).map(|_| AtomicU64::new(0)).collect(),
        class_latency: (0..class_count).map(|_| LatencyHistogram::new()).collect(),
    });
    let global_latency = sam_obs::histogram("workgen_load_latency");
    let interval = Duration::from_secs_f64(1.0 / config.rate);
    // Small lead time so every worker is parked before the first slot.
    let t0 = Instant::now() + Duration::from_millis(20);

    let workers: Vec<_> = (0..config.connections)
        .map(|_| {
            let state = Arc::clone(&state);
            let global_latency = Arc::clone(&global_latency);
            let requests = requests.clone();
            let addr = config.addr.clone();
            let timeout = Duration::from_millis(config.timeout_ms.max(1));
            std::thread::spawn(move || {
                let mut conn = ClientConn::new(&addr, timeout);
                loop {
                    let k = state.next.fetch_add(1, Ordering::Relaxed);
                    if k >= scheduled {
                        break;
                    }
                    let due = t0 + interval.mul_f64(k as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let (request, trace_class) = &requests[(k % requests.len() as u64) as usize];
                    match conn.exchange(request) {
                        Ok(status) => {
                            // Latency from the *scheduled* start: queueing
                            // behind a busy connection is part of the number.
                            let lat = due.elapsed();
                            state.latency.record(lat);
                            state.class_latency[*trace_class].record(lat);
                            global_latency.record(lat);
                            state.completed.fetch_add(1, Ordering::Relaxed);
                            state.class_completed[*trace_class].fetch_add(1, Ordering::Relaxed);
                            let class = match status {
                                200..=299 => 0,
                                400..=499 => 1,
                                _ => 2,
                            };
                            state.by_class[class].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            state.errors.fetch_add(1, Ordering::Relaxed);
                            state.class_errors[*trace_class].fetch_add(1, Ordering::Relaxed);
                            conn.drop_conn();
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }

    let elapsed_secs = (Instant::now() - t0).as_secs_f64().max(f64::MIN_POSITIVE);
    let completed = state.completed.load(Ordering::Relaxed);
    let errors = state.errors.load(Ordering::Relaxed);
    if completed == 0 {
        return Err(WorkgenError::Load(format!(
            "no request completed against {} ({} transport errors)",
            config.addr, errors
        )));
    }
    let classes = if mixed {
        let trace_counts = [synthetic.len() as u64, mined.len() as u64];
        ["synthetic", "mined"]
            .iter()
            .enumerate()
            .map(|(i, label)| ClassReport {
                label: label.to_string(),
                trace_queries: trace_counts[i],
                completed: state.class_completed[i].load(Ordering::Relaxed),
                errors: state.class_errors[i].load(Ordering::Relaxed),
                latency: state.class_latency[i].snapshot(),
            })
            .collect()
    } else {
        Vec::new()
    };
    Ok(LoadReport {
        offered_rate: config.rate,
        scheduled,
        completed,
        errors,
        status_2xx: state.by_class[0].load(Ordering::Relaxed),
        status_4xx: state.by_class[1].load(Ordering::Relaxed),
        status_5xx: state.by_class[2].load(Ordering::Relaxed),
        elapsed_secs,
        throughput: completed as f64 / elapsed_secs,
        latency: state.latency.snapshot(),
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let q = Query::single("T", vec![]);
        let bad_rate = LoadConfig {
            rate: 0.0,
            ..LoadConfig::default()
        };
        assert!(matches!(
            run_load(std::slice::from_ref(&q), &bad_rate),
            Err(WorkgenError::Load(_))
        ));
        assert!(matches!(
            run_load(&[], &LoadConfig::default()),
            Err(WorkgenError::Load(_))
        ));
        let no_conns = LoadConfig {
            connections: 0,
            ..LoadConfig::default()
        };
        assert!(matches!(
            run_load(std::slice::from_ref(&q), &no_conns),
            Err(WorkgenError::Load(_))
        ));
    }

    #[test]
    fn unreachable_server_reports_load_error() {
        let q = Query::single("T", vec![]);
        // Reserved TEST-NET-1 address: connects fail fast or time out.
        let config = LoadConfig {
            addr: "127.0.0.1:1".to_string(),
            rate: 50.0,
            connections: 2,
            duration: Duration::from_millis(100),
            timeout_ms: 200,
            ..LoadConfig::default()
        };
        let err = run_load(std::slice::from_ref(&q), &config);
        assert!(matches!(err, Err(WorkgenError::Load(_))));
    }

    #[test]
    fn markdown_report_shape() {
        let header = LoadReport::markdown_header();
        assert_eq!(header.lines().count(), 2);
        let cols = header.lines().next().unwrap().matches('|').count();
        let report = LoadReport {
            offered_rate: 100.0,
            scheduled: 10,
            completed: 10,
            errors: 0,
            status_2xx: 10,
            status_4xx: 0,
            status_5xx: 0,
            elapsed_secs: 0.1,
            throughput: 100.0,
            latency: LatencyHistogram::new().snapshot(),
            classes: Vec::new(),
        };
        assert_eq!(report.markdown_row().matches('|').count(), cols);
        // Single-class runs have nothing to compare.
        assert!(report.markdown_class_section().is_none());
    }

    #[test]
    fn class_section_shape_differs_from_main_table() {
        let class = |label: &str| ClassReport {
            label: label.to_string(),
            trace_queries: 4,
            completed: 8,
            errors: 1,
            latency: LatencyHistogram::new().snapshot(),
        };
        let report = LoadReport {
            offered_rate: 100.0,
            scheduled: 16,
            completed: 16,
            errors: 2,
            status_2xx: 16,
            status_4xx: 0,
            status_5xx: 0,
            elapsed_secs: 0.1,
            throughput: 160.0,
            latency: LatencyHistogram::new().snapshot(),
            classes: vec![class("synthetic"), class("mined")],
        };
        let section = report.markdown_class_section().expect("two classes");
        assert!(section.contains("| synthetic |"));
        assert!(section.contains("| mined |"));
        // Shape-aware report consumers key on column count: the class table
        // must collide with neither the 9-column main table nor the
        // 2-column server-delta table.
        let main_cols = LoadReport::markdown_header()
            .lines()
            .next()
            .unwrap()
            .matches('|')
            .count();
        for line in section.lines().filter(|l| l.starts_with('|')) {
            let cols = line.matches('|').count();
            assert_ne!(cols, main_cols, "clashes with main table: {line}");
            assert_ne!(cols, 3, "clashes with 2-column delta table: {line}");
        }
    }

    #[test]
    fn mixed_run_reports_both_classes_against_canned_server() {
        use std::io::Write as _;
        use std::net::TcpListener;

        // Minimal canned HTTP server: reads each request's headers + body and
        // answers 200 with an empty JSON object, keep-alive.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming().take(2) {
                let stream = stream.expect("accept");
                conns.push(std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    loop {
                        let mut content_length = 0usize;
                        let mut line = String::new();
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) | Err(_) => return,
                                Ok(_) => {}
                            }
                            let trimmed = line.trim_end();
                            if trimmed.is_empty() {
                                break;
                            }
                            if let Some(v) = trimmed
                                .to_ascii_lowercase()
                                .strip_prefix("content-length:")
                                .map(|v| v.trim().to_string())
                            {
                                content_length = v.parse().unwrap_or(0);
                            }
                        }
                        let mut body = vec![0u8; content_length];
                        if reader.read_exact(&mut body).is_err() {
                            return;
                        }
                        let response = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                             Content-Length: 2\r\n\r\n{}";
                        if reader.get_mut().write_all(response.as_bytes()).is_err() {
                            return;
                        }
                    }
                }));
            }
            for c in conns {
                let _ = c.join();
            }
        });

        let synthetic = vec![Query::single("S", vec![]), Query::single("T", vec![])];
        let mined = vec![Query::single("M", vec![])];
        let config = LoadConfig {
            addr,
            rate: 200.0,
            connections: 2,
            duration: Duration::from_millis(150),
            timeout_ms: 2_000,
            ..LoadConfig::default()
        };
        let report = run_load_with_seeds(&synthetic, &mined, &config).expect("load run");
        assert_eq!(report.classes.len(), 2);
        assert_eq!(report.classes[0].label, "synthetic");
        assert_eq!(report.classes[1].label, "mined");
        assert_eq!(report.classes[0].trace_queries, 2);
        assert_eq!(report.classes[1].trace_queries, 1);
        // The proportional interleave cycles all three queries, so with ~30
        // scheduled requests both classes must complete some.
        assert!(report.classes[0].completed > 0, "synthetic class starved");
        assert!(report.classes[1].completed > 0, "mined class starved");
        assert_eq!(
            report.completed,
            report.classes[0].completed + report.classes[1].completed
        );
        assert!(report.markdown_class_section().is_some());
        drop(report);
        let _ = server.join();
    }

    #[test]
    fn server_counter_delta_and_section() {
        let before = ServerCounters {
            http_requests: 10,
            estimates_ok: 8,
            cache_hits: 2,
            cache_misses: 6,
            worker_panics: 0,
            quality_samples: 1,
            quality_alerts: 0,
        };
        let after = ServerCounters {
            http_requests: 110,
            estimates_ok: 104,
            cache_hits: 26,
            cache_misses: 78,
            worker_panics: 1,
            quality_samples: 3,
            quality_alerts: 2,
        };
        let delta = after.delta(&before);
        assert_eq!(delta.http_requests, 100);
        assert_eq!(delta.cache_hits, 24);
        assert_eq!(delta.cache_hit_rate(), Some(24.0 / 96.0));
        let section = delta.markdown_section();
        assert!(section.contains("| http requests | 100 |"));
        assert!(section.contains("| cache hit rate | 25.0% |"));
        assert!(section.contains("| quality alerts | 2 |"));
        // Counter reset (restart mid-run) saturates to zero, and a window
        // with no lookups has no hit rate.
        let reset = before.delta(&after);
        assert_eq!(reset.http_requests, 0);
        assert_eq!(reset.cache_hit_rate(), None);
        assert!(reset
            .markdown_section()
            .contains("| cache hit rate | n/a |"));
    }

    #[test]
    fn scrape_unreachable_server_is_none() {
        assert_eq!(
            scrape_server_counters("127.0.0.1:1", Duration::from_millis(200)),
            None
        );
    }

    #[test]
    fn rendered_request_is_valid_http_with_json_body() {
        let q = Query::single("T", vec![]);
        let config = LoadConfig {
            model: "demo".to_string(),
            samples: 16,
            ..LoadConfig::default()
        };
        let bytes = render_request(&config, &q, 3);
        let text = String::from_utf8(bytes).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("POST /estimate HTTP/1.1"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        let doc = serde_json::parse_value(body).expect("body must be JSON");
        assert_eq!(doc.get("model").and_then(|v| v.as_str()), Some("demo"));
        assert_eq!(doc.get("samples").and_then(|v| v.as_u64()), Some(16));
        assert_eq!(
            doc.get("sql").and_then(|v| v.as_str()),
            Some("SELECT COUNT(*) FROM T")
        );
    }
}
