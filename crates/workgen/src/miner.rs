//! Adversarial hard-query mining: find the queries a trained model is
//! worst at.
//!
//! Mutate-and-climb over predicate bounds, guided by *measured* Q-Error:
//! each round keeps the current worst pool, mutates every member a few ways
//! (shift a literal along the sorted domain, swap the comparison operator,
//! grow / shrink an IN list), scores all fresh mutants in one batched
//! estimator call (sharing the sampled-prefix trie across rounds, exactly
//! like the serving path), and merges survivors back by Q-Error. Seeds are
//! scored first, so the mined worst set can only be as bad or worse than
//! the synthesized baseline — the kth-worst Q-Error is monotone
//! nondecreasing in the round number by construction.

use crate::error::WorkgenError;
use crate::rng::SplitMix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{estimate_cardinality_batch_shared, FrozenModel, PrefixTrie};
use sam_metrics::q_error;
use sam_query::eval::evaluate_cardinality;
use sam_query::predicate::{CompareOp, Constraint};
use sam_query::query::Query;
use sam_storage::{Database, DatabaseStats, Domain};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Miner knobs.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Size of the reported worst set.
    pub top_k: usize,
    /// Mutation rounds after the seed scoring pass.
    pub rounds: usize,
    /// Survivor pool carried between rounds (≥ `top_k` is sensible).
    pub pool: usize,
    /// Mutants generated per pool member per round.
    pub mutants: usize,
    /// Progressive samples per estimate (the serving default is 64).
    pub samples: usize,
    /// Seed for mutation choices and estimator RNGs.
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            top_k: 10,
            rounds: 8,
            pool: 16,
            mutants: 4,
            samples: 64,
            seed: 0,
        }
    }
}

/// One scored query.
#[derive(Debug, Clone)]
pub struct MinedQuery {
    /// The query.
    pub query: Query,
    /// True cardinality on the target database.
    pub truth: u64,
    /// Model estimate.
    pub estimate: f64,
    /// `max(estimate/truth, truth/estimate)` with zero protection.
    pub q_error: f64,
}

/// Result of a mining run.
#[derive(Debug, Clone)]
pub struct MinerReport {
    /// The worst queries found, Q-Error descending (≤ `top_k`).
    pub worst: Vec<MinedQuery>,
    /// Mean Q-Error over the seed set (the synthesized baseline).
    pub baseline_mean: f64,
    /// Max Q-Error over the seed set.
    pub baseline_max: f64,
    /// Worst Q-Error after each round (index 0 = after seed scoring);
    /// monotone nondecreasing by construction.
    pub worst_trail: Vec<f64>,
    /// Distinct queries scored (estimate + truth evaluation).
    pub evaluated: u64,
    /// Rounds actually run.
    pub rounds_run: usize,
}

/// Sorted domains of every filterable column, for bound mutations.
struct DomainMap {
    by_column: HashMap<(String, String), Arc<Domain>>,
}

impl DomainMap {
    fn new(db: &Database) -> Self {
        let stats = DatabaseStats::from_database(db);
        let mut by_column = HashMap::new();
        for table in &stats.tables {
            for col in &table.columns {
                by_column.insert(
                    (table.name.clone(), col.name.clone()),
                    Arc::clone(&col.domain),
                );
            }
        }
        DomainMap { by_column }
    }

    fn get(&self, table: &str, column: &str) -> Option<&Domain> {
        self.by_column
            .get(&(table.to_string(), column.to_string()))
            .map(|d| d.as_ref())
    }
}

/// FNV-1a over the canonical string — the "already scored" key.
fn query_key(q: &Query) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in q.canonical_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The domain code closest to `lit` (where an equality at `lit` would land).
fn code_near(domain: &Domain, lit: &sam_storage::Value) -> u32 {
    let below = domain.codes_le(lit).end;
    below.saturating_sub(1)
}

/// Produce one mutated copy of `q`, or `None` if the query has no
/// mutable predicate.
fn mutate(q: &Query, domains: &DomainMap, rng: &mut SplitMix64) -> Option<Query> {
    if q.predicates.is_empty() {
        return None;
    }
    let mut out = q.clone();
    let pi = rng.below(out.predicates.len() as u64) as usize;
    let pred = &mut out.predicates[pi];
    let domain = domains.get(&pred.table, &pred.column)?;
    let len = domain.len() as u64;
    if len == 0 {
        return None;
    }
    match &mut pred.constraint {
        Constraint::Compare(op, lit) => {
            if rng.below(3) == 0 {
                // Swap the operator: flips which side of the bound matches.
                let ops = [
                    CompareOp::Lt,
                    CompareOp::Le,
                    CompareOp::Eq,
                    CompareOp::Ge,
                    CompareOp::Gt,
                ];
                *op = ops[rng.below(ops.len() as u64) as usize];
            } else {
                // Shift the literal along the sorted domain. Steps are a
                // mix of fine (±1) and coarse (up to ~1/8 of the domain) so
                // the climb can both tune a bound and escape a plateau.
                let span = (len / 8).max(1);
                let step = 1 + rng.below(span);
                let code = code_near(domain, lit) as i64;
                let next = if rng.below(2) == 0 {
                    code - step as i64
                } else {
                    code + step as i64
                };
                let next = next.clamp(0, len as i64 - 1) as u32;
                *lit = domain.value(next).clone();
            }
        }
        Constraint::In(vals) => match rng.below(3) {
            // Add a random domain value.
            0 => {
                let v = domain.value(rng.below(len) as u32).clone();
                if !vals.contains(&v) {
                    vals.push(v);
                }
            }
            // Drop one (keep the list non-empty).
            1 if vals.len() > 1 => {
                let i = rng.below(vals.len() as u64) as usize;
                vals.remove(i);
            }
            // Replace one.
            _ => {
                let i = rng.below(vals.len() as u64) as usize;
                vals[i] = domain.value(rng.below(len) as u32).clone();
            }
        },
    }
    Some(out)
}

/// Score a batch: model estimate via the shared-trie batched path, truth via
/// exact evaluation. Queries the estimator rejects are dropped.
fn score_batch(
    model: &FrozenModel,
    db: &Database,
    queries: Vec<Query>,
    samples: usize,
    trie: &mut PrefixTrie,
    rng_seed: &mut u64,
) -> Result<Vec<MinedQuery>, WorkgenError> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let requests: Vec<(&Query, usize)> = queries.iter().map(|q| (q, samples)).collect();
    let mut rngs: Vec<StdRng> = (0..queries.len())
        .map(|_| {
            *rng_seed = rng_seed.wrapping_add(1);
            StdRng::seed_from_u64(*rng_seed)
        })
        .collect();
    let estimates = estimate_cardinality_batch_shared(model, &requests, &mut rngs, trie);
    let mut out = Vec::with_capacity(queries.len());
    for (q, est) in queries.into_iter().zip(estimates) {
        let Ok(estimate) = est else {
            continue; // e.g. a table the model was not trained on
        };
        let truth = evaluate_cardinality(db, &q).map_err(|e| WorkgenError::Eval(e.to_string()))?;
        out.push(MinedQuery {
            q_error: q_error(estimate, truth as f64),
            query: q,
            truth,
            estimate,
        });
    }
    Ok(out)
}

/// Keep `ranked` sorted by Q-Error descending and truncated to `cap`.
fn merge_ranked(ranked: &mut Vec<MinedQuery>, fresh: &[MinedQuery], cap: usize) {
    ranked.extend(fresh.iter().cloned());
    ranked.sort_by(|a, b| b.q_error.total_cmp(&a.q_error));
    ranked.truncate(cap);
}

/// Mine the `top_k` worst queries for `model` on `db`, climbing from
/// `seeds`.
///
/// # Errors
///
/// [`WorkgenError::Eval`] if `seeds` is empty, every seed is rejected by
/// the estimator, or truth evaluation fails.
pub fn mine_hard_queries(
    model: &FrozenModel,
    db: &Database,
    seeds: &[Query],
    config: &MinerConfig,
) -> Result<MinerReport, WorkgenError> {
    if seeds.is_empty() {
        return Err(WorkgenError::Eval("no seed queries to mine from".into()));
    }
    let domains = DomainMap::new(db);
    let mut trie = PrefixTrie::new();
    let mut rng = SplitMix64::new(config.seed);
    let mut rng_seed = config.seed ^ 0x6d69_6e65_7221_7221; // estimator streams
    let mut seen: HashSet<u64> = seeds.iter().map(query_key).collect();

    let scored_seeds = score_batch(
        model,
        db,
        seeds.to_vec(),
        config.samples,
        &mut trie,
        &mut rng_seed,
    )?;
    if scored_seeds.is_empty() {
        return Err(WorkgenError::Eval(
            "estimator rejected every seed query".into(),
        ));
    }
    let mut evaluated = scored_seeds.len() as u64;
    let baseline_mean =
        scored_seeds.iter().map(|m| m.q_error).sum::<f64>() / scored_seeds.len() as f64;
    let baseline_max = scored_seeds
        .iter()
        .map(|m| m.q_error)
        .fold(f64::NEG_INFINITY, f64::max);

    let cap = config.pool.max(config.top_k).max(1);
    let mut pool: Vec<MinedQuery> = Vec::new();
    merge_ranked(&mut pool, &scored_seeds, cap);
    let mut worst_trail = vec![pool[0].q_error];

    let mut rounds_run = 0;
    for _ in 0..config.rounds {
        let mut fresh: Vec<Query> = Vec::new();
        for survivor in &pool {
            for _ in 0..config.mutants {
                if let Some(m) = mutate(&survivor.query, &domains, &mut rng) {
                    if seen.insert(query_key(&m)) {
                        fresh.push(m);
                    }
                }
            }
        }
        if fresh.is_empty() {
            break; // mutation space exhausted around the pool
        }
        let scored = score_batch(model, db, fresh, config.samples, &mut trie, &mut rng_seed)?;
        evaluated += scored.len() as u64;
        merge_ranked(&mut pool, &scored, cap);
        worst_trail.push(pool[0].q_error);
        rounds_run += 1;
    }

    let mut worst = pool;
    worst.truncate(config.top_k.max(1));
    Ok(MinerReport {
        worst,
        baseline_mean,
        baseline_max,
        worst_trail,
        evaluated,
        rounds_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SynthProfile;
    use crate::synth::{synthesize, SynthTarget};
    use sam_core::{Sam, SamConfig, TrainedSam};
    use sam_query::label_workload;
    use sam_query::workload::WorkloadGenerator;
    use sam_storage::paper_example;

    /// A small deterministic model on the Figure-3 database.
    fn tiny_model(db: &Database) -> TrainedSam {
        let stats = DatabaseStats::from_database(db);
        let mut gen = WorkloadGenerator::new(db, 7);
        let workload = label_workload(db, gen.multi_workload(24, 2)).unwrap();
        let config = SamConfig {
            model: sam_ar::ArModelConfig {
                hidden: vec![12],
                seed: 1,
                residual: false,
                transformer: None,
            },
            train: sam_ar::TrainConfig {
                epochs: 4,
                batch_size: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
    }

    fn seeds(db: &Database, n: u64) -> Vec<Query> {
        let profile = SynthProfile {
            preds_min: 1,
            preds_max: 2,
            ..SynthProfile::default()
        };
        let target = SynthTarget::from_database(db, &profile).unwrap();
        synthesize(&target, &profile, 42, n)
    }

    #[test]
    fn mined_worst_dominates_baseline_and_is_monotone() {
        let db = paper_example::figure3_database();
        let trained = tiny_model(&db);
        let seeds = seeds(&db, 12);
        let config = MinerConfig {
            top_k: 5,
            rounds: 4,
            pool: 8,
            mutants: 3,
            samples: 16,
            seed: 9,
        };
        let report = mine_hard_queries(trained.model(), &db, &seeds, &config).unwrap();

        assert!(!report.worst.is_empty() && report.worst.len() <= 5);
        for w in report.worst.windows(2) {
            assert!(w[0].q_error >= w[1].q_error, "worst set must be sorted");
        }
        assert!(
            report.worst[0].q_error >= report.baseline_max,
            "mined worst ({}) must be at least the seed baseline ({})",
            report.worst[0].q_error,
            report.baseline_max
        );
        for w in report.worst_trail.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "worst trail must be monotone");
        }
        assert!(report.evaluated >= seeds.len() as u64);
        // Every reported query is real: truth re-evaluates identically.
        for m in &report.worst {
            assert_eq!(evaluate_cardinality(&db, &m.query).unwrap(), m.truth);
        }
    }

    #[test]
    fn mining_is_deterministic() {
        let db = paper_example::figure3_database();
        let trained = tiny_model(&db);
        let seeds = seeds(&db, 8);
        let config = MinerConfig {
            rounds: 3,
            samples: 8,
            seed: 4,
            ..MinerConfig::default()
        };
        let a = mine_hard_queries(trained.model(), &db, &seeds, &config).unwrap();
        let b = mine_hard_queries(trained.model(), &db, &seeds, &config).unwrap();
        assert_eq!(a.worst.len(), b.worst.len());
        for (x, y) in a.worst.iter().zip(&b.worst) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.q_error, y.q_error);
        }
    }

    #[test]
    fn empty_seeds_error() {
        let db = paper_example::figure3_database();
        let trained = tiny_model(&db);
        let err = mine_hard_queries(trained.model(), &db, &[], &MinerConfig::default());
        assert!(matches!(err, Err(WorkgenError::Eval(_))));
    }

    #[test]
    fn mutation_stays_in_query_class() {
        let db = paper_example::figure3_database();
        let domains = DomainMap::new(&db);
        let graph = db.graph();
        let mut rng = SplitMix64::new(2);
        for (i, q) in seeds(&db, 10).iter().enumerate() {
            for _ in 0..20 {
                if let Some(m) = mutate(q, &domains, &mut rng) {
                    assert_eq!(m.tables, q.tables, "mutation must not change tables");
                    let closure = m.table_closure(graph).expect("resolves");
                    assert!(!closure.is_empty(), "seed {i} mutated out of the graph");
                    evaluate_cardinality(&db, &m).expect("mutant must stay evaluable");
                }
            }
        }
    }
}
