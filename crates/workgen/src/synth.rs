//! Deterministic workload synthesis.
//!
//! A [`SynthTarget`] is the filterable surface of a schema (content columns
//! with their sorted domains, plus the join tree); a [`SynthProfile`] is the
//! mixture; a seed picks the point in the mixture. Together they define one
//! workload, byte for byte: query `i` draws every random choice from the
//! dedicated sub-stream [`SplitMix64::for_index`]`(seed, attempt)`, so
//! batching, buffering, and resume points can never reorder the output.
//!
//! Queries stream straight to a writer — synthesizing millions of queries
//! holds only the dedup set (8 bytes per emitted query) in memory.

use crate::error::WorkgenError;
use crate::profile::SynthProfile;
use crate::rng::SplitMix64;
use sam_query::eval::evaluate_cardinality;
use sam_query::predicate::{CompareOp, Predicate};
use sam_query::query::Query;
use sam_storage::{Database, DatabaseSchema, DatabaseStats, Domain, JoinGraph, Value};
use std::collections::HashSet;
use std::io::Write;
use std::sync::Arc;

/// One filterable column of the target.
#[derive(Debug, Clone)]
struct ColumnTarget {
    name: String,
    domain: Arc<Domain>,
    /// Resolved selection weight (0 excludes the column).
    weight: f64,
    /// Resolved per-predicate selectivity target.
    selectivity: f64,
    /// Resolved anchor skew exponent.
    skew: f64,
}

impl ColumnTarget {
    fn usable(&self) -> bool {
        self.weight > 0.0 && !self.domain.is_empty()
    }
}

/// One relation of the target.
#[derive(Debug, Clone)]
struct TableTarget {
    name: String,
    columns: Vec<ColumnTarget>,
}

/// The synthesizer's view of a schema: join tree plus filterable columns
/// with profile knobs resolved per column.
#[derive(Debug, Clone)]
pub struct SynthTarget {
    graph: JoinGraph,
    tables: Vec<TableTarget>,
}

/// A literal is only usable if its SQL rendering parses back: strings must
/// not embed quotes or line breaks, floats must be finite.
fn literal_round_trips(v: &Value) -> bool {
    match v {
        Value::Str(s) => !s.contains('\'') && !s.contains('\n') && !s.contains('\r'),
        Value::Float(f) => f.is_finite(),
        _ => true,
    }
}

impl SynthTarget {
    /// Resolve a schema + stats pair against a profile.
    ///
    /// Columns whose domain contains values that would not survive the SQL
    /// round trip (embedded quotes, non-finite floats) are excluded rather
    /// than risking unparseable output.
    ///
    /// # Errors
    ///
    /// [`WorkgenError::Target`] if the join graph is invalid, a profile
    /// column override names an unknown column, or no filterable column
    /// remains anywhere in the schema.
    pub fn new(
        schema: &DatabaseSchema,
        stats: &DatabaseStats,
        profile: &SynthProfile,
    ) -> Result<Self, WorkgenError> {
        profile.validate()?;
        let graph = JoinGraph::new(schema).map_err(|e| WorkgenError::Target(e.to_string()))?;
        if graph.is_empty() {
            return Err(WorkgenError::Target("schema has no tables".into()));
        }
        for k in &profile.columns {
            let table = stats.table_by_name(&k.table).ok_or_else(|| {
                WorkgenError::Target(format!("profile overrides unknown table {:?}", k.table))
            })?;
            if !table.columns.iter().any(|c| c.name == k.column) {
                return Err(WorkgenError::Target(format!(
                    "profile overrides unknown column {}.{}",
                    k.table, k.column
                )));
            }
        }
        let tables = graph
            .tables()
            .iter()
            .map(|name| {
                let ts = stats
                    .table_by_name(name)
                    .ok_or_else(|| WorkgenError::Target(format!("stats missing table {name:?}")))?;
                let columns = ts
                    .columns
                    .iter()
                    .map(|cs| {
                        let knob = profile.column_knob(name, &cs.name);
                        let clean = cs.domain.values().iter().all(literal_round_trips);
                        ColumnTarget {
                            name: cs.name.clone(),
                            domain: Arc::clone(&cs.domain),
                            weight: if clean {
                                knob.map_or(1.0, |k| k.weight)
                            } else {
                                0.0
                            },
                            selectivity: knob
                                .and_then(|k| k.selectivity)
                                .unwrap_or(profile.selectivity),
                            skew: knob.and_then(|k| k.skew).unwrap_or(profile.skew),
                        }
                    })
                    .collect();
                Ok(TableTarget {
                    name: name.clone(),
                    columns,
                })
            })
            .collect::<Result<Vec<TableTarget>, WorkgenError>>()?;
        let any_usable = tables
            .iter()
            .any(|t| t.columns.iter().any(ColumnTarget::usable));
        if !any_usable {
            return Err(WorkgenError::Target(
                "no filterable column in the schema (all excluded or empty)".into(),
            ));
        }
        Ok(SynthTarget { graph, tables })
    }

    /// Convenience: target straight from a database instance.
    pub fn from_database(db: &Database, profile: &SynthProfile) -> Result<Self, WorkgenError> {
        SynthTarget::new(db.schema(), &DatabaseStats::from_database(db), profile)
    }

    /// Table names in join-graph order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

/// What a synthesis run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthReport {
    /// Queries requested.
    pub requested: u64,
    /// Distinct queries emitted (may fall short if the target's query space
    /// is smaller than the request).
    pub emitted: u64,
    /// Generation attempts consumed (emitted + rejected duplicates).
    pub attempts: u64,
    /// Attempts rejected as duplicates of already-emitted queries.
    pub duplicates: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Whether lines carry `-- card=N` labels.
    pub labeled: bool,
}

/// FNV-1a over the canonical query string: the dedup key.
fn query_key(q: &Query) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in q.canonical_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic, deduplicated stream of synthesized queries.
///
/// Iterating yields up to `count` distinct queries; the sequence is a pure
/// function of (target, profile, seed).
pub struct QueryStream<'a> {
    target: &'a SynthTarget,
    profile: &'a SynthProfile,
    seed: u64,
    count: u64,
    emitted: u64,
    attempts: u64,
    duplicates: u64,
    max_attempts: u64,
    seen: HashSet<u64>,
}

impl<'a> QueryStream<'a> {
    /// A stream of `count` distinct queries for (profile, seed).
    pub fn new(target: &'a SynthTarget, profile: &'a SynthProfile, seed: u64, count: u64) -> Self {
        QueryStream {
            target,
            profile,
            seed,
            count,
            emitted: 0,
            attempts: 0,
            duplicates: 0,
            // Generous cap so tiny query spaces terminate rather than spin.
            max_attempts: count.saturating_mul(32).saturating_add(1024),
            seen: HashSet::new(),
        }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Duplicate attempts rejected so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Generate the query for one attempt sub-stream.
    fn generate(&self, rng: &mut SplitMix64) -> Query {
        let graph = &self.target.graph;
        let n = graph.len();

        // 1. Join size: weight i is the weight of (i+1)-table queries.
        let mut join_weights: Vec<f64> =
            self.profile.join_weights.iter().copied().take(n).collect();
        if join_weights.iter().all(|w| *w <= 0.0) {
            join_weights = vec![1.0];
        }
        let want_tables = rng.weighted(&join_weights) + 1;

        // 2. Grow a connected subtree of the join graph.
        let mut in_set = vec![false; n];
        let start = rng.below(n as u64) as usize;
        in_set[start] = true;
        let mut chosen = vec![start];
        while chosen.len() < want_tables {
            let mut frontier: Vec<usize> = Vec::new();
            for &t in &chosen {
                if let Some(p) = graph.parent(t) {
                    if !in_set[p] {
                        frontier.push(p);
                    }
                }
                for &c in graph.children(t) {
                    if !in_set[c] {
                        frontier.push(c);
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
            let Some(&pick) = frontier.get(rng.below(frontier.len() as u64) as usize) else {
                break;
            };
            in_set[pick] = true;
            chosen.push(pick);
        }
        chosen.sort_unstable();
        let tables: Vec<String> = chosen
            .iter()
            .map(|&t| self.target.tables[t].name.clone())
            .collect();

        // 3. Candidate columns across the chosen tables.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &t in &chosen {
            for (c, col) in self.target.tables[t].columns.iter().enumerate() {
                if col.usable() {
                    candidates.push((t, c));
                }
            }
        }
        let want_preds = rng
            .range_inclusive(self.profile.preds_min as u64, self.profile.preds_max as u64)
            .min(candidates.len() as u64);

        // 4. Predicates on distinct weighted columns.
        let mut predicates: Vec<Predicate> = Vec::new();
        let mut first_anchor: Option<f64> = None;
        for _ in 0..want_preds {
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&(t, c)| self.target.tables[t].columns[c].weight)
                .collect();
            let (t, c) = candidates.remove(rng.weighted(&weights));
            let table = &self.target.tables[t];
            let col = &table.columns[c];
            let correlated = first_anchor.is_some() && rng.next_f64() < self.profile.correlation;
            let anchor = if correlated {
                first_anchor.expect("checked above")
            } else {
                // Skew pushes the anchor toward the low end of the domain.
                rng.next_f64().powf(1.0 + col.skew)
            };
            if first_anchor.is_none() {
                first_anchor = Some(anchor);
            }
            self.push_shape(rng, table, col, anchor, &mut predicates);
        }

        Query::join(tables, predicates)
    }

    /// Effective selectivity for one predicate: the column target with
    /// log-uniform jitter `exp(U[-jitter, jitter])`, clamped to `(0, 1]`.
    fn effective_selectivity(&self, rng: &mut SplitMix64, col: &ColumnTarget) -> f64 {
        let jitter = self.profile.jitter * (2.0 * rng.next_f64() - 1.0);
        (col.selectivity * jitter.exp()).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Append the predicate(s) for one shape draw on `col`.
    fn push_shape(
        &self,
        rng: &mut SplitMix64,
        table: &TableTarget,
        col: &ColumnTarget,
        anchor: f64,
        out: &mut Vec<Predicate>,
    ) {
        let len = col.domain.len() as u64;
        let shapes = &self.profile.shapes;
        let shape = if len == 1 {
            0 // single-value domains only support point predicates
        } else {
            rng.weighted(&[shapes.point, shapes.range, shapes.in_list, shapes.dnf])
        };
        // Map an anchor fraction to a start code leaving room for `width`.
        let start_for = |a: f64, width: u64| -> u64 {
            let max_start = len - width;
            (((max_start + 1) as f64 * a) as u64).min(max_start)
        };
        match shape {
            // Point: `col = v` at the anchor.
            0 => {
                let code = start_for(anchor, 1);
                out.push(Predicate::compare(
                    &table.name,
                    &col.name,
                    CompareOp::Eq,
                    col.domain.value(code as u32).clone(),
                ));
            }
            // Range: a two-sided window covering ~selectivity of the domain.
            1 => {
                let s = self.effective_selectivity(rng, col);
                let width = ((s * len as f64).round() as u64).clamp(1, len);
                let start = start_for(anchor, width);
                let lo = col.domain.value(start as u32).clone();
                let hi = col.domain.value((start + width - 1) as u32).clone();
                out.push(Predicate::compare(
                    &table.name,
                    &col.name,
                    CompareOp::Ge,
                    lo,
                ));
                out.push(Predicate::compare(
                    &table.name,
                    &col.name,
                    CompareOp::Le,
                    hi,
                ));
            }
            // IN: m distinct values drawn uniformly (Floyd's algorithm).
            2 => {
                let m = rng
                    .range_inclusive(self.profile.in_min as u64, self.profile.in_max as u64)
                    .min(len);
                let mut codes: Vec<u32> = Vec::with_capacity(m as usize);
                for j in (len - m)..len {
                    let t = rng.below(j + 1) as u32;
                    if codes.contains(&t) {
                        codes.push(j as u32);
                    } else {
                        codes.push(t);
                    }
                }
                codes.sort_unstable();
                let values = codes.iter().map(|&c| col.domain.value(c).clone()).collect();
                out.push(Predicate::in_list(&table.name, &col.name, values));
            }
            // DNF: k disjoint range disjuncts, materialized as the IN list
            // of their union so the emitted query stays conjunctive.
            _ => {
                let k = rng
                    .range_inclusive(
                        self.profile.dnf_terms_min as u64,
                        self.profile.dnf_terms_max as u64,
                    )
                    .min(len)
                    .max(1);
                let segment = len / k; // ≥ 1 because k ≤ len
                let s = self.effective_selectivity(rng, col);
                let width = ((s * len as f64 / k as f64).round() as u64)
                    .clamp(1, segment)
                    .min(((self.profile.dnf_max_codes as u64) / k).max(1));
                let mut values = Vec::with_capacity((k * width) as usize);
                for j in 0..k {
                    let seg_start = j * segment;
                    let offset = rng.below(segment - width + 1);
                    for code in (seg_start + offset)..(seg_start + offset + width) {
                        values.push(col.domain.value(code as u32).clone());
                    }
                }
                out.push(Predicate::in_list(&table.name, &col.name, values));
            }
        }
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Query;

    fn next(&mut self) -> Option<Query> {
        while self.emitted < self.count && self.attempts < self.max_attempts {
            let mut rng = SplitMix64::for_index(self.seed, self.attempts);
            self.attempts += 1;
            let q = self.generate(&mut rng);
            if self.seen.insert(query_key(&q)) {
                self.emitted += 1;
                return Some(q);
            }
            self.duplicates += 1;
        }
        None
    }
}

/// Stream `count` distinct queries into `out` in the workload interchange
/// format (one query per line). With `label_db`, each line carries its true
/// cardinality as `-- card=N`, producing a file `sam-ar` training consumes
/// directly.
///
/// # Errors
///
/// [`WorkgenError::Io`] on write failure; [`WorkgenError::Eval`] if
/// labelling fails (labels only).
pub fn synthesize_into<W: Write>(
    target: &SynthTarget,
    profile: &SynthProfile,
    seed: u64,
    count: u64,
    label_db: Option<&Database>,
    out: &mut W,
) -> Result<SynthReport, WorkgenError> {
    let mut stream = QueryStream::new(target, profile, seed, count);
    let mut emitted = 0u64;
    let mut bytes = 0u64;
    let mut line = String::new();
    for q in stream.by_ref() {
        line.clear();
        line.push_str(&q.to_string());
        if let Some(db) = label_db {
            let card =
                evaluate_cardinality(db, &q).map_err(|e| WorkgenError::Eval(e.to_string()))?;
            line.push_str(&format!(" -- card={card}"));
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
        emitted += 1;
        bytes += line.len() as u64;
    }
    Ok(SynthReport {
        requested: count,
        emitted,
        attempts: stream.attempts(),
        duplicates: stream.duplicates(),
        bytes,
        labeled: label_db.is_some(),
    })
}

/// Collect `count` distinct queries in memory (small workloads, miner seeds).
pub fn synthesize(
    target: &SynthTarget,
    profile: &SynthProfile,
    seed: u64,
    count: u64,
) -> Vec<Query> {
    QueryStream::new(target, profile, seed, count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ColumnKnob;
    use sam_query::io::read_workload_entries;
    use sam_storage::paper_example;
    use sam_storage::schema::{ColumnDef, TableSchema};
    use sam_storage::value::DataType;
    use sam_storage::Table;

    /// One table, one wide int column (codes 0..=199), one categorical.
    fn wide_db() -> Database {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("s", DataType::Str),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::Int(i), Value::str(format!("cat{}", i % 5))])
            .collect();
        Database::single(Table::from_rows(schema, &rows).unwrap())
    }

    fn profile() -> SynthProfile {
        SynthProfile {
            queries: 64,
            ..SynthProfile::default()
        }
    }

    #[test]
    fn same_seed_is_byte_identical_different_seed_is_not() {
        let db = wide_db();
        let p = profile();
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        synthesize_into(&target, &p, 7, 50, None, &mut a).unwrap();
        synthesize_into(&target, &p, 7, 50, None, &mut b).unwrap();
        synthesize_into(&target, &p, 8, 50, None, &mut c).unwrap();
        assert_eq!(a, b, "same (profile, seed) must be byte-identical");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn emitted_queries_are_distinct_and_parse_back() {
        let db = wide_db();
        let p = profile();
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let mut buf = Vec::new();
        let report = synthesize_into(&target, &p, 3, 100, None, &mut buf).unwrap();
        assert_eq!(report.emitted, 100);
        assert_eq!(report.bytes, buf.len() as u64);
        let entries = read_workload_entries(&buf[..]).unwrap();
        assert_eq!(entries.len(), 100);
        let mut keys: Vec<String> = entries.iter().map(|(q, _)| q.canonical_string()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 100, "emitted queries must be distinct");
    }

    #[test]
    fn labels_match_true_cardinalities() {
        let db = wide_db();
        let p = profile();
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let mut buf = Vec::new();
        let report = synthesize_into(&target, &p, 5, 20, Some(&db), &mut buf).unwrap();
        assert!(report.labeled);
        let entries = read_workload_entries(&buf[..]).unwrap();
        for (q, card) in entries {
            let truth = evaluate_cardinality(&db, &q).unwrap();
            assert_eq!(card, Some(truth), "label mismatch for {q}");
        }
    }

    #[test]
    fn join_queries_span_connected_subtrees() {
        let db = paper_example::figure3_database();
        let p = SynthProfile {
            join_weights: vec![0.0, 1.0, 1.0],
            ..profile()
        };
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let graph = db.graph();
        let queries = synthesize(&target, &p, 11, 30);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(q.tables.len() >= 2, "join weights exclude single tables");
            let closure = q.table_closure(graph).expect("tables resolve");
            assert_eq!(
                closure.len(),
                q.tables.len(),
                "{q}: table set must already be connected"
            );
        }
    }

    #[test]
    fn selectivity_knob_controls_range_width() {
        let db = wide_db();
        let mean_width = |sel: f64| {
            let p = SynthProfile {
                shapes: crate::profile::ShapeWeights {
                    point: 0.0,
                    range: 1.0,
                    in_list: 0.0,
                    dnf: 0.0,
                },
                selectivity: sel,
                jitter: 0.0,
                preds_min: 1,
                preds_max: 1,
                columns: vec![ColumnKnob {
                    table: "T".into(),
                    column: "s".into(),
                    weight: 0.0,
                    selectivity: None,
                    skew: None,
                }],
                ..SynthProfile::default()
            };
            let target = SynthTarget::from_database(&db, &p).unwrap();
            let queries = synthesize(&target, &p, 2, 40);
            let total: u64 = queries
                .iter()
                .map(|q| evaluate_cardinality(&db, q).unwrap())
                .sum();
            total as f64 / queries.len() as f64
        };
        let narrow = mean_width(0.05);
        let wide = mean_width(0.8);
        // 200-row table: 5% ranges match ~10 rows, 80% ranges ~160.
        assert!(
            narrow < 30.0 && wide > 100.0 && narrow < wide / 3.0,
            "selectivity knob ineffective: narrow={narrow} wide={wide}"
        );
    }

    #[test]
    fn columns_with_unsafe_literals_are_excluded() {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::content("ok", DataType::Int),
                ColumnDef::content("bad", DataType::Str),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i), Value::str(format!("it's {i}"))])
            .collect();
        let db = Database::single(Table::from_rows(schema, &rows).unwrap());
        let p = profile();
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let queries = synthesize(&target, &p, 1, 30);
        assert!(!queries.is_empty());
        for q in &queries {
            for pred in &q.predicates {
                assert_eq!(pred.column, "ok", "unsafe column must never be filtered");
            }
        }
    }

    #[test]
    fn tiny_query_space_terminates_short() {
        // Domain of 2 values, point-only: the space holds a handful of
        // distinct queries — the stream must stop, not spin.
        let schema = TableSchema::new("T", vec![ColumnDef::content("a", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..2).map(|i| vec![Value::Int(i)]).collect();
        let db = Database::single(Table::from_rows(schema, &rows).unwrap());
        let p = SynthProfile {
            shapes: crate::profile::ShapeWeights {
                point: 1.0,
                range: 0.0,
                in_list: 0.0,
                dnf: 0.0,
            },
            preds_min: 1,
            preds_max: 1,
            ..SynthProfile::default()
        };
        let target = SynthTarget::from_database(&db, &p).unwrap();
        let mut buf = Vec::new();
        let report = synthesize_into(&target, &p, 1, 1000, None, &mut buf).unwrap();
        assert!(report.emitted <= 2, "only two point queries exist");
        assert!(report.attempts <= report.requested * 32 + 1024);
    }
}
