//! End-to-end: synthesize a trace, stand up a real `sam-serve`, replay the
//! trace open-loop, and check the latency report.

use sam_core::{Sam, SamConfig, TrainedSam};
use sam_query::{label_workload, WorkloadGenerator};
use sam_serve::{ServeConfig, Server};
use sam_storage::{paper_example, Database, DatabaseStats};
use sam_workgen::{run_load, synthesize, LoadConfig, SynthProfile, SynthTarget};
use std::time::Duration;

fn tiny_model(db: &Database) -> TrainedSam {
    let stats = DatabaseStats::from_database(db);
    let mut gen = WorkloadGenerator::new(db, 7);
    let workload = label_workload(db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: vec![12],
            seed: 3,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

#[test]
fn open_loop_replay_reports_finite_latency_and_no_5xx() {
    let db = paper_example::figure3_database();
    let server = Server::start(ServeConfig::default()).expect("server starts");
    server.registry().insert("demo", tiny_model(&db));

    let profile = SynthProfile {
        preds_min: 1,
        preds_max: 2,
        ..SynthProfile::default()
    };
    let target = SynthTarget::from_database(&db, &profile).unwrap();
    let trace = synthesize(&target, &profile, 17, 24);
    assert!(!trace.is_empty());

    let config = LoadConfig {
        addr: server.addr().to_string(),
        model: "demo".to_string(),
        rate: 120.0,
        connections: 3,
        duration: Duration::from_millis(1200),
        samples: 16,
        timeout_ms: 5_000,
    };
    let report = run_load(&trace, &config).expect("load run completes");

    assert!(report.completed > 0, "some requests must complete");
    assert_eq!(report.status_5xx, 0, "no server errors under modest load");
    assert_eq!(
        report.completed,
        report.status_2xx + report.status_4xx + report.status_5xx
    );
    assert_eq!(report.status_4xx, 0, "all trace queries are valid");
    assert_eq!(report.latency.count, report.completed);
    assert!(
        report.latency.p99_ms.is_finite() && report.latency.p99_ms > 0.0,
        "p99 must be a real number, got {}",
        report.latency.p99_ms
    );
    assert!(report.latency.p50_ms <= report.latency.p99_ms + 1e-9);
    assert!(report.throughput > 0.0);
    // The server side must have seen exactly the completed estimates.
    assert!(server.metrics().estimates_ok.get() >= report.status_2xx);

    // The markdown row renders with real numbers (EXPERIMENTS.md format).
    let row = report.markdown_row();
    assert_eq!(
        row.matches('|').count(),
        sam_workgen::LoadReport::markdown_header()
            .lines()
            .next()
            .unwrap()
            .matches('|')
            .count()
    );

    server.shutdown();
}

#[test]
fn overload_shows_up_as_queueing_latency_not_lost_requests() {
    // One connection at an offered rate the tiny server can absorb, but with
    // a schedule long enough that scheduled-time accounting matters: all
    // requests complete and every latency is measured from its slot.
    let db = paper_example::figure3_database();
    let server = Server::start(ServeConfig::default()).expect("server starts");
    server.registry().insert("demo", tiny_model(&db));

    let profile = SynthProfile::default();
    let target = SynthTarget::from_database(&db, &profile).unwrap();
    let trace = synthesize(&target, &profile, 5, 8);

    let config = LoadConfig {
        addr: server.addr().to_string(),
        model: "demo".to_string(),
        rate: 400.0,
        connections: 1,
        duration: Duration::from_millis(500),
        samples: 16,
        timeout_ms: 5_000,
    };
    let report = run_load(&trace, &config).expect("load run completes");
    assert_eq!(report.errors, 0, "keep-alive replay must not drop requests");
    assert_eq!(report.completed, report.scheduled);
    assert_eq!(report.status_5xx, 0);
    server.shutdown();
}
