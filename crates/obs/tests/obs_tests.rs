//! sam-obs integration tests: registry concurrency, exposition formats,
//! span nesting, Chrome trace validity.
//!
//! Sink, log level, and the trace collector are process-global, so tests
//! that touch them serialise on one mutex (Rust runs tests in threads of a
//! single process).

use sam_obs::{span, LogLevel, Registry};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Serialises tests that mutate global sink / level / tracing state.
fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Reset global obs state after a test that changed it.
fn reset_globals() {
    sam_obs::set_log_level(LogLevel::Silent);
    sam_obs::set_sink(sam_obs::Sink::Silent);
    sam_obs::disable_tracing();
    let _ = sam_obs::take_chrome_trace();
}

#[test]
fn counters_bumped_from_eight_threads_lose_nothing() {
    let registry = Registry::new();
    let counter = registry.counter("test_concurrent_total");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..10_000 {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), 80_000);

    // Lazy registration from many threads resolves to one metric.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let registry = &registry;
            scope.spawn(move || {
                registry.counter("test_concurrent_total").add(5);
            });
        }
    });
    assert_eq!(counter.get(), 80_040);
}

#[test]
fn gauges_and_histograms_roundtrip() {
    let registry = Registry::new();
    registry.gauge("test_gauge").set(2.5);
    assert_eq!(registry.gauge("test_gauge").get(), 2.5);
    let h = registry.histogram("test_latency");
    h.record(Duration::from_micros(700));
    assert_eq!(registry.histogram("test_latency").count(), 1);
}

#[test]
fn prometheus_exposition_format() {
    let registry = Registry::new();
    // Counter without _total gets the suffix appended; with it, unchanged.
    registry.counter("requests").add(3);
    registry.counter("sam_batches_total").add(7);
    registry
        .counter_with("labelled_total", &[("model", "a\"b\\c\nd")])
        .inc();
    registry.gauge("sam_mean_batch_size").set(4.0);
    let h = registry.histogram("sam_estimate_latency_seconds");
    h.record(Duration::from_micros(3));
    h.record(Duration::from_millis(2));

    let text = registry.render_prometheus();

    // Counter naming + TYPE lines.
    assert!(text.contains("# TYPE requests_total counter"), "{text}");
    assert!(text.contains("requests_total 3"), "{text}");
    assert!(text.contains("sam_batches_total 7"), "{text}");
    assert!(
        !text.contains("sam_batches_total_total"),
        "suffix must not double up: {text}"
    );

    // Label escaping: backslash, quote, newline.
    assert!(
        text.contains(r#"labelled_total{model="a\"b\\c\nd"} 1"#),
        "{text}"
    );

    // Gauge.
    assert!(text.contains("# TYPE sam_mean_batch_size gauge"), "{text}");
    assert!(text.contains("sam_mean_batch_size 4.0"), "{text}");

    // Histogram: cumulative buckets, +Inf, sum, count.
    assert!(
        text.contains("# TYPE sam_estimate_latency_seconds histogram"),
        "{text}"
    );
    assert!(
        text.contains("sam_estimate_latency_seconds_bucket{le=\"+Inf\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("sam_estimate_latency_seconds_count 2"),
        "{text}"
    );
    assert!(text.contains("sam_estimate_latency_seconds_sum"), "{text}");
    let bucket_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("sam_estimate_latency_seconds_bucket"))
        .collect();
    assert!(
        bucket_lines.len() >= 3,
        "expected several le buckets, got {bucket_lines:?}"
    );
    // Bucket counts are cumulative (monotone non-decreasing).
    let counts: Vec<u64> = bucket_lines
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
}

#[test]
fn json_rendering_is_valid_and_flat() {
    let registry = Registry::new();
    registry.counter("a_total").add(2);
    registry.gauge("g").set(0.5);
    registry.histogram("h").record(Duration::from_micros(10));
    let text = registry.render_json();
    let doc = serde_json::parse_value(&text).expect("registry JSON must parse");
    assert_eq!(doc.get("a_total").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.get("g").and_then(|v| v.as_f64()), Some(0.5));
    assert_eq!(
        doc.get("h")
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );
}

#[test]
fn span_nesting_depth_and_ordering() {
    let _guard = global_lock();
    let buffer = sam_obs::memory_sink();
    sam_obs::set_log_level(LogLevel::Info);

    {
        let _outer = span!("outer", run = 1);
        {
            let _inner = span!("inner");
        }
        {
            let _inner2 = span!("inner2");
        }
    }

    let lines = buffer.lock().unwrap().clone();
    reset_globals();

    // Completion order: inner, inner2, outer.
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(
        lines[0].contains("name=inner") && lines[0].contains("depth=1"),
        "{lines:?}"
    );
    assert!(
        lines[1].contains("name=inner2") && lines[1].contains("depth=1"),
        "{lines:?}"
    );
    assert!(
        lines[2].contains("name=outer") && lines[2].contains("depth=0"),
        "{lines:?}"
    );
    assert!(lines[2].contains("run=1"), "{lines:?}");
    assert!(lines[2].contains("dur_ms="), "{lines:?}");
}

#[test]
fn debug_level_emits_begin_lines_too() {
    let _guard = global_lock();
    let buffer = sam_obs::memory_sink();
    sam_obs::set_log_level(LogLevel::Debug);
    {
        let _s = span!("step");
    }
    let lines = buffer.lock().unwrap().clone();
    reset_globals();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].starts_with("event=begin name=step"), "{lines:?}");
    assert!(lines[1].starts_with("event=span name=step"), "{lines:?}");
}

#[test]
fn silent_spans_cost_nothing_and_emit_nothing() {
    let _guard = global_lock();
    reset_globals();
    assert!(!sam_obs::span_active());
    {
        let _s = span!("hot", i = 42);
    }
    assert_eq!(sam_obs::event_count(), 0);
}

#[test]
fn chrome_trace_is_valid_json_with_nested_spans_and_trace_ids() {
    let _guard = global_lock();
    reset_globals();
    sam_obs::enable_tracing();
    sam_obs::set_trace_id(Some(99));
    {
        let _outer = span!("generate", stage = "all");
        {
            let _inner = span!("sample", rows = 128);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    sam_obs::set_trace_id(None);
    let json = sam_obs::take_chrome_trace();
    reset_globals();

    let doc = serde_json::parse_value(&json).expect("chrome trace must be valid JSON");
    let events = doc.as_array().expect("trace is a JSON array");
    assert_eq!(events.len(), 2, "{json}");
    for e in events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("dur").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(|v| v.as_str()),
            Some("99")
        );
    }
    // Events complete inner-first; the outer span contains the inner one.
    let inner = &events[0];
    let outer = &events[1];
    assert_eq!(inner.get("name").and_then(|v| v.as_str()), Some("sample"));
    assert_eq!(outer.get("name").and_then(|v| v.as_str()), Some("generate"));
    let (its, idur) = (
        inner.get("ts").unwrap().as_u64().unwrap(),
        inner.get("dur").unwrap().as_u64().unwrap(),
    );
    let (ots, odur) = (
        outer.get("ts").unwrap().as_u64().unwrap(),
        outer.get("dur").unwrap().as_u64().unwrap(),
    );
    assert!(
        ots <= its && its + idur <= ots + odur + 1,
        "inner not nested in outer"
    );
}

#[test]
fn span_record_adds_fields_after_open() {
    let _guard = global_lock();
    let buffer = sam_obs::memory_sink();
    sam_obs::set_log_level(LogLevel::Info);
    {
        let mut s = span!("epoch", epoch = 2);
        s.record("loss", 0.125);
    }
    let lines = buffer.lock().unwrap().clone();
    reset_globals();
    assert!(
        lines[0].contains("epoch=2") && lines[0].contains("loss=0.125"),
        "{lines:?}"
    );
}

#[test]
fn help_and_type_emitted_for_every_family_including_histograms() {
    let registry = Registry::new();
    registry.describe("req", "Total requests\nserved (with \\ backslash)");
    registry.describe("temp", "Current temperature");
    registry.describe("lat_seconds", "Request latency");
    registry.counter("req").add(1);
    registry.gauge("temp").set(1.0);
    registry
        .histogram("lat_seconds")
        .record(Duration::from_micros(50));

    let text = registry.render_prometheus();

    // HELP precedes TYPE for each described family; help text is escaped.
    assert!(
        text.contains("# HELP req_total Total requests\\nserved (with \\\\ backslash)\n# TYPE req_total counter"),
        "{text}"
    );
    assert!(
        text.contains("# HELP temp Current temperature\n# TYPE temp gauge"),
        "{text}"
    );
    assert!(
        text.contains("# HELP lat_seconds Request latency\n# TYPE lat_seconds histogram"),
        "{text}"
    );
    // Histogram family headers appear exactly once.
    assert_eq!(text.matches("# TYPE lat_seconds histogram").count(), 1);
    assert_eq!(text.matches("# HELP lat_seconds").count(), 1);
}

#[test]
fn hostile_label_values_are_escaped_and_parseable() {
    let registry = Registry::new();
    let hostile = [
        ("backslashes", "C:\\temp\\x"),
        ("quotes", "say \"hi\" twice"),
        ("newlines", "line1\nline2\n"),
        ("mixed", "\\\"\n\\n\"\\"),
    ];
    for (k, v) in hostile {
        registry.counter_with("hostile_total", &[(k, v)]).inc();
    }
    let text = registry.render_prometheus();
    for line in text.lines().filter(|l| l.starts_with("hostile_total{")) {
        // Exposition lines must stay one line each and keep quotes balanced
        // after escaping (count unescaped quotes: every value is wrapped in
        // exactly one pair).
        let inner = line
            .strip_prefix("hostile_total{")
            .and_then(|l| l.rsplit_once("} "))
            .map(|(l, _)| l)
            .unwrap_or_else(|| panic!("malformed line {line:?}"));
        let mut unescaped_quotes = 0;
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    let e = chars.next().expect("dangling backslash");
                    assert!(
                        e == '\\' || e == '"' || e == 'n',
                        "bad escape \\{e} in {line:?}"
                    );
                }
                '"' => unescaped_quotes += 1,
                _ => {}
            }
        }
        assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes in {line:?}");
    }
    // Raw newline must never appear inside a sample line.
    assert_eq!(
        text.lines()
            .filter(|l| l.starts_with("hostile_total"))
            .count(),
        4,
        "{text}"
    );
}

#[test]
fn histogram_exemplars_link_buckets_to_trace_ids() {
    let registry = Registry::new();
    let (h, ex) = registry.histogram_with_exemplars("exlat_seconds");
    // A fast request and a slow one, with distinct trace ids.
    h.record_ns(1_000);
    ex.observe(1_000, 7);
    h.record_ns(40_000_000);
    ex.observe(40_000_000, 99);

    let text = registry.render_prometheus();
    let fast: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("# {trace_id=\"7\"}"))
        .collect();
    let slow: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("# {trace_id=\"99\"}"))
        .collect();
    assert_eq!(fast.len(), 1, "{text}");
    assert_eq!(slow.len(), 1, "{text}");
    // The slow exemplar sits on a larger-le bucket than the fast one.
    assert!(fast[0].starts_with("exlat_seconds_bucket{le="), "{text}");
    assert!(
        slow[0].contains(" 0.04"),
        "exemplar value in seconds: {text}"
    );
    // Re-registering returns the same handles.
    let (h2, ex2) = registry.histogram_with_exemplars("exlat_seconds");
    assert_eq!(h2.count(), 2);
    ex2.observe(1_500, 8);
    assert_eq!(
        ex.bucket(sam_metrics::LatencyHistogram::bucket_index(1_500)),
        Some((8, 1_500))
    );
}

#[test]
fn plain_histogram_has_no_exemplar_annotations() {
    let registry = Registry::new();
    registry.histogram("plain_seconds").record_ns(5_000);
    let text = registry.render_prometheus();
    assert!(!text.contains("# {"), "{text}");
}
