//! Always-on request flight recorder: a fixed-size, lock-free ring buffer
//! of recent request events, plus a small mutex-guarded slow-query log.
//!
//! Every served request records one [`FlightEvent`] — trace id, endpoint,
//! model version, batch size, cache disposition, latency, HTTP outcome —
//! into a [`FlightRecorder`]. The ring is sized at startup and never
//! allocates afterwards; writers claim a slot with one `fetch_add` and
//! store plain-old-data fields through per-slot atomics, so the record
//! path costs a handful of relaxed stores and never blocks. Readers
//! ([`FlightRecorder::recent`]) validate a per-slot sequence number before
//! and after reading (seqlock-style) and drop any slot a writer raced
//! them on, so a dump taken under load is a consistent sample of recent
//! traffic rather than a torn one.
//!
//! The recorder backs the serving tier's `GET /debug/flight?last=N`
//! endpoint and is dumped to stderr automatically when an inference
//! worker panics, so the requests leading up to a crash are preserved.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Which endpoint family a request hit. Stored as a compact tag in the
/// ring; rendered as a lowercase string in dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /estimate`.
    Estimate,
    /// `POST /generate`.
    Generate,
    /// `/jobs/*` status and listing.
    Jobs,
    /// `/jobs/{id}/export`.
    Export,
    /// `/models` listing and loading.
    Models,
    /// `/metrics`.
    Metrics,
    /// `/healthz`.
    Health,
    /// `/quality`.
    Quality,
    /// `/debug/*`.
    Debug,
    /// Anything else (including 404s).
    Other,
}

impl Endpoint {
    /// Stable lowercase name for dumps and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Estimate => "estimate",
            Endpoint::Generate => "generate",
            Endpoint::Jobs => "jobs",
            Endpoint::Export => "export",
            Endpoint::Models => "models",
            Endpoint::Metrics => "metrics",
            Endpoint::Health => "healthz",
            Endpoint::Quality => "quality",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            Endpoint::Estimate => 0,
            Endpoint::Generate => 1,
            Endpoint::Jobs => 2,
            Endpoint::Export => 3,
            Endpoint::Models => 4,
            Endpoint::Metrics => 5,
            Endpoint::Health => 6,
            Endpoint::Quality => 7,
            Endpoint::Debug => 8,
            Endpoint::Other => 9,
        }
    }

    fn from_u64(v: u64) -> Endpoint {
        match v {
            0 => Endpoint::Estimate,
            1 => Endpoint::Generate,
            2 => Endpoint::Jobs,
            3 => Endpoint::Export,
            4 => Endpoint::Models,
            5 => Endpoint::Metrics,
            6 => Endpoint::Health,
            7 => Endpoint::Quality,
            8 => Endpoint::Debug,
            _ => Endpoint::Other,
        }
    }
}

/// Cache disposition of an estimate request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The request does not go through the estimate cache.
    NotApplicable,
    /// Cache lookup missed; the request ran inference.
    Miss,
    /// Cache lookup hit; the request was answered without inference.
    Hit,
}

impl CacheOutcome {
    /// Stable lowercase name for dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::NotApplicable => "n/a",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            CacheOutcome::NotApplicable => 0,
            CacheOutcome::Miss => 1,
            CacheOutcome::Hit => 2,
        }
    }

    fn from_u64(v: u64) -> CacheOutcome {
        match v {
            1 => CacheOutcome::Miss,
            2 => CacheOutcome::Hit,
            _ => CacheOutcome::NotApplicable,
        }
    }
}

/// One recorded request, as read back out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global event index (monotonic since server start).
    pub seq: u64,
    /// Unix timestamp of the record call, in milliseconds.
    pub ts_ms: u64,
    /// Per-request trace id (matches the `trace_id` in responses and logs).
    pub trace_id: u64,
    /// Endpoint family the request hit.
    pub endpoint: Endpoint,
    /// Version of the model that served the request (0 when no model was
    /// involved).
    pub model_version: u64,
    /// Inference batch size the request rode in (0 when not batched).
    pub batch_size: u64,
    /// Estimate-cache disposition.
    pub cache: CacheOutcome,
    /// Wall-clock latency in nanoseconds.
    pub latency_ns: u64,
    /// HTTP status of the response.
    pub status: u16,
}

/// All-atomic slot. A writer publishing event `n` stores `seq = 2n + 1`
/// (write in progress), then the fields, then `seq = 2n + 2` (stable).
/// Readers accept a slot only when `seq` reads `2n + 2` both before and
/// after the field loads.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    /// Writer-exclusion flag: slots can alias when the ring wraps faster
    /// than one write completes; the loser drops its event instead of
    /// interleaving fields with the winner's.
    busy: AtomicU64,
    ts_ms: AtomicU64,
    trace_id: AtomicU64,
    endpoint: AtomicU64,
    model_version: AtomicU64,
    batch_size: AtomicU64,
    cache: AtomicU64,
    latency_ns: AtomicU64,
    status: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            ts_ms: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            endpoint: AtomicU64::new(0),
            model_version: AtomicU64::new(0),
            batch_size: AtomicU64::new(0),
            cache: AtomicU64::new(0),
            latency_ns: AtomicU64::new(0),
            status: AtomicU64::new(0),
        }
    }
}

/// Fixed-size lock-free ring buffer of recent [`FlightEvent`]s.
///
/// Writers never block and never allocate; the ring keeps the most recent
/// `capacity` events, overwriting the oldest. Reading is best-effort: a
/// slot being overwritten during a dump is skipped, never torn (every
/// field is a plain atomic, so a lost race yields a stale-but-valid value
/// that the sequence check then rejects).
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded since creation (may exceed capacity).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events dropped because the ring wrapped onto a slot another writer
    /// was still filling (only possible when the ring turns over faster
    /// than one ~100ns write — a sign the capacity is far too small).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one request event. Lock-free: one `fetch_add` to claim a
    /// slot plus a fixed number of atomic stores.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace_id: u64,
        endpoint: Endpoint,
        model_version: u64,
        batch_size: u64,
        cache: CacheOutcome,
        latency_ns: u64,
        status: u16,
    ) {
        let n = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Writer-writer exclusion: if an older writer is still filling this
        // slot (the ring wrapped within one write duration), drop the event
        // rather than interleave fields with the other writer's.
        if slot
            .busy
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Seqlock write: mark unstable, fence so the odd seq is visible
        // before any field store, publish fields, mark stable with Release.
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts_ms.store(unix_ms(), Ordering::Relaxed);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.endpoint.store(endpoint.to_u64(), Ordering::Relaxed);
        slot.model_version.store(model_version, Ordering::Relaxed);
        slot.batch_size.store(batch_size, Ordering::Relaxed);
        slot.cache.store(cache.to_u64(), Ordering::Relaxed);
        slot.latency_ns.store(latency_ns, Ordering::Relaxed);
        slot.status.store(status as u64, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
        slot.busy.store(0, Ordering::Release);
    }

    /// The most recent `last` events, oldest first. Slots a writer is
    /// concurrently overwriting are skipped.
    pub fn recent(&self, last: usize) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let window = (last as u64).min(self.slots.len() as u64).min(head);
        let mut out = Vec::with_capacity(window as usize);
        for n in (head - window)..head {
            let slot = &self.slots[(n % self.slots.len() as u64) as usize];
            let expect = 2 * n + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            let event = FlightEvent {
                seq: n,
                ts_ms: slot.ts_ms.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                endpoint: Endpoint::from_u64(slot.endpoint.load(Ordering::Relaxed)),
                model_version: slot.model_version.load(Ordering::Relaxed),
                batch_size: slot.batch_size.load(Ordering::Relaxed),
                cache: CacheOutcome::from_u64(slot.cache.load(Ordering::Relaxed)),
                latency_ns: slot.latency_ns.load(Ordering::Relaxed),
                status: slot.status.load(Ordering::Relaxed) as u16,
            };
            // Seqlock read validation: fence so the field loads above can't
            // drift past the re-check, then re-read seq — a writer that
            // raced us has already bumped it past `expect`.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == expect {
                out.push(event);
            }
        }
        out
    }

    /// Dump the most recent `last` events to stderr, one line each,
    /// prefixed with `reason`. Used on worker panic so the requests
    /// leading up to a crash survive in the logs.
    pub fn dump_stderr(&self, last: usize, reason: &str) {
        let events = self.recent(last);
        eprintln!("[flight] dump ({reason}): {} events", events.len());
        for e in events {
            eprintln!(
                "[flight] seq={} ts_ms={} trace_id={} endpoint={} version={} batch={} cache={} latency_ms={:.3} status={}",
                e.seq,
                e.ts_ms,
                e.trace_id,
                e.endpoint.as_str(),
                e.model_version,
                e.batch_size,
                e.cache.as_str(),
                e.latency_ns as f64 / 1e6,
                e.status,
            );
        }
    }
}

/// One slow request, kept with enough context to reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// Unix timestamp in milliseconds.
    pub ts_ms: u64,
    /// Trace id of the offending request.
    pub trace_id: u64,
    /// Wall-clock latency in milliseconds.
    pub latency_ms: f64,
    /// Model the request hit (empty when none).
    pub model: String,
    /// Request detail — the SQL text for estimates.
    pub detail: String,
}

/// Bounded log of the slowest-path requests (those above the server's
/// slow-query threshold). Writes are rare by construction, so a mutex is
/// fine here; the estimate hot path only takes it for requests that
/// already burned milliseconds.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A log keeping the most recent `capacity` slow requests (minimum 1).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Append one slow request, evicting the oldest beyond capacity.
    pub fn push(&self, entry: SlowEntry) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == self.capacity {
            entries.remove(0);
        }
        entries.push(entry);
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn record_n(rec: &FlightRecorder, n: u64) {
        for i in 0..n {
            rec.record(
                i,
                Endpoint::Estimate,
                1,
                4,
                CacheOutcome::Miss,
                1_000 * i,
                200,
            );
        }
    }

    #[test]
    fn empty_recorder_dumps_nothing() {
        let rec = FlightRecorder::new(8);
        assert!(rec.recent(10).is_empty());
        assert_eq!(rec.total(), 0);
    }

    #[test]
    fn recent_returns_newest_events_oldest_first() {
        let rec = FlightRecorder::new(4);
        record_n(&rec, 10);
        assert_eq!(rec.total(), 10);
        let events = rec.recent(3);
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(events[0].trace_id, 7);
        assert_eq!(events[2].latency_ns, 9_000);
    }

    #[test]
    fn window_is_clamped_to_capacity_and_total() {
        let rec = FlightRecorder::new(4);
        record_n(&rec, 2);
        assert_eq!(rec.recent(100).len(), 2);
        record_n(&rec, 10);
        assert_eq!(rec.recent(100).len(), 4);
    }

    #[test]
    fn round_trips_every_field() {
        let rec = FlightRecorder::new(2);
        rec.record(42, Endpoint::Quality, 7, 16, CacheOutcome::Hit, 12345, 503);
        let events = rec.recent(1);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.trace_id, 42);
        assert_eq!(e.endpoint, Endpoint::Quality);
        assert_eq!(e.model_version, 7);
        assert_eq!(e.batch_size, 16);
        assert_eq!(e.cache, CacheOutcome::Hit);
        assert_eq!(e.latency_ns, 12345);
        assert_eq!(e.status, 503);
        assert!(e.ts_ms > 0);
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear() {
        let rec = Arc::new(FlightRecorder::new(16));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        // Writers encode an invariant: trace_id == latency_ns.
                        let v = t * 1_000_000 + i;
                        rec.record(v, Endpoint::Estimate, t, 1, CacheOutcome::Miss, v, 200);
                    }
                });
            }
            for _ in 0..2 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..500 {
                        for e in rec.recent(16) {
                            // A torn read would break the writer invariant.
                            assert_eq!(e.trace_id, e.latency_ns, "torn slot read");
                        }
                    }
                });
            }
        });
        assert_eq!(rec.total(), 20_000);
    }

    #[test]
    fn slow_log_evicts_oldest() {
        let log = SlowLog::new(2);
        for i in 0..3u64 {
            log.push(SlowEntry {
                ts_ms: i,
                trace_id: i,
                latency_ms: i as f64,
                model: "m".to_string(),
                detail: format!("q{i}"),
            });
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].trace_id, 1);
        assert_eq!(entries[1].trace_id, 2);
    }
}
