//! Where span / log lines go, and how much of them.
//!
//! The sink is process-global and cheap to consult: the hot-path check
//! (is anything listening?) is one relaxed atomic load. Three sinks:
//! structured stderr lines (production CLI), silent (the default — the
//! library never writes anywhere unless asked), and an in-memory buffer
//! (tests assert on emitted lines).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Verbosity of the line sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Emit nothing.
    Silent = 0,
    /// Emit span-end lines (one line per completed span).
    Info = 1,
    /// Also emit span-begin lines.
    Debug = 2,
}

impl std::str::FromStr for LogLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<LogLevel, String> {
        match s {
            "silent" => Ok(LogLevel::Silent),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!("unknown log level {other:?} (silent|info|debug)")),
        }
    }
}

/// Destination for structured lines.
#[derive(Debug, Clone)]
pub enum Sink {
    /// Discard everything.
    Silent,
    /// One line per event on stderr.
    Stderr,
    /// Append lines to a shared buffer (for tests).
    Memory(Arc<Mutex<Vec<String>>>),
}

struct SinkState {
    level: AtomicU8,
    sink: Mutex<Sink>,
}

fn state() -> &'static SinkState {
    static STATE: OnceLock<SinkState> = OnceLock::new();
    STATE.get_or_init(|| SinkState {
        level: AtomicU8::new(LogLevel::Silent as u8),
        sink: Mutex::new(Sink::Silent),
    })
}

/// Set the global log level.
pub fn set_log_level(level: LogLevel) {
    state().level.store(level as u8, Ordering::Relaxed);
}

/// Current global log level.
pub fn log_level() -> LogLevel {
    match state().level.load(Ordering::Relaxed) {
        0 => LogLevel::Silent,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Replace the global sink.
pub fn set_sink(sink: Sink) {
    *state().sink.lock().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Install a fresh in-memory sink and return its buffer (test helper).
pub fn memory_sink() -> Arc<Mutex<Vec<String>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    set_sink(Sink::Memory(Arc::clone(&buffer)));
    buffer
}

/// Emit one line if `level` is enabled.
pub fn emit(level: LogLevel, line: &str) {
    if log_level() < level {
        return;
    }
    match &*state().sink.lock().unwrap_or_else(|e| e.into_inner()) {
        Sink::Silent => {}
        Sink::Stderr => eprintln!("{line}"),
        Sink::Memory(buffer) => buffer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string()),
    }
}
