//! Hierarchical wall-clock spans.
//!
//! A span measures one named region of work. Spans nest per thread (a
//! thread-local stack tracks depth and parentage), carry `key = value`
//! fields, and on completion fan out to the configured sink (structured
//! line) and, when tracing is enabled, to the Chrome trace collector.
//!
//! Use the [`crate::span!`] macro rather than constructing spans directly:
//! it skips *all* work — including formatting field values — when nothing
//! is listening, which is what keeps instrumented hot loops within noise
//! of uninstrumented ones.

use crate::chrome::{self, TraceEvent};
use crate::sink::{self, LogLevel};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    /// Names of the open spans on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Trace id attached to this thread's span output (serve request ids).
    static TRACE_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Attach (or clear) a trace id for all spans subsequently opened on this
/// thread. The serving layer sets this per request / job so span lines and
/// trace events can be correlated with HTTP responses.
pub fn set_trace_id(id: Option<u64>) {
    TRACE_ID.with(|t| t.set(id));
}

/// The trace id currently attached to this thread, if any.
pub fn current_trace_id() -> Option<u64> {
    TRACE_ID.with(|t| t.get())
}

/// True when opening a span would record or emit anything. The `span!`
/// macro consults this before evaluating its field expressions.
#[inline]
pub fn span_active() -> bool {
    chrome::tracing_enabled() || sink::log_level() > LogLevel::Silent
}

/// An open span; completes (and reports) on drop. `!Send` by construction —
/// spans belong to the thread that opened them.
pub struct Span {
    /// `None` for inert spans (nothing listening at creation time).
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct LiveSpan {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    depth: usize,
}

impl Span {
    /// Open a span. Prefer the [`crate::span!`] macro, which avoids
    /// evaluating `fields` when inactive.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, String)>) -> Span {
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        if sink::log_level() >= LogLevel::Debug {
            sink::emit(
                LogLevel::Debug,
                &format_line("begin", name, depth, &fields, None),
            );
        }
        Span {
            live: Some(LiveSpan {
                name,
                fields,
                start: Instant::now(),
                depth,
            }),
            _not_send: PhantomData,
        }
    }

    /// A span that records nothing (the `span!` macro's inactive branch).
    pub fn inert() -> Span {
        Span {
            live: None,
            _not_send: PhantomData,
        }
    }

    /// Add a field after opening (e.g. a result computed inside the span).
    pub fn record(&mut self, key: &'static str, value: impl ToString) {
        if let Some(live) = &mut self.live {
            live.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if sink::log_level() >= LogLevel::Info {
            let dur_ms = elapsed.as_secs_f64() * 1e3;
            sink::emit(
                LogLevel::Info,
                &format_line("span", live.name, live.depth, &live.fields, Some(dur_ms)),
            );
        }
        if chrome::tracing_enabled() {
            let end_us = chrome::trace_epoch().elapsed().as_micros() as u64;
            let dur_us = elapsed.as_micros() as u64;
            let mut args: Vec<(String, String)> = live
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            if let Some(id) = current_trace_id() {
                args.push(("trace_id".to_string(), id.to_string()));
            }
            chrome::record(TraceEvent {
                name: live.name.to_string(),
                ts_us: end_us.saturating_sub(dur_us),
                dur_us,
                tid: chrome::current_tid(),
                args,
            });
        }
    }
}

/// `event=span name=epoch depth=1 dur_ms=3.214 trace_id=7 epoch=3`
fn format_line(
    event: &str,
    name: &str,
    depth: usize,
    fields: &[(&'static str, String)],
    dur_ms: Option<f64>,
) -> String {
    let mut line = format!("event={event} name={name} depth={depth}");
    if let Some(ms) = dur_ms {
        let _ = write!(line, " dur_ms={ms:.3}");
    }
    if let Some(id) = current_trace_id() {
        let _ = write!(line, " trace_id={id}");
    }
    for (k, v) in fields {
        let _ = write!(line, " {k}={v}");
    }
    line
}

/// Open a hierarchical span: `let _span = span!("epoch", epoch = 3);`
///
/// Field values are only formatted when a sink or the trace collector is
/// active, so an idle `span!` costs two relaxed atomic loads and a branch.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::span_active() {
            $crate::Span::enter(
                $name,
                vec![$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
            )
        } else {
            $crate::Span::inert()
        }
    };
}
