//! Chrome trace-event export (`chrome://tracing` / Perfetto loadable).
//!
//! When tracing is enabled, every completed span becomes one complete
//! (`"ph":"X"`) trace event with microsecond timestamps relative to the
//! first event of the process, a per-thread track id, and the span's
//! fields as `args`. The collector is global and append-only behind a
//! mutex — span *completion* is rare relative to the work inside spans, so
//! the lock is not on any hot path (and the enabled check is one relaxed
//! atomic load).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One complete trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small integer per OS thread (Chrome's `tid`).
    pub tid: u64,
    /// Span fields, rendered into `args`.
    pub args: Vec<(String, String)>,
}

struct Collector {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    next_tid: AtomicU64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        events: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(1),
    })
}

/// The instant all trace timestamps are measured from (first use wins).
pub fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Start collecting trace events.
pub fn enable_tracing() {
    trace_epoch(); // pin the epoch before the first span
    collector().enabled.store(true, Ordering::Relaxed);
}

/// Stop collecting (already-collected events are kept until drained).
pub fn disable_tracing() {
    collector().enabled.store(false, Ordering::Relaxed);
}

/// Whether spans should record trace events.
#[inline]
pub fn tracing_enabled() -> bool {
    collector().enabled.load(Ordering::Relaxed)
}

/// Small integer identifying the calling thread in trace output.
pub fn current_tid() -> u64 {
    thread_local! {
        static TID: u64 = collector().next_tid.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Record one completed span (no-op unless tracing is enabled).
pub fn record(event: TraceEvent) {
    let c = collector();
    if !c.enabled.load(Ordering::Relaxed) {
        return;
    }
    c.events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(event);
}

/// Number of collected events (test / CLI helper).
pub fn event_count() -> usize {
    collector()
        .events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len()
}

/// Render all collected events as Chrome trace JSON **without** draining
/// them (so a long-running server can export periodically).
pub fn chrome_trace_json() -> String {
    let events = collector().events.lock().unwrap_or_else(|e| e.into_inner());
    render(&events)
}

/// Drain collected events and render them as Chrome trace JSON.
pub fn take_chrome_trace() -> String {
    let mut events = collector().events.lock().unwrap_or_else(|e| e.into_inner());
    let drained: Vec<TraceEvent> = events.drain(..).collect();
    drop(events);
    render(&drained)
}

/// Write the current trace (undrained) to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Chrome trace "JSON array format": a plain array of complete events.
fn render(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"sam\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            json_string(&e.name),
            e.ts_us,
            e.dur_us,
            e.tid
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
