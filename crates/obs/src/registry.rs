//! Named metrics registry with JSON and Prometheus text exposition.
//!
//! Counters, gauges, and histograms are registered lazily by name (plus
//! optional labels) from any crate; the first caller creates the metric,
//! later callers get the same handle. Handles are `Arc`s over atomics, so
//! the hot path never touches the registry's lock — bumping a counter is
//! one relaxed `fetch_add`.
//!
//! Two registries exist in practice: the process-wide [`Registry::global`]
//! (training / inference / pipeline instrumentation) and per-server
//! instances owned by `sam-serve`, so two servers in one process never mix
//! counts. Both render through the same code paths: [`Registry::snapshot`]
//! is the single source every renderer ([`Registry::render_json`],
//! [`Registry::render_prometheus`]) reads from.

use sam_metrics::LatencyHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic, so sets and
/// reads are lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Identity of a metric: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Per-bucket exemplars for a latency histogram: the most recent
/// `(trace_id, latency)` observed in each log2 bucket, so a slow bucket
/// in `/metrics` links to a concrete request that can be looked up in the
/// flight recorder. Stores are relaxed single-word writes — the hot path
/// pays two stores, no RMW.
#[derive(Debug)]
pub struct Exemplars {
    /// Parallel to [`LatencyHistogram`]'s buckets. `ns` holds the value
    /// plus one so zero means "no exemplar yet".
    trace_ids: Vec<AtomicU64>,
    ns_plus_one: Vec<AtomicU64>,
}

impl Default for Exemplars {
    fn default() -> Self {
        Self::new()
    }
}

impl Exemplars {
    /// An empty exemplar set (one slot per histogram bucket).
    pub fn new() -> Exemplars {
        let n = LatencyHistogram::num_buckets();
        Exemplars {
            trace_ids: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ns_plus_one: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record `trace_id` as the latest exemplar for the bucket `ns` falls
    /// into. Last writer wins; the two fields may briefly disagree under
    /// contention, but both always refer to real observations in the same
    /// bucket, which is all an exemplar promises.
    pub fn observe(&self, ns: u64, trace_id: u64) {
        let b = LatencyHistogram::bucket_index(ns);
        self.ns_plus_one[b].store(ns.saturating_add(1), Ordering::Relaxed);
        self.trace_ids[b].store(trace_id, Ordering::Relaxed);
    }

    /// Latest `(trace_id, latency_ns)` exemplar for bucket `b`, if any.
    pub fn bucket(&self, b: usize) -> Option<(u64, u64)> {
        let ns = self.ns_plus_one.get(b)?.load(Ordering::Relaxed);
        if ns == 0 {
            return None;
        }
        Some((self.trace_ids[b].load(Ordering::Relaxed), ns - 1))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>, Option<Arc<Exemplars>>),
}

/// Point-in-time value of one registered metric.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary for exposition.
    Histogram(HistogramSample),
}

/// Snapshot of a histogram for exposition: exact count/sum plus cumulative
/// log2 buckets (only up to the last non-empty bucket, then `+Inf`).
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Number of recorded durations.
    pub count: u64,
    /// Exact sum in seconds.
    pub sum_seconds: f64,
    /// `(upper_bound_seconds, cumulative_count)`, ascending; excludes `+Inf`
    /// (whose cumulative count is `count`).
    pub buckets: Vec<(f64, u64)>,
    /// Exemplars parallel to `buckets`: `(trace_id, value_seconds)` of the
    /// latest observation in that bucket, when the histogram was registered
    /// with exemplar support.
    pub exemplars: Vec<Option<(u64, f64)>>,
}

/// One row of [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name as registered.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: SampleValue,
}

/// A set of named metrics. Creation is lock-guarded; access through the
/// returned handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    /// Optional `# HELP` text per registered metric name.
    help: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry used by library instrumentation.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create a counter. Counter names conventionally end in
    /// `_total`; the Prometheus renderer appends the suffix if missing.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create a labelled counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create a labelled gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create a latency histogram (log2-bucketed, nanosecond domain;
    /// see [`sam_metrics::LatencyHistogram`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let key = MetricKey::new(name, &[]);
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new()), None))
        {
            Metric::Histogram(h, _) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create a latency histogram with per-bucket exemplar slots.
    /// The caller records latencies on the histogram and trace ids on the
    /// [`Exemplars`]; the Prometheus renderer then annotates each bucket
    /// with the latest trace id that landed in it (OpenMetrics exemplar
    /// syntax), so a slow bucket points at a concrete request.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a non-histogram type.
    pub fn histogram_with_exemplars(&self, name: &str) -> (Arc<LatencyHistogram>, Arc<Exemplars>) {
        let key = MetricKey::new(name, &[]);
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key).or_insert_with(|| {
            Metric::Histogram(
                Arc::new(LatencyHistogram::new()),
                Some(Arc::new(Exemplars::new())),
            )
        }) {
            Metric::Histogram(h, ex) => {
                let ex = ex.get_or_insert_with(|| Arc::new(Exemplars::new()));
                (Arc::clone(h), Arc::clone(ex))
            }
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Attach `# HELP` text to a metric name. Rendered once per family in
    /// the Prometheus exposition; idempotent (last call wins).
    pub fn describe(&self, name: &str, help: &str) {
        let mut map = self.help.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), help.to_string());
    }

    /// Point-in-time values of every registered metric, name-sorted. The
    /// single source that every rendering format reads from.
    pub fn snapshot(&self) -> Vec<Sample> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(key, metric)| Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h, ex) => {
                        SampleValue::Histogram(histogram_sample(h, ex.as_deref()))
                    }
                },
            })
            .collect()
    }

    /// Flat JSON object rendering: `{"name": value, ...}`. Histograms render
    /// as nested objects with count / sum / percentiles. Labelled metrics
    /// render under `name{k=v}` keys.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, sample) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut key = sample.name.clone();
            if !sample.labels.is_empty() {
                key.push('{');
                for (j, (k, v)) in sample.labels.iter().enumerate() {
                    if j > 0 {
                        key.push(',');
                    }
                    let _ = write!(key, "{k}={v}");
                }
                key.push('}');
            }
            let _ = write!(out, "{}:", json_string(&key));
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, "{}", json_f64(*v));
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum_seconds\":{}}}",
                        h.count,
                        json_f64(h.sum_seconds)
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition (format version 0.0.4).
    ///
    /// * counters get a `_total` suffix when the registered name lacks one;
    /// * histograms expose cumulative `_bucket{le="…"}` series in seconds,
    ///   plus `_sum` and `_count`, with OpenMetrics-style ` # {trace_id=…}`
    ///   exemplar annotations on buckets when registered via
    ///   [`Registry::histogram_with_exemplars`];
    /// * every family gets a `# TYPE` line and, when [`Registry::describe`]d,
    ///   a `# HELP` line (help text escaped per the spec);
    /// * label values are escaped per the spec (`\\`, `\"`, `\n`).
    pub fn render_prometheus(&self) -> String {
        let help = self.help.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut out = String::new();
        let mut last_name = String::new();
        let mut header = |out: &mut String, raw: &str, name: &str, kind: &str| {
            if name != last_name {
                if let Some(h) = help.get(raw) {
                    let _ = writeln!(out, "# HELP {name} {}", escape_help(h));
                }
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = name.to_string();
            }
        };
        for sample in self.snapshot() {
            match &sample.value {
                SampleValue::Counter(v) => {
                    let name = counter_name(&sample.name);
                    header(&mut out, &sample.name, &name, "counter");
                    let _ = writeln!(out, "{name}{} {v}", label_block(&sample.labels));
                }
                SampleValue::Gauge(v) => {
                    let name = sanitize_name(&sample.name);
                    header(&mut out, &sample.name, &name, "gauge");
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(&sample.labels),
                        prom_f64(*v)
                    );
                }
                SampleValue::Histogram(h) => {
                    let name = sanitize_name(&sample.name);
                    header(&mut out, &sample.name, &name, "histogram");
                    let mut cumulative = 0;
                    for (b, (le, c)) in h.buckets.iter().enumerate() {
                        cumulative = *c;
                        let _ = write!(out, "{name}_bucket{{le=\"{}\"}} {c}", prom_f64(*le));
                        if let Some(Some((trace_id, seconds))) = h.exemplars.get(b) {
                            let _ = write!(out, " # {{trace_id=\"{trace_id}\"}} {seconds}");
                        }
                        out.push('\n');
                    }
                    debug_assert!(cumulative <= h.count);
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", prom_f64(h.sum_seconds));
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }
}

fn histogram_sample(h: &LatencyHistogram, ex: Option<&Exemplars>) -> HistogramSample {
    let counts = h.bucket_counts();
    let last_nonzero = counts.iter().rposition(|&c| c > 0);
    let mut buckets = Vec::new();
    let mut exemplars = Vec::new();
    let mut cumulative = 0u64;
    if let Some(last) = last_nonzero {
        for (b, &c) in counts.iter().enumerate().take(last + 1) {
            cumulative += c;
            let le = LatencyHistogram::bucket_bounds_ns(b) as f64 / 1e9;
            buckets.push((le, cumulative));
            exemplars.push(
                ex.and_then(|ex| ex.bucket(b))
                    .map(|(trace_id, ns)| (trace_id, ns as f64 / 1e9)),
            );
        }
    }
    HistogramSample {
        count: h.count(),
        sum_seconds: h.sum_ns() as f64 / 1e9,
        buckets,
        exemplars,
    }
}

/// Counters must end in `_total` in the exposition; append when missing.
fn counter_name(name: &str) -> String {
    let name = sanitize_name(name);
    if name.ends_with("_total") {
        name
    } else {
        format!("{name}_total")
    }
}

/// Replace characters outside `[a-zA-Z0-9_:]` with `_` (Prometheus metric
/// name charset).
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// `{k="v",…}` with label-value escaping, or `""` when unlabelled.
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escape `# HELP` text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a Prometheus label value: backslash, double quote, newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus float formatting (plain decimal, no exponent surprises for
/// the values we emit).
fn prom_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// JSON-safe float (JSON has no NaN/Inf; clamp to null-ish 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string quoting.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
