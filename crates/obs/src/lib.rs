//! # sam-obs — unified observability for the SAM reproduction
//!
//! One layer, three concerns, zero external dependencies:
//!
//! * **Metrics registry** ([`Registry`]) — named counters, gauges, and
//!   latency histograms (reusing [`sam_metrics::LatencyHistogram`]),
//!   registered lazily from any crate, rendered as flat JSON or Prometheus
//!   text exposition. Library instrumentation uses the process-wide
//!   [`Registry::global`]; `sam-serve` owns one registry per server so
//!   multiple servers in one process never mix counts.
//! * **Hierarchical spans** ([`span!`]) — wall-clock timing with
//!   thread-local nesting, `key = value` fields, per-thread trace ids, and
//!   a configurable line sink (stderr / silent / in-memory). The inactive
//!   path is two relaxed atomic loads, so instrumentation can live inside
//!   hot loops.
//! * **Flight recorder** ([`FlightRecorder`]) — an always-on, lock-free
//!   ring buffer of recent request events (trace id, endpoint, latency,
//!   outcome), dumped on demand or on worker panic, with per-bucket
//!   latency [`Exemplars`] linking slow histogram buckets to trace ids.
//! * **Chrome trace export** — when tracing is enabled every completed
//!   span becomes a `chrome://tracing`-loadable complete event;
//!   [`write_chrome_trace`] dumps the profile, which is how per-stage cost
//!   questions ("where does a generate run spend its time?") get answered.
//!
//! ```
//! let registry = sam_obs::Registry::global();
//! let batches = registry.counter("sam_batches_total");
//! batches.inc();
//!
//! let _span = sam_obs::span!("epoch", epoch = 3);
//! // ... work ...
//! drop(_span); // records duration to sink + trace collector
//! assert!(registry.render_prometheus().contains("sam_batches_total"));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod registry;
pub mod sink;
pub mod span;

pub use chrome::{
    chrome_trace_json, disable_tracing, enable_tracing, event_count, take_chrome_trace,
    tracing_enabled, write_chrome_trace, TraceEvent,
};
pub use flight::{CacheOutcome, Endpoint, FlightEvent, FlightRecorder, SlowEntry, SlowLog};
pub use registry::{Counter, Exemplars, Gauge, HistogramSample, Registry, Sample, SampleValue};
pub use sink::{log_level, memory_sink, set_log_level, set_sink, LogLevel, Sink};
pub use span::{current_trace_id, set_trace_id, span_active, Span};

use std::sync::Arc;

/// Get-or-create a counter on the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// Get-or-create a gauge on the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// Get-or-create a histogram on the global registry.
pub fn histogram(name: &str) -> Arc<sam_metrics::LatencyHistogram> {
    Registry::global().histogram(name)
}
