//! Router integration tests against *external* in-process `sam-serve`
//! workers (`WorkerSpec::external_addr`): routing by model, fan-out merges,
//! degradation to `503` + `Retry-After` while a shard is down or draining,
//! and the surviving shard answering throughout. The subprocess half of the
//! story (spawn, restart, crash points, bit-for-bit resume) lives in the
//! root `tests/router_failover.rs`.

use sam_core::{Sam, SamConfig, TrainedSam};
use sam_query::eval::label_workload;
use sam_query::WorkloadGenerator;
use sam_router::router::{Router, RouterConfig};
use sam_router::worker::{ModelSpec, WorkerHealth, WorkerSpec};
use sam_serve::{ServeConfig, Server};
use sam_storage::{paper_example, DatabaseStats};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn train_model(seed: u64) -> TrainedSam {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, seed);
    let workload = label_workload(&db, gen.multi_workload(16, 2)).unwrap();
    let mut config = SamConfig::default();
    config.model.hidden = vec![8];
    config.model.seed = seed;
    config.train.epochs = 2;
    config.train.batch_size = 8;
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

fn start_worker(model: &str, seed: u64) -> Server {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start worker server");
    server.registry().insert(model, train_model(seed));
    server
}

/// One-shot HTTP exchange returning `(status, headers, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status token")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

fn wait_all_healthy(router: &Router, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let workers = router.workers();
        if workers
            .iter()
            .all(|w| matches!(w.health(), WorkerHealth::Healthy))
        {
            return;
        }
        assert!(
            Instant::now() < until,
            "workers never became healthy: {:?}",
            workers
                .iter()
                .map(|w| (w.slot, w.health().label()))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn wait_unhealthy(router: &Router, slot: usize, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let health = router
            .workers()
            .into_iter()
            .find(|w| w.slot == slot)
            .expect("slot exists")
            .health();
        if !matches!(health, WorkerHealth::Healthy) {
            return;
        }
        assert!(Instant::now() < until, "shard {slot} never went unhealthy");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn pinned(name: &str, slot: usize) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        path: "external-worker-owns-the-checkpoint".to_string(),
        data: None,
        pin: Some(slot),
    }
}

#[test]
fn routes_fan_out_and_degrade_with_retry_after() {
    let alpha = start_worker("alpha", 11);
    let beta = start_worker("beta", 23);

    let router = Router::start(RouterConfig {
        models: vec![pinned("alpha", 0), pinned("beta", 1)],
        specs: vec![
            WorkerSpec {
                external_addr: Some(alpha.addr().to_string()),
                ..WorkerSpec::default()
            },
            WorkerSpec {
                external_addr: Some(beta.addr().to_string()),
                ..WorkerSpec::default()
            },
        ],
        health_interval_ms: 50,
        retry_wait_ms: 300,
        ..RouterConfig::default()
    })
    .expect("start router");
    let addr = router.addr().to_string();
    wait_all_healthy(&router, Duration::from_secs(10));

    // Pass-through by model: each estimate lands on its owning shard.
    for model in ["alpha", "beta"] {
        let body = format!(
            "{{\"model\":\"{model}\",\"sql\":\"SELECT COUNT(*) FROM A\",\"samples\":32,\"seed\":7}}"
        );
        let (status, _, payload) = http(&addr, "POST", "/estimate", &body);
        assert_eq!(status, 200, "estimate {model}: {payload}");
        let doc = serde_json::parse_value(&payload).unwrap();
        assert!(doc.get("estimate").is_some(), "no estimate in {payload}");
    }

    // GET /models fans out and annotates each entry with its shard.
    let (status, _, payload) = http(&addr, "GET", "/models", "");
    assert_eq!(status, 200);
    let doc = serde_json::parse_value(&payload).unwrap();
    let models = doc.get("models").and_then(Value::as_array).unwrap();
    let mut seen: Vec<(String, u64)> = models
        .iter()
        .map(|m| {
            (
                m.get("name").and_then(Value::as_str).unwrap().to_string(),
                m.get("shard").and_then(Value::as_u64).unwrap(),
            )
        })
        .collect();
    seen.sort();
    assert_eq!(
        seen,
        vec![("alpha".to_string(), 0), ("beta".to_string(), 1)]
    );

    // /metrics JSON is the numeric merge of every shard, plus router keys.
    let (status, _, payload) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = serde_json::parse_value(&payload).unwrap();
    assert!(doc.get("router").is_some(), "no router section: {payload}");
    assert_eq!(doc.get("shards").and_then(Value::as_u64), Some(2));
    // Summed counters come back as floats (numeric merge is f64-based).
    let estimates = doc
        .get("estimates_ok")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(
        estimates >= 2.0,
        "merged estimates_ok = {estimates}: {payload}"
    );

    // The router's own buildinfo names its role.
    let (status, _, payload) = http(&addr, "GET", "/debug/buildinfo", "");
    assert_eq!(status, 200);
    let doc = serde_json::parse_value(&payload).unwrap();
    assert_eq!(doc.get("role").and_then(Value::as_str), Some("router"));

    // Unknown models are a routing miss, not a proxied error.
    let (status, _, _) = http(
        &addr,
        "POST",
        "/estimate",
        "{\"model\":\"ghost\",\"sql\":\"SELECT COUNT(*) FROM A\"}",
    );
    assert_eq!(status, 404);

    // A *draining* shard (serve-side quiesce) rejects new generate work
    // with 503 + Retry-After, relayed through the router unchanged.
    let (status, _, _) = http(&alpha.addr().to_string(), "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    let (status, head, _) = http(
        &addr,
        "POST",
        "/generate",
        "{\"model\":\"alpha\",\"seed\":1}",
    );
    assert_eq!(status, 503, "draining shard must refuse generate");
    assert!(
        head.to_ascii_lowercase().contains("retry-after:"),
        "503 without Retry-After:\n{head}"
    );
    let (status, _, _) = http(&alpha.addr().to_string(), "POST", "/admin/resume", "");
    assert_eq!(status, 200);

    // Kill shard 1 outright (external worker: the router detects it but
    // never restarts it). Non-idempotent requests for beta fail fast with
    // 503 + Retry-After; alpha keeps answering 200 throughout.
    let unavailable_before = router.metrics().unavailable.get();
    beta.shutdown();
    wait_unhealthy(&router, 1, Duration::from_secs(10));
    let (status, head, _) = http(
        &addr,
        "POST",
        "/generate",
        "{\"model\":\"beta\",\"seed\":1}",
    );
    assert_eq!(status, 503, "dead shard must answer 503");
    assert!(
        head.to_ascii_lowercase().contains("retry-after:"),
        "503 without Retry-After:\n{head}"
    );
    assert!(router.metrics().unavailable.get() > unavailable_before);

    let (status, _, payload) = http(
        &addr,
        "POST",
        "/estimate",
        "{\"model\":\"alpha\",\"sql\":\"SELECT COUNT(*) FROM A\",\"samples\":16,\"seed\":3}",
    );
    assert_eq!(status, 200, "surviving shard must keep serving: {payload}");

    router.shutdown();
    alpha.shutdown();
}
