//! Consistent-hash ring mapping model names to worker slots.
//!
//! Each slot contributes [`VNODES`] virtual points (FNV-1a of
//! `"slot-{slot}/{vnode}"`) on a `u64` ring; a key is owned by the first
//! point clockwise from its own hash. Virtual nodes smooth the partition so
//! a pool of N workers each owns roughly 1/N of the namespace, and adding
//! or removing a slot only moves the keys whose ownership actually changes
//! — everything else keeps its worker (and that worker's warm caches and
//! job store).

use std::collections::{BTreeMap, BTreeSet};

/// Virtual points per slot. 64 keeps the ownership spread within a few
/// percent of uniform for small pools while the ring stays tiny.
pub const VNODES: usize = 64;

/// FNV-1a, the same dependency-free 64-bit hash used elsewhere in the
/// workspace. Stability matters more than quality here: the ring must hash
/// identically across router restarts and across versions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(hash)
}

/// Finalizer (splitmix64's) on top of FNV: raw FNV of short, similar
/// strings clusters in the upper bits, which skews ring ownership badly —
/// the avalanche pass restores a near-uniform spread.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The ring: an ordered map of virtual points to slot indices, rebuilt
/// deterministically from the slot set on every membership change.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    slots: BTreeSet<usize>,
    points: BTreeMap<u64, usize>,
}

impl HashRing {
    /// An empty ring ([`slot_for`](HashRing::slot_for) answers `None`).
    pub fn new() -> HashRing {
        HashRing::default()
    }

    /// Add a slot (no-op if present) and rebuild the ring.
    pub fn add_slot(&mut self, slot: usize) {
        if self.slots.insert(slot) {
            self.rebuild();
        }
    }

    /// Remove a slot (no-op if absent) and rebuild the ring.
    pub fn remove_slot(&mut self, slot: usize) {
        if self.slots.remove(&slot) {
            self.rebuild();
        }
    }

    /// Whether `slot` is a member.
    pub fn contains(&self, slot: usize) -> bool {
        self.slots.contains(&slot)
    }

    /// Member slots in ascending order.
    pub fn slots(&self) -> Vec<usize> {
        self.slots.iter().copied().collect()
    }

    /// True when no slot is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot owning `key`: first virtual point clockwise from the key's
    /// hash, wrapping at the top of the `u64` space. `None` on an empty
    /// ring.
    pub fn slot_for(&self, key: &str) -> Option<usize> {
        let hash = fnv1a(key.as_bytes());
        self.points
            .range(hash..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, slot)| *slot)
    }

    /// Ownership preview: where `key` would land if `slot` joined. Used to
    /// compute the moved-model set of a rebalance before mutating the ring.
    pub fn slot_for_with(&self, key: &str, extra_slot: usize) -> Option<usize> {
        let mut preview = self.clone();
        preview.add_slot(extra_slot);
        preview.slot_for(key)
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for &slot in &self.slots {
            for vnode in 0..VNODES {
                let point = fnv1a(format!("slot-{slot}/{vnode}").as_bytes());
                // u64 collisions across a few hundred points are
                // vanishingly rare; lowest slot wins deterministically if
                // one ever happens.
                self.points.entry(point).or_insert(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("model-{i}")).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new();
        assert!(ring.is_empty());
        assert_eq!(ring.slot_for("m"), None);
    }

    #[test]
    fn single_slot_owns_everything() {
        let mut ring = HashRing::new();
        ring.add_slot(3);
        for key in keys(50) {
            assert_eq!(ring.slot_for(&key), Some(3));
        }
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let mut a = HashRing::new();
        let mut b = HashRing::new();
        for slot in 0..4 {
            a.add_slot(slot);
            b.add_slot(slot);
        }
        for key in keys(200) {
            let owner = a.slot_for(&key).unwrap();
            assert_eq!(Some(owner), b.slot_for(&key));
            assert!(owner < 4);
        }
    }

    #[test]
    fn virtual_nodes_spread_ownership() {
        let mut ring = HashRing::new();
        for slot in 0..4 {
            ring.add_slot(slot);
        }
        let mut counts = [0usize; 4];
        for key in keys(1000) {
            counts[ring.slot_for(&key).unwrap()] += 1;
        }
        for (slot, &count) in counts.iter().enumerate() {
            assert!(
                count > 100,
                "slot {slot} owns only {count}/1000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn join_moves_only_keys_the_new_slot_takes() {
        let mut ring = HashRing::new();
        for slot in 0..3 {
            ring.add_slot(slot);
        }
        let before: Vec<(String, usize)> = keys(500)
            .into_iter()
            .map(|k| {
                let owner = ring.slot_for(&k).unwrap();
                (k, owner)
            })
            .collect();
        ring.add_slot(3);
        let mut moved = 0;
        for (key, old_owner) in &before {
            let new_owner = ring.slot_for(key).unwrap();
            if new_owner != *old_owner {
                assert_eq!(new_owner, 3, "a join may only move keys TO the joiner");
                moved += 1;
            }
        }
        assert!(moved > 0, "the joiner took nothing — vacuous rebalance");
        assert!(moved < 300, "a single join moved most of the namespace");
    }

    #[test]
    fn leave_moves_only_the_departed_slots_keys() {
        let mut ring = HashRing::new();
        for slot in 0..4 {
            ring.add_slot(slot);
        }
        let before: Vec<(String, usize)> = keys(500)
            .into_iter()
            .map(|k| {
                let owner = ring.slot_for(&k).unwrap();
                (k, owner)
            })
            .collect();
        ring.remove_slot(2);
        for (key, old_owner) in &before {
            let new_owner = ring.slot_for(key).unwrap();
            assert_ne!(new_owner, 2);
            if *old_owner != 2 {
                assert_eq!(
                    new_owner, *old_owner,
                    "a leave may only move the departed slot's keys"
                );
            }
        }
    }

    #[test]
    fn preview_matches_actual_join() {
        let mut ring = HashRing::new();
        ring.add_slot(0);
        ring.add_slot(1);
        let previews: Vec<(String, Option<usize>)> = keys(100)
            .into_iter()
            .map(|k| {
                let p = ring.slot_for_with(&k, 2);
                (k, p)
            })
            .collect();
        ring.add_slot(2);
        for (key, preview) in previews {
            assert_eq!(preview, ring.slot_for(&key));
        }
    }
}
