//! Upstream HTTP client: keep-alive connection pooling, buffered
//! request/response exchange for fan-out and control traffic, and a
//! streaming relay for large bodies (CSV exports) that must not be
//! buffered in router memory.
//!
//! Retry safety is framed here: [`ConnPool::exchange`] buffers the whole
//! upstream response before the router writes a byte to the client, so a
//! failed exchange is always retryable. [`relay`] streams — it may only be
//! retried while the upstream *head* has not yet been forwarded, which it
//! signals by failing before any client write.

use crate::worker::WorkerHealth;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Largest buffered upstream response body (64 MiB). Fan-out targets
/// (`/metrics`, `/models`, job status) are far smaller; anything bigger
/// must go through [`relay`].
pub const MAX_BUFFERED_RESPONSE: usize = 64 << 20;

/// Idle sockets kept per worker.
const POOL_CAPACITY: usize = 8;

/// A fully buffered upstream response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Upstream status code.
    pub status: u16,
    /// Response headers in wire order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// De-framed body bytes (chunked transfer decoding already applied).
    pub body: Vec<u8>,
}

impl Response {
    /// First header value for `name` (case-insensitive lookup; names are
    /// stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — diagnostics only need best effort).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Build the raw bytes of one HTTP/1.1 request to an upstream worker.
/// `extra_headers` come after the computed `Host`/`Content-Length`; the
/// connection header is always `keep-alive` (the pool decides reuse).
pub fn build_request(
    method: &str,
    path: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + body.len());
    out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\n").as_bytes());
    out.extend_from_slice(b"Host: worker\r\n");
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
    out.extend_from_slice(body);
    out
}

/// Parsed response head: status plus headers (names lowercased).
#[derive(Debug, Clone)]
pub struct RespHead {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
}

impl RespHead {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Declared `Content-Length`, if present and parsable.
    pub fn content_length(&self) -> Option<usize> {
        self.header("content-length")?.trim().parse().ok()
    }

    /// Whether the body uses chunked transfer encoding.
    pub fn chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }

    /// Whether the upstream will close the connection after this response.
    pub fn close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.to_ascii_lowercase().contains("close"))
    }
}

fn io_bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Read one response head (status line + headers) from `reader`.
///
/// # Errors
///
/// Transport errors, or `InvalidData` on malformed framing.
pub fn read_head<R: BufRead>(reader: &mut R) -> std::io::Result<RespHead> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "upstream closed before the status line",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io_bad(format!("bad upstream status line: {}", line.trim())))?;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(RespHead { status, headers })
}

/// Read a response body per the head's framing: `Content-Length`, chunked
/// (decoded), or read-to-close.
///
/// # Errors
///
/// Transport errors, `InvalidData` on malformed chunk framing or a body
/// above [`MAX_BUFFERED_RESPONSE`].
pub fn read_body<R: BufRead>(reader: &mut R, head: &RespHead) -> std::io::Result<Vec<u8>> {
    if head.chunked() {
        return read_chunked_body(reader);
    }
    if let Some(len) = head.content_length() {
        if len > MAX_BUFFERED_RESPONSE {
            return Err(io_bad("upstream response too large to buffer"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        return Ok(body);
    }
    let mut body = Vec::new();
    reader
        .take(MAX_BUFFERED_RESPONSE as u64 + 1)
        .read_to_end(&mut body)?;
    if body.len() > MAX_BUFFERED_RESPONSE {
        return Err(io_bad("upstream response too large to buffer"));
    }
    Ok(body)
}

fn read_chunked_body<R: BufRead>(reader: &mut R) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(io_bad("upstream closed mid-chunk"));
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io_bad(format!("bad chunk size: {}", size_line.trim())))?;
        if size == 0 {
            // Trailer section: consume through the blank line.
            loop {
                let mut trailer = String::new();
                if reader.read_line(&mut trailer)? == 0 || trailer.trim().is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        if body.len() + size > MAX_BUFFERED_RESPONSE {
            return Err(io_bad("upstream chunked response too large to buffer"));
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(io_bad("missing chunk-data CRLF"));
        }
    }
}

/// A keep-alive connection pool to one worker address. The address is
/// mutable because a restarted worker binds a fresh ephemeral port — the
/// supervisor calls [`ConnPool::reset`] with the new address, which also
/// drops every (now dead) idle socket.
#[derive(Debug)]
pub struct ConnPool {
    addr: Mutex<String>,
    idle: Mutex<Vec<TcpStream>>,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl ConnPool {
    /// A pool for `addr` with the given connect and per-operation I/O
    /// timeouts.
    pub fn new(addr: String, connect_timeout: Duration, io_timeout: Duration) -> ConnPool {
        ConnPool {
            addr: Mutex::new(addr),
            idle: Mutex::new(Vec::new()),
            connect_timeout,
            io_timeout,
        }
    }

    /// Current upstream address.
    pub fn addr(&self) -> String {
        self.addr.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Point the pool at a new address (worker restarted on a fresh port)
    /// and drop all idle sockets to the old one.
    pub fn reset(&self, addr: String) {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner()) = addr;
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Drop all idle sockets (the worker died; they are all stale).
    pub fn clear(&self) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn checkout(&self) -> std::io::Result<(TcpStream, bool)> {
        if let Some(stream) = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok((stream, true));
        }
        Ok((self.connect()?, false))
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let addr = self.addr();
        let sock_addr = addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| io_bad(format!("bad worker address {addr:?}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < POOL_CAPACITY {
            idle.push(stream);
        }
    }

    /// Send one request and buffer the whole response. A transport failure
    /// on a **reused** socket is transparently retried once on a fresh
    /// connection (the idle socket may simply have been closed by the
    /// worker's idle timeout); a failure on a fresh connection is the
    /// caller's problem — the worker is actually unreachable.
    ///
    /// # Errors
    ///
    /// Connect/transport errors and malformed upstream framing.
    pub fn exchange(&self, request: &[u8]) -> std::io::Result<Response> {
        let (stream, reused) = self.checkout()?;
        match self.exchange_on(stream, request) {
            Ok(resp) => Ok(resp),
            Err(err) if reused => {
                let fresh = self.connect()?;
                self.exchange_on(fresh, request).map_err(|_| err)
            }
            Err(err) => Err(err),
        }
    }

    fn exchange_on(&self, mut stream: TcpStream, request: &[u8]) -> std::io::Result<Response> {
        stream.write_all(request)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let head = read_head(&mut reader)?;
        let body = read_body(&mut reader, &head)?;
        let close = head.close();
        if !close {
            self.checkin(reader.into_inner());
        }
        Ok(Response {
            status: head.status,
            headers: head.headers,
            body,
        })
    }
}

/// Stream one upstream response through to `client` without buffering the
/// body: forward the head (with the `Connection` header rewritten to the
/// client's negotiated state) and then copy the body bytes preserving the
/// upstream framing (`Content-Length` or chunked). An upstream that frames
/// by connection close forces `Connection: close` to the client too.
///
/// Returns the upstream status and whether the client connection must be
/// closed after this response. **No byte is written to `client` until the
/// upstream head has parsed**, so an `Err` from the head phase is safely
/// retryable by the caller.
///
/// # Errors
///
/// Transport errors from either side; `InvalidData` on malformed upstream
/// framing.
pub fn relay<W: Write>(
    pool: &ConnPool,
    request: &[u8],
    client: &mut W,
    client_keep_alive: bool,
) -> std::io::Result<(u16, bool)> {
    let (stream, reused) = pool.checkout()?;
    let mut reader = BufReader::new(stream);
    let head = match send_and_read_head(&mut reader, request) {
        Ok(head) => head,
        Err(err) if reused => {
            let fresh = self_connect(pool)?;
            reader = BufReader::new(fresh);
            send_and_read_head(&mut reader, request).map_err(|_| err)?
        }
        Err(err) => return Err(err),
    };
    let chunked = head.chunked();
    let content_length = head.content_length();
    let upstream_close = head.close();
    // Read-to-close upstream framing forces closing the client side too —
    // there is no other way to delimit the relayed body.
    let until_eof = !chunked && content_length.is_none();
    let keep_client = client_keep_alive && !until_eof;

    write!(
        client,
        "HTTP/1.1 {} {}\r\n",
        head.status,
        sam_serve::http::reason(head.status)
    )?;
    for (name, value) in &head.headers {
        if name == "connection" {
            continue;
        }
        write!(client, "{name}: {value}\r\n")?;
    }
    write!(
        client,
        "Connection: {}\r\n\r\n",
        if keep_client { "keep-alive" } else { "close" }
    )?;

    if chunked {
        copy_chunked(&mut reader, client)?;
    } else if let Some(len) = content_length {
        copy_exact(&mut reader, client, len as u64)?;
    } else {
        std::io::copy(&mut reader, client)?;
    }
    client.flush()?;
    if !upstream_close && !until_eof {
        pool.checkin(reader.into_inner());
    }
    Ok((head.status, !keep_client))
}

fn self_connect(pool: &ConnPool) -> std::io::Result<TcpStream> {
    pool.connect()
}

fn send_and_read_head(
    reader: &mut BufReader<TcpStream>,
    request: &[u8],
) -> std::io::Result<RespHead> {
    let stream = reader.get_mut();
    stream.write_all(request)?;
    stream.flush()?;
    read_head(reader)
}

fn copy_exact<R: BufRead, W: Write>(reader: &mut R, out: &mut W, len: u64) -> std::io::Result<()> {
    let copied = std::io::copy(&mut reader.take(len), out)?;
    if copied != len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "upstream closed mid-body",
        ));
    }
    Ok(())
}

/// Copy a chunked body verbatim (re-framing chunk by chunk) through to the
/// terminal chunk, preserving the upstream chunk boundaries.
fn copy_chunked<R: BufRead, W: Write>(reader: &mut R, out: &mut W) -> std::io::Result<()> {
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(io_bad("upstream closed mid-chunk"));
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io_bad(format!("bad chunk size: {}", size_line.trim())))?;
        out.write_all(size_line.as_bytes())?;
        if size == 0 {
            loop {
                let mut trailer = String::new();
                let n = reader.read_line(&mut trailer)?;
                out.write_all(trailer.as_bytes())?;
                if n == 0 || trailer.trim().is_empty() {
                    return Ok(());
                }
            }
        }
        copy_exact(reader, out, size as u64 + 2)?;
    }
}

/// One health probe: `GET /debug/buildinfo` answered 200 with at least
/// `want_models` models loaded means [`WorkerHealth::Healthy`]; a 200 with
/// fewer models means the worker is up but still loading
/// ([`WorkerHealth::Starting`]); anything else is [`WorkerHealth::Down`].
pub fn probe(pool: &ConnPool, want_models: usize) -> WorkerHealth {
    let request = build_request("GET", "/debug/buildinfo", &[], b"");
    match pool.exchange(&request) {
        Ok(resp) if resp.status == 200 => {
            let loaded = serde_json::parse_value(&resp.text())
                .ok()
                .and_then(|v| v.get("models").and_then(|m| m.as_u64()))
                .unwrap_or(0) as usize;
            if loaded >= want_models {
                WorkerHealth::Healthy
            } else {
                WorkerHealth::Starting
            }
        }
        Ok(_) => WorkerHealth::Down,
        Err(_) => WorkerHealth::Down,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot upstream: accepts connections forever, answers each request
    /// on a connection with the next canned response (cycling), honouring
    /// keep-alive.
    fn canned_server(responses: Vec<Vec<u8>>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                loop {
                    // Read one request (headers only; tolerate bodies via
                    // Content-Length).
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let mut content_length = 0usize;
                    loop {
                        let mut header = String::new();
                        if reader.read_line(&mut header).unwrap_or(0) == 0
                            || header.trim().is_empty()
                        {
                            break;
                        }
                        if let Some(v) = header
                            .to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::trim)
                        {
                            content_length = v.parse().unwrap_or(0);
                        }
                    }
                    let mut body = vec![0u8; content_length];
                    if reader.read_exact(&mut body).is_err() {
                        break;
                    }
                    let resp = &responses[next % responses.len()];
                    next += 1;
                    if stream.write_all(resp).is_err() {
                        break;
                    }
                    let text = String::from_utf8_lossy(resp).to_ascii_lowercase();
                    if text.contains("connection: close") {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn pool_for(addr: &str) -> ConnPool {
        ConnPool::new(
            addr.to_string(),
            Duration::from_secs(2),
            Duration::from_secs(5),
        )
    }

    #[test]
    fn exchange_buffers_content_length_response() {
        let addr = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\nConnection: keep-alive\r\n\r\n{\"k\":1}".to_vec(),
        ]);
        let pool = pool_for(&addr);
        let resp = pool
            .exchange(&build_request("GET", "/x", &[], b""))
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"k\":1}");
        assert_eq!(resp.header("content-type"), Some("application/json"));
        // Second exchange reuses the pooled socket.
        let resp2 = pool
            .exchange(&build_request("GET", "/y", &[], b""))
            .unwrap();
        assert_eq!(resp2.status, 200);
    }

    #[test]
    fn exchange_decodes_chunked_response() {
        let addr = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n".to_vec(),
        ]);
        let pool = pool_for(&addr);
        let resp = pool
            .exchange(&build_request("GET", "/x", &[], b""))
            .unwrap();
        assert_eq!(resp.body, b"hello world");
    }

    #[test]
    fn stale_pooled_socket_is_retried_on_fresh_connection() {
        // First response closes the upstream side *without* advertising it
        // (keep-alive header, then server drops after one request because
        // canned_server cycles). Simulate by a server that closes after
        // every response despite claiming keep-alive.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 2 {
                    line.clear();
                }
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                );
                // Drop: the pooled socket goes stale.
            }
        });
        let pool = pool_for(&addr);
        let req = build_request("GET", "/", &[], b"");
        assert_eq!(pool.exchange(&req).unwrap().status, 200);
        // The pooled socket is now dead; exchange must transparently retry.
        assert_eq!(pool.exchange(&req).unwrap().status, 200);
    }

    #[test]
    fn relay_preserves_chunked_framing_and_rewrites_connection() {
        let addr = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nTransfer-Encoding: chunked\r\nConnection: keep-alive\r\n\r\n4\r\nr1,a\r\n4\r\nr2,b\r\n0\r\n\r\n".to_vec(),
        ]);
        let pool = pool_for(&addr);
        let mut client = Vec::new();
        let (status, close) = relay(
            &pool,
            &build_request("GET", "/jobs/1/export", &[], b""),
            &mut client,
            true,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(!close, "chunked framing keeps the client connection open");
        let text = String::from_utf8(client).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let decoded = sam_serve::http::decode_chunked(&text.as_bytes()[body_at..]).unwrap();
        assert_eq!(decoded, b"r1,ar2,b");
    }

    #[test]
    fn relay_forces_close_for_eof_framed_upstream() {
        let addr = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nraw-bytes".to_vec(),
        ]);
        let pool = pool_for(&addr);
        let mut client = Vec::new();
        let (status, close) = relay(
            &pool,
            &build_request("GET", "/raw", &[], b""),
            &mut client,
            true,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(close, "EOF-framed body can only be delimited by close");
        let text = String::from_utf8(client).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("raw-bytes"));
    }

    #[test]
    fn probe_maps_buildinfo_to_health() {
        let healthy = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\nConnection: close\r\n\r\n{\"models\":2}"
                .to_vec(),
        ]);
        assert_eq!(probe(&pool_for(&healthy), 2), WorkerHealth::Healthy);
        let loading = canned_server(vec![
            b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\nConnection: close\r\n\r\n{\"models\":1}"
                .to_vec(),
        ]);
        assert_eq!(probe(&pool_for(&loading), 2), WorkerHealth::Starting);
        let erroring = canned_server(vec![
            b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}".to_vec(),
        ]);
        assert_eq!(probe(&pool_for(&erroring), 1), WorkerHealth::Down);
        let unreachable = ConnPool::new(
            "127.0.0.1:1".to_string(),
            Duration::from_millis(200),
            Duration::from_millis(200),
        );
        assert_eq!(probe(&unreachable, 1), WorkerHealth::Down);
    }
}
