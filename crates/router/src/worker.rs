//! Worker pool primitives: model placement specs, the job-id partition, and
//! supervised `sam-serve` worker processes.
//!
//! Every worker slot owns a disjoint `u64` job-id range (slot `s` mints ids
//! in `(s·2³², (s+1)·2³²]` via the serve side's `--job-id-base`), so
//! `/jobs/{id}` requests route to the shard that accepted the job with no
//! shared state — the id itself is the routing key. A slot's range, journal
//! store, and model set survive the worker *process*: a restarted (or
//! replacement) process on the same slot resumes from the shared per-shard
//! store directory and keeps minting from the same range.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// Job-id range width per worker slot. Large enough that no shard exhausts
/// its range (2³² jobs), small enough that `u64` fits 2³² slots.
pub const JOB_ID_STRIDE: u64 = 1 << 32;

/// First id (exclusive base) of `slot`'s job-id range; passed to the worker
/// as `--job-id-base` so its registry mints `base+1, base+2, ...`.
pub fn job_id_base(slot: usize) -> u64 {
    (slot as u64) * JOB_ID_STRIDE
}

/// The slot whose range contains job `id` (the inverse of
/// [`job_id_base`]).
pub fn slot_for_job(id: u64) -> usize {
    (id.saturating_sub(1) / JOB_ID_STRIDE) as usize
}

/// One model placement: registry name, checkpoint path, optional reference
/// data directory, and an optional pinned slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name the model serves under.
    pub name: String,
    /// Checkpoint path (`sam-cli train --model-out` format) the owning
    /// worker loads — and re-loads on every restart or move.
    pub path: String,
    /// Optional directory of `{table}.csv` reference relations.
    pub data: Option<String>,
    /// Explicit slot pin (`name@slot=path`); `None` places by ring.
    pub pin: Option<usize>,
}

impl ModelSpec {
    /// Parse `name[@slot]=path[=data_dir]` (the `--models` list element).
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty name/path or an unparsable
    /// slot pin.
    pub fn parse(spec: &str) -> Result<ModelSpec, String> {
        let mut parts = spec.splitn(3, '=');
        let name_part = parts.next().unwrap_or("");
        let path = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("model spec '{spec}' must be name[@slot]=path[=data_dir]"))?;
        let data = parts.next().filter(|d| !d.is_empty()).map(str::to_string);
        let (name, pin) = match name_part.split_once('@') {
            Some((n, slot)) => {
                let slot: usize = slot
                    .parse()
                    .map_err(|_| format!("model spec '{spec}': bad slot pin '@{slot}'"))?;
                (n, Some(slot))
            }
            None => (name_part, None),
        };
        if name.is_empty() {
            return Err(format!("model spec '{spec}' has an empty model name"));
        }
        Ok(ModelSpec {
            name: name.to_string(),
            path: path.to_string(),
            data,
            pin,
        })
    }

    /// Render as the `name=path[=data]` element a `sam-cli serve --models`
    /// list accepts (pin dropped — the worker doesn't know about slots).
    pub fn to_serve_spec(&self) -> String {
        match &self.data {
            Some(data) => format!("{}={}={data}", self.name, self.path),
            None => format!("{}={}", self.name, self.path),
        }
    }
}

/// Where a worker is in its lifecycle, as the supervisor sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Process running (or externally managed) but not yet confirmed ready.
    Starting,
    /// Health probes pass and all placed models are loaded.
    Healthy,
    /// Probes fail but no restart is scheduled (external worker, or a
    /// managed process that is alive but unresponsive).
    Down,
    /// Dead managed process; respawn scheduled with exponential backoff.
    Restarting {
        /// Consecutive failed/pending restart attempts.
        attempt: u32,
    },
    /// Deliberately stopped (left the pool); never restarted.
    Stopped,
}

impl WorkerHealth {
    /// Short lower-case label for JSON surfaces.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerHealth::Starting => "starting",
            WorkerHealth::Healthy => "healthy",
            WorkerHealth::Down => "down",
            WorkerHealth::Restarting { .. } => "restarting",
            WorkerHealth::Stopped => "stopped",
        }
    }
}

/// A spawned worker process and the address it bound.
#[derive(Debug)]
pub struct WorkerProcess {
    /// The child process handle (SIGKILL via [`Child::kill`], reap via
    /// [`Child::try_wait`]).
    pub child: Child,
    /// Address parsed from the worker's startup banner (workers bind port
    /// 0, so every spawn gets a fresh ephemeral port).
    pub addr: String,
}

/// Spawn one `sam-serve` worker process and wait for its startup banner.
///
/// `cmd` is the program plus leading arguments (e.g. `["sam-cli",
/// "serve"]`); `args` the per-worker flags. `env` is applied verbatim;
/// the crash-point arming variable [`sam_fault::CRASH_ENV`] is explicitly
/// *removed* first, so a worker only inherits a crash point when its spec
/// asks for one — in particular a supervisor-restarted worker never
/// re-arms the point that just killed its predecessor (which would be a
/// deterministic crash loop).
///
/// # Errors
///
/// `std::io::Error` if the process cannot be spawned or exits before
/// announcing `listening on http://...`.
pub fn spawn_worker(
    cmd: &[String],
    args: &[String],
    env: &[(String, String)],
) -> std::io::Result<WorkerProcess> {
    let (program, leading) = cmd.split_first().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty worker command")
    })?;
    let mut command = Command::new(program);
    command
        .args(leading)
        .args(args)
        .env_remove(sam_fault::CRASH_ENV)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (key, value) in env {
        command.env(key, value);
    }
    let mut child = command.spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker stdout not piped")
    })?;
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker exited before announcing its address",
            ));
        }
        if let Some(rest) = line.split("listening on http://").nth(1) {
            match rest.split_whitespace().next() {
                Some(token) => break token.to_string(),
                None => continue,
            }
        }
    };
    // Keep draining stdout forever so the worker can never block on a full
    // pipe mid-request.
    std::thread::Builder::new()
        .name("sam-router-worker-stdout".to_string())
        .spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        })
        .ok();
    Ok(WorkerProcess { child, addr })
}

/// Exponential restart backoff: `base · 2^attempt`, capped. Attempt 0 is
/// the first retry after a death.
pub fn restart_backoff(base_ms: u64, cap_ms: u64, attempt: u32) -> std::time::Duration {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(16));
    std::time::Duration::from_millis(exp.min(cap_ms.max(base_ms)))
}

/// Bookkeeping for a scheduled restart.
#[derive(Debug, Clone, Copy)]
pub struct RestartPlan {
    /// Don't attempt the respawn before this instant.
    pub not_before: Instant,
}

/// Per-worker configuration the router holds on to across restarts.
#[derive(Debug, Clone, Default)]
pub struct WorkerSpec {
    /// Per-shard job store directory (`--journal-dir`); required for
    /// managed workers, the durable half of the shard.
    pub store_dir: Option<PathBuf>,
    /// For an externally managed worker: its address. The router routes
    /// and health-checks it but never spawns or restarts it.
    pub external_addr: Option<String>,
    /// Extra environment applied to the **first** spawn only — the hook
    /// deterministic failover tests use to arm `SAM_FAULT_CRASH` in one
    /// worker generation without crash-looping its successors.
    pub env: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_partition_round_trips() {
        assert_eq!(job_id_base(0), 0);
        assert_eq!(job_id_base(3), 3 << 32);
        // First and last id of a few slots map back to the slot.
        for slot in [0usize, 1, 2, 7] {
            let base = job_id_base(slot);
            assert_eq!(slot_for_job(base + 1), slot);
            assert_eq!(slot_for_job(base + JOB_ID_STRIDE), slot);
        }
        // id 0 never minted; degrade to slot 0 rather than panic.
        assert_eq!(slot_for_job(0), 0);
    }

    #[test]
    fn model_spec_parses_all_shapes() {
        let plain = ModelSpec::parse("m=path.json").unwrap();
        assert_eq!(plain.name, "m");
        assert_eq!(plain.path, "path.json");
        assert_eq!(plain.data, None);
        assert_eq!(plain.pin, None);
        assert_eq!(plain.to_serve_spec(), "m=path.json");

        let with_data = ModelSpec::parse("m=path.json=data-dir").unwrap();
        assert_eq!(with_data.data.as_deref(), Some("data-dir"));
        assert_eq!(with_data.to_serve_spec(), "m=path.json=data-dir");

        let pinned = ModelSpec::parse("m@2=path.json=d").unwrap();
        assert_eq!(pinned.pin, Some(2));
        assert_eq!(pinned.to_serve_spec(), "m=path.json=d");
    }

    #[test]
    fn model_spec_rejects_garbage() {
        assert!(ModelSpec::parse("nopath").is_err());
        assert!(ModelSpec::parse("=path").is_err());
        assert!(ModelSpec::parse("m=").is_err());
        assert!(ModelSpec::parse("m@x=path").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(restart_backoff(100, 5000, 0).as_millis(), 100);
        assert_eq!(restart_backoff(100, 5000, 1).as_millis(), 200);
        assert_eq!(restart_backoff(100, 5000, 3).as_millis(), 800);
        assert_eq!(restart_backoff(100, 5000, 10).as_millis(), 5000);
        // Pathological config (cap below base) still yields base.
        assert_eq!(restart_backoff(100, 1, 0).as_millis(), 100);
    }
}
