//! `sam-router`: fault-tolerant sharded serving for SAM models.
//!
//! A thin HTTP router fronts a pool of `sam-serve` worker processes. Each
//! worker owns a consistent-hash partition of the model namespace (see
//! [`ring`]) and a disjoint job-id range (see [`worker`]), so every request
//! on the existing single-server HTTP surface routes to exactly one shard —
//! clients keep speaking the same protocol to one address and cannot tell
//! the pool from a single `sam-serve`.
//!
//! The router is also the supervisor: it spawns workers, health-probes
//! them, restarts dead ones with bounded exponential backoff, retries
//! idempotent requests once against a recovered shard, and answers `503`
//! with `Retry-After` while a shard is down, draining, or mid-rebalance.
//! Durability lives in the workers' per-shard journal stores: a restarted
//! (or replacement) worker on the same store replays and resumes every
//! accepted job, so a worker crash never loses work the pool acknowledged.
//!
//! Module map:
//! - [`ring`] — consistent-hash ring (model name → slot)
//! - [`worker`] — model/worker specs, job-id partition, process spawning
//! - [`proxy`] — upstream connection pool, buffered exchange, streamed
//!   relay, health probe
//! - [`metrics`] — router counters in the shared [`sam_obs`] registry
//! - [`router`] — the router itself: routing table, supervision loop,
//!   draining rebalance

#![warn(missing_docs)]

pub mod metrics;
pub mod proxy;
pub mod ring;
pub mod router;
pub mod worker;

pub use metrics::RouterMetrics;
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
pub use worker::{job_id_base, slot_for_job, ModelSpec, WorkerHealth, WorkerSpec, JOB_ID_STRIDE};
