//! Router-side observability: counters for routed traffic, retries, worker
//! restarts, and shard unavailability, registered in the shared
//! [`sam_obs`] global registry so `GET /metrics?format=prometheus` against
//! the router exposes them alongside everything else.

use sam_obs::Counter;
use std::sync::Arc;

/// The router's counters (all monotonic).
#[derive(Debug, Clone)]
pub struct RouterMetrics {
    /// Every request the router accepted from a client.
    pub requests: Arc<Counter>,
    /// Requests successfully answered by a worker (any upstream status).
    pub proxied_ok: Arc<Counter>,
    /// Idempotent requests re-sent to a shard after its first attempt
    /// failed on a dead/restarting worker.
    pub retries: Arc<Counter>,
    /// Dead managed workers respawned by the supervisor.
    pub worker_restarts: Arc<Counter>,
    /// Requests answered 503 because the owning shard was down, draining,
    /// or mid-rebalance.
    pub unavailable: Arc<Counter>,
    /// Requests that failed with an upstream transport error after retry.
    pub upstream_errors: Arc<Counter>,
    /// Fan-out requests (`/metrics`, `/models`, `/quality`) dispatched.
    pub fanouts: Arc<Counter>,
    /// Draining rebalances completed (worker join/leave).
    pub rebalances: Arc<Counter>,
}

impl RouterMetrics {
    /// Create (or re-attach to) the router counters in the global
    /// registry.
    pub fn new() -> RouterMetrics {
        let reg = sam_obs::Registry::global();
        reg.describe(
            "sam_router_requests_total",
            "requests accepted by the router",
        );
        reg.describe(
            "sam_router_retries_total",
            "idempotent requests retried after a worker failure",
        );
        reg.describe(
            "sam_router_worker_restarts_total",
            "dead workers respawned by the supervisor",
        );
        reg.describe(
            "sam_router_unavailable_total",
            "requests answered 503 while a shard was down or draining",
        );
        RouterMetrics {
            requests: sam_obs::counter("sam_router_requests_total"),
            proxied_ok: sam_obs::counter("sam_router_proxied_ok_total"),
            retries: sam_obs::counter("sam_router_retries_total"),
            worker_restarts: sam_obs::counter("sam_router_worker_restarts_total"),
            unavailable: sam_obs::counter("sam_router_unavailable_total"),
            upstream_errors: sam_obs::counter("sam_router_upstream_errors_total"),
            fanouts: sam_obs::counter("sam_router_fanouts_total"),
            rebalances: sam_obs::counter("sam_router_rebalances_total"),
        }
    }

    /// The router's own corner of the merged `/metrics` JSON document.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "requests": self.requests.get(),
            "proxied_ok": self.proxied_ok.get(),
            "router_retries": self.retries.get(),
            "worker_restarts": self.worker_restarts.get(),
            "unavailable": self.unavailable.get(),
            "upstream_errors": self.upstream_errors.get(),
            "fanouts": self.fanouts.get(),
            "rebalances": self.rebalances.get(),
        })
    }
}

impl Default for RouterMetrics {
    fn default() -> Self {
        RouterMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_render() {
        let metrics = RouterMetrics::new();
        let before = metrics.requests.get();
        metrics.requests.inc();
        metrics.worker_restarts.add(2);
        assert_eq!(metrics.requests.get(), before + 1);
        let json = serde_json::to_string(&metrics.to_json()).unwrap();
        assert!(json.contains("\"worker_restarts\""));
        assert!(json.contains("\"router_retries\""));
        // Same names re-attach to the same underlying counters.
        let again = RouterMetrics::new();
        assert_eq!(again.requests.get(), metrics.requests.get());
    }
}
