//! The router itself: accept loop, request routing, worker supervision,
//! and draining rebalance.
//!
//! The router owns no model state. It maps every request to the worker
//! slot that owns it — by the `model` field for estimate/generate/train,
//! by the job-id range for `/jobs/*`, by fan-out for `/metrics`,
//! `/models`, and `/quality` — and proxies the existing HTTP/1.1 surface
//! unchanged. Managed workers are spawned, health-probed, and restarted
//! with bounded exponential backoff; while a shard is down or draining the
//! router answers `503` with `Retry-After` instead of hanging, and retries
//! idempotent requests once against a recovered worker.

use crate::metrics::RouterMetrics;
use crate::proxy::{self, build_request, ConnPool, Response};
use crate::ring::HashRing;
use crate::worker::{
    job_id_base, restart_backoff, slot_for_job, spawn_worker, ModelSpec, WorkerHealth, WorkerSpec,
};
use sam_serve::http::{self, Request};
use sam_serve::sync::Lock;
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Router bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker launch command: program plus leading args (e.g.
    /// `["sam-cli", "serve"]`). May be empty when every slot is external.
    pub worker_cmd: Vec<String>,
    /// Managed worker slots spawned at startup (`0..workers`).
    pub workers: usize,
    /// Initial model placements.
    pub models: Vec<ModelSpec>,
    /// Root for per-shard job stores; slot `s` uses `store_root/shard-s`.
    pub store_root: PathBuf,
    /// Extra flags appended to every managed worker's command line.
    pub worker_flags: Vec<String>,
    /// Per-slot overrides (index = slot): external address, store dir,
    /// first-spawn environment.
    pub specs: Vec<WorkerSpec>,
    /// Health probe period.
    pub health_interval_ms: u64,
    /// Connect + I/O timeout of one health probe.
    pub probe_timeout_ms: u64,
    /// Connect + I/O timeout of a proxied request.
    pub proxy_timeout_ms: u64,
    /// First restart backoff; doubles per consecutive failure.
    pub restart_backoff_ms: u64,
    /// Restart backoff ceiling.
    pub restart_backoff_cap_ms: u64,
    /// How long an idempotent request waits for a shard to recover before
    /// its one retry (also the advertised `Retry-After` is ~1s regardless).
    pub retry_wait_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_cmd: Vec::new(),
            workers: 2,
            models: Vec::new(),
            store_root: PathBuf::from("sam-shards"),
            worker_flags: Vec::new(),
            specs: Vec::new(),
            health_interval_ms: 200,
            probe_timeout_ms: 1_000,
            proxy_timeout_ms: 120_000,
            restart_backoff_ms: 100,
            restart_backoff_cap_ms: 5_000,
            retry_wait_ms: 2_000,
        }
    }
}

/// Where a model lives: its (re-loadable) spec and owning slot.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The spec needed to (re)load the model anywhere: checkpoint path and
    /// optional reference data.
    pub spec: ModelSpec,
    /// Owning worker slot.
    pub slot: usize,
}

/// One worker slot's live runtime state.
pub struct WorkerRuntime {
    /// Slot index (stable identity; survives process restarts).
    pub slot: usize,
    spec: WorkerSpec,
    pool: ConnPool,
    child: Lock<Option<Child>>,
    health: Lock<WorkerHealth>,
    restarts: AtomicU64,
    spawned_once: AtomicBool,
    draining: AtomicBool,
    restart_attempt: AtomicU64,
    restart_not_before: Lock<Option<Instant>>,
}

impl WorkerRuntime {
    fn new(slot: usize, spec: WorkerSpec, config: &RouterConfig) -> WorkerRuntime {
        let addr = spec.external_addr.clone().unwrap_or_default();
        WorkerRuntime {
            slot,
            spec,
            pool: ConnPool::new(
                addr,
                Duration::from_millis(config.probe_timeout_ms.max(1)),
                Duration::from_millis(config.proxy_timeout_ms.max(1)),
            ),
            child: Lock::new(None),
            health: Lock::new(WorkerHealth::Starting),
            restarts: AtomicU64::new(0),
            spawned_once: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            restart_attempt: AtomicU64::new(0),
            restart_not_before: Lock::new(None),
        }
    }

    /// Whether the router spawned (and therefore restarts) this worker.
    pub fn is_managed(&self) -> bool {
        self.spec.external_addr.is_none()
    }

    /// Current health.
    pub fn health(&self) -> WorkerHealth {
        self.health.lock().clone()
    }

    /// Times this worker's process was respawned after dying.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Upstream address currently routed to.
    pub fn addr(&self) -> String {
        self.pool.addr()
    }

    /// OS pid of the managed child, if running.
    pub fn pid(&self) -> Option<u32> {
        self.child.lock().as_ref().map(Child::id)
    }

    fn set_health(&self, health: WorkerHealth) {
        *self.health.lock() = health;
    }
}

struct RouterState {
    config: RouterConfig,
    workers: Lock<BTreeMap<usize, Arc<WorkerRuntime>>>,
    ring: Lock<HashRing>,
    placement: Lock<BTreeMap<String, Placement>>,
    /// Models mid-rebalance: requests for them answer 503 + `Retry-After`
    /// until the move commits.
    moving: Lock<BTreeSet<String>>,
    metrics: RouterMetrics,
    shutting_down: AtomicBool,
    conn_threads: Lock<Vec<JoinHandle<()>>>,
}

/// A running router. Dropping it shuts it down and kills managed workers.
pub struct Router {
    state: Arc<RouterState>,
    addr: SocketAddr,
    accept_thread: Lock<Option<JoinHandle<()>>>,
    health_thread: Lock<Option<JoinHandle<()>>>,
}

impl Router {
    /// Place models, spawn managed workers, bind, and start routing.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures, a slot pin outside the pool, or a managed slot
    /// without a worker command.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, m);
        if config.workers == 0 && config.specs.is_empty() {
            return Err(bad("router needs at least one worker slot".into()));
        }
        let slots = config.workers.max(config.specs.len());
        let mut ring = HashRing::new();
        for slot in 0..slots {
            ring.add_slot(slot);
        }
        let mut placement = BTreeMap::new();
        for spec in &config.models {
            let slot = match spec.pin {
                Some(pin) if pin < slots => pin,
                Some(pin) => {
                    return Err(bad(format!(
                        "model '{}' pinned to slot {pin}, but the pool has slots 0..{slots}",
                        spec.name
                    )))
                }
                None => ring.slot_for(&spec.name).expect("ring is non-empty"),
            };
            placement.insert(
                spec.name.clone(),
                Placement {
                    spec: spec.clone(),
                    slot,
                },
            );
        }

        let mut workers = BTreeMap::new();
        for slot in 0..slots {
            let mut spec = config.specs.get(slot).cloned().unwrap_or_default();
            if spec.external_addr.is_none() && spec.store_dir.is_none() {
                spec.store_dir = Some(config.store_root.join(format!("shard-{slot}")));
            }
            workers.insert(slot, Arc::new(WorkerRuntime::new(slot, spec, &config)));
        }

        let state = Arc::new(RouterState {
            config,
            workers: Lock::new(workers),
            ring: Lock::new(ring),
            placement: Lock::new(placement),
            moving: Lock::new(BTreeSet::new()),
            metrics: RouterMetrics::new(),
            shutting_down: AtomicBool::new(false),
            conn_threads: Lock::new(Vec::new()),
        });

        // Spawn every managed worker before accepting traffic; a spawn
        // failure tears down the ones already started.
        let initial: Vec<Arc<WorkerRuntime>> = state.workers.lock().values().cloned().collect();
        for worker in &initial {
            if worker.is_managed() {
                if let Err(e) = spawn_slot(&state, worker) {
                    for started in &initial {
                        kill_worker(started);
                    }
                    return Err(e);
                }
            }
        }

        let listener = TcpListener::bind(&state.config.addr)?;
        let addr = listener.local_addr()?;
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("sam-router-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        let health_state = Arc::clone(&state);
        let health_thread = std::thread::Builder::new()
            .name("sam-router-health".to_string())
            .spawn(move || health_loop(&health_state))?;
        Ok(Router {
            state,
            addr,
            accept_thread: Lock::new(Some(accept_thread)),
            health_thread: Lock::new(Some(health_thread)),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of slot → runtime, for tests and the CLI.
    pub fn workers(&self) -> Vec<Arc<WorkerRuntime>> {
        self.state.workers.lock().values().cloned().collect()
    }

    /// Current placement snapshot (model → slot).
    pub fn placement(&self) -> BTreeMap<String, usize> {
        self.state
            .placement
            .lock()
            .iter()
            .map(|(name, p)| (name.clone(), p.slot))
            .collect()
    }

    /// Router metrics handle.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.state.metrics
    }

    /// Join a new managed worker slot and rebalance ring-assigned models
    /// onto it with draining quiesce. Returns the new slot.
    ///
    /// # Errors
    ///
    /// A human-readable message if the worker cannot be spawned; the
    /// topology is left unchanged in that case.
    pub fn join_worker(&self) -> Result<usize, String> {
        join_worker(&self.state)
    }

    /// Remove worker `slot`. With `replace` the shard is quiesced and its
    /// process replaced by a fresh one on the same store (the new owner
    /// resumes every journaled job); without, the shard is drained, its
    /// models are reassigned across the remaining ring, and the slot is
    /// retired.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown slots or a failed drain.
    pub fn leave_worker(&self, slot: usize, replace: bool) -> Result<(), String> {
        leave_worker(&self.state, slot, replace)
    }

    /// Graceful shutdown: stop accepting, join handlers, kill managed
    /// workers (their journals make this safe — accepted jobs resume on
    /// the next start from the same stores). Idempotent; runs on drop.
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.health_thread.lock().take() {
            let _ = handle.join();
        }
        let conns: Vec<_> = self.state.conn_threads.lock().drain(..).collect();
        for handle in conns {
            let _ = handle.join();
        }
        for worker in self.state.workers.lock().values() {
            kill_worker(worker);
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Build the command-line args for (re)spawning `slot` from the current
/// placement.
fn worker_args(state: &RouterState, worker: &WorkerRuntime) -> Vec<String> {
    let mut args = vec!["--addr".to_string(), "127.0.0.1:0".to_string()];
    if let Some(store) = &worker.spec.store_dir {
        args.push("--journal-dir".to_string());
        args.push(store.display().to_string());
    }
    args.push("--job-id-base".to_string());
    args.push(job_id_base(worker.slot).to_string());
    let models: Vec<String> = state
        .placement
        .lock()
        .values()
        .filter(|p| p.slot == worker.slot)
        .map(|p| p.spec.to_serve_spec())
        .collect();
    if !models.is_empty() {
        args.push("--models".to_string());
        args.push(models.join(","));
    }
    args.extend(state.config.worker_flags.iter().cloned());
    args
}

/// Spawn (or respawn) the managed worker for a slot and point its pool at
/// the fresh address. First spawn applies the spec's environment (the
/// crash-arming hook); respawns never do.
fn spawn_slot(state: &RouterState, worker: &WorkerRuntime) -> std::io::Result<()> {
    if state.config.worker_cmd.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "slot {} is managed but no worker command is set",
                worker.slot
            ),
        ));
    }
    if let Some(store) = &worker.spec.store_dir {
        std::fs::create_dir_all(store)?;
    }
    let args = worker_args(state, worker);
    let first = !worker.spawned_once.swap(true, Ordering::SeqCst);
    let env: &[(String, String)] = if first { &worker.spec.env } else { &[] };
    let process = spawn_worker(&state.config.worker_cmd, &args, env)?;
    worker.pool.reset(process.addr.clone());
    *worker.child.lock() = Some(process.child);
    worker.set_health(WorkerHealth::Starting);
    worker.restart_attempt.store(0, Ordering::Relaxed);
    *worker.restart_not_before.lock() = None;
    Ok(())
}

fn kill_worker(worker: &WorkerRuntime) {
    if let Some(mut child) = worker.child.lock().take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    worker.pool.clear();
}

fn placed_count(state: &RouterState, slot: usize) -> usize {
    state
        .placement
        .lock()
        .values()
        .filter(|p| p.slot == slot)
        .count()
}

fn health_loop(state: &Arc<RouterState>) {
    let interval = Duration::from_millis(state.config.health_interval_ms.max(10));
    while !state.shutting_down.load(Ordering::SeqCst) {
        let workers: Vec<Arc<WorkerRuntime>> = state.workers.lock().values().cloned().collect();
        for worker in workers {
            if state.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            supervise(state, &worker);
        }
        std::thread::sleep(interval);
    }
}

/// One supervision pass over one worker: reap a dead child (scheduling its
/// respawn with exponential backoff), attempt a due respawn, otherwise
/// probe health.
fn supervise(state: &Arc<RouterState>, worker: &Arc<WorkerRuntime>) {
    if matches!(worker.health(), WorkerHealth::Stopped) {
        return;
    }
    if worker.is_managed() {
        let died = {
            let mut child = worker.child.lock();
            match child.as_mut().and_then(|c| c.try_wait().ok().flatten()) {
                Some(_status) => {
                    *child = None;
                    true
                }
                None => false,
            }
        };
        if died {
            worker.pool.clear();
            let attempt = worker.restart_attempt.load(Ordering::Relaxed) as u32;
            worker.set_health(WorkerHealth::Restarting { attempt });
            *worker.restart_not_before.lock() = Some(
                Instant::now()
                    + restart_backoff(
                        state.config.restart_backoff_ms,
                        state.config.restart_backoff_cap_ms,
                        attempt,
                    ),
            );
        }
        let due = {
            let not_before = worker.restart_not_before.lock();
            matches!(*not_before, Some(t) if Instant::now() >= t)
        };
        if due {
            match spawn_slot(state, worker) {
                Ok(()) => {
                    worker.restarts.fetch_add(1, Ordering::Relaxed);
                    state.metrics.worker_restarts.inc();
                }
                Err(_) => {
                    let attempt = worker.restart_attempt.fetch_add(1, Ordering::Relaxed) as u32 + 1;
                    worker.set_health(WorkerHealth::Restarting { attempt });
                    *worker.restart_not_before.lock() = Some(
                        Instant::now()
                            + restart_backoff(
                                state.config.restart_backoff_ms,
                                state.config.restart_backoff_cap_ms,
                                attempt,
                            ),
                    );
                    return;
                }
            }
        }
        if worker.child.lock().is_none() {
            // Still waiting out the backoff window.
            return;
        }
    }
    let probe_pool = ConnPool::new(
        worker.pool.addr(),
        Duration::from_millis(state.config.probe_timeout_ms.max(1)),
        Duration::from_millis(state.config.probe_timeout_ms.max(1)),
    );
    let health = proxy::probe(&probe_pool, placed_count(state, worker.slot));
    worker.set_health(health);
}

fn accept_loop(listener: &TcpListener, state: &Arc<RouterState>) {
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("sam-router-conn".to_string())
            .spawn(move || handle_connection(&stream, &conn_state));
        if let Ok(handle) = spawned {
            let mut threads = state.conn_threads.lock();
            threads.retain(|h| !h.is_finished());
            threads.push(handle);
        }
    }
}

/// Client-side writer that records whether any byte has gone out — the
/// retry-safety gate for streamed relays.
struct TrackedWriter<W: Write> {
    inner: W,
    wrote: bool,
}

impl<W: Write> Write for TrackedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if !buf.is_empty() {
            self.wrote = true;
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn handle_connection(stream: &TcpStream, state: &Arc<RouterState>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut reader = BufReader::new(read_half);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(e) => {
                let body = serde_json::to_string(&json!({"error": e.to_string()}))
                    .unwrap_or_else(|_| "{}".to_string());
                let _ = http::write_json_response(&mut writer, e.status(), &body, false);
                break;
            }
        };
        let keep_alive = request.keep_alive && !state.shutting_down.load(Ordering::SeqCst);
        match handle_request(state, &request, &mut writer, keep_alive) {
            Ok(false) => continue,
            Ok(true) | Err(_) => break,
        }
    }
}

/// Whether a request may safely be sent twice (the router's single-retry
/// policy only applies to these).
fn is_idempotent(method: &str, path: &str) -> bool {
    method == "GET" || path == "/estimate" || path.ends_with("/cancel")
}

fn respond_json<W: Write>(
    out: &mut W,
    status: u16,
    body: &Value,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
    http::write_json_response(out, status, &text, keep_alive)?;
    Ok(!keep_alive)
}

/// Re-emit a buffered upstream response to the client, preserving status,
/// content type, and any upstream `Retry-After`.
fn respond_upstream<W: Write>(
    out: &mut W,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let content_type = resp.header("content-type").unwrap_or("application/json");
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        resp.status,
        http::reason(resp.status),
        resp.body.len(),
    )?;
    if let Some(retry) = resp.header("retry-after") {
        write!(out, "Retry-After: {retry}\r\n")?;
    }
    write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    out.write_all(&resp.body)?;
    out.flush()?;
    Ok(!keep_alive)
}

fn unavailable<W: Write>(
    state: &RouterState,
    out: &mut W,
    detail: &str,
    keep_alive: bool,
) -> std::io::Result<bool> {
    state.metrics.unavailable.inc();
    respond_json(out, 503, &json!({"error": detail}), keep_alive)
}

fn worker_for_slot(state: &RouterState, slot: usize) -> Option<Arc<WorkerRuntime>> {
    state.workers.lock().get(&slot).cloned()
}

fn slot_for_model(state: &RouterState, model: &str) -> Option<usize> {
    state.placement.lock().get(model).map(|p| p.slot)
}

/// Wait until `worker` reports healthy (or the deadline passes).
fn wait_for_healthy(worker: &WorkerRuntime, deadline: Duration) -> bool {
    let until = Instant::now() + deadline;
    loop {
        if matches!(worker.health(), WorkerHealth::Healthy) {
            return true;
        }
        if Instant::now() >= until {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Proxy one buffered request to a slot, with the single-retry policy for
/// idempotent requests: on a transport failure, wait for the supervisor to
/// bring the shard back and send exactly once more.
fn proxy_to_slot<W: Write>(
    state: &RouterState,
    slot: usize,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let Some(worker) = worker_for_slot(state, slot) else {
        return respond_json(
            out,
            404,
            &json!({"error": format!("no shard owns slot {slot} (worker departed)")}),
            keep_alive,
        );
    };
    if worker.draining.load(Ordering::SeqCst) {
        return unavailable(
            state,
            out,
            &format!("shard {slot} is draining; retry shortly"),
            keep_alive,
        );
    }
    let (path_only, _) = split_path(&request.path);
    let idempotent = is_idempotent(&request.method, path_only);
    if !matches!(worker.health(), WorkerHealth::Healthy) {
        // Give a recovering shard one grace window before failing
        // idempotent traffic; fail non-idempotent traffic fast so the
        // client backs off (Retry-After) rather than risking a duplicate
        // accept.
        if !idempotent
            || !wait_for_healthy(&worker, Duration::from_millis(state.config.retry_wait_ms))
        {
            return unavailable(
                state,
                out,
                &format!("shard {slot} is {}; retry shortly", worker.health().label()),
                keep_alive,
            );
        }
    }
    let upstream_request = build_request(
        &request.method,
        &request.path,
        &forward_headers(request),
        request.body.as_bytes(),
    );
    match worker.pool.exchange(&upstream_request) {
        Ok(resp) => {
            state.metrics.proxied_ok.inc();
            respond_upstream(out, &resp, keep_alive)
        }
        Err(first_err) => {
            worker.pool.clear();
            if idempotent
                && wait_for_healthy(&worker, Duration::from_millis(state.config.retry_wait_ms))
            {
                state.metrics.retries.inc();
                if let Ok(resp) = worker.pool.exchange(&upstream_request) {
                    state.metrics.proxied_ok.inc();
                    return respond_upstream(out, &resp, keep_alive);
                }
            }
            state.metrics.upstream_errors.inc();
            unavailable(
                state,
                out,
                &format!("shard {slot} unreachable ({first_err}); retry shortly"),
                keep_alive,
            )
        }
    }
}

/// Headers worth forwarding upstream (content negotiation + resume).
fn forward_headers(request: &Request) -> Vec<(String, String)> {
    let mut headers = Vec::new();
    if !request.accept_encoding.is_empty() {
        headers.push((
            "Accept-Encoding".to_string(),
            request.accept_encoding.join(", "),
        ));
    }
    if let Some(start) = request.range_start {
        headers.push(("Range".to_string(), format!("bytes={start}-")));
    }
    headers
}

/// Stream a large-body route (job export) through without buffering. Falls
/// back to the buffered path semantics for errors: a failure before any
/// client byte answers 503; a failure after the head leaves the client
/// with a truncated chunked stream (which it detects).
fn relay_to_slot<W: Write>(
    state: &RouterState,
    slot: usize,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let Some(worker) = worker_for_slot(state, slot) else {
        return respond_json(
            out,
            404,
            &json!({"error": format!("no shard owns slot {slot} (worker departed)")}),
            keep_alive,
        );
    };
    if worker.draining.load(Ordering::SeqCst)
        || (!matches!(worker.health(), WorkerHealth::Healthy)
            && !wait_for_healthy(&worker, Duration::from_millis(state.config.retry_wait_ms)))
    {
        return unavailable(
            state,
            out,
            &format!("shard {slot} is {}; retry shortly", worker.health().label()),
            keep_alive,
        );
    }
    let upstream_request = build_request(
        &request.method,
        &request.path,
        &forward_headers(request),
        request.body.as_bytes(),
    );
    let mut tracked = TrackedWriter {
        inner: out,
        wrote: false,
    };
    match proxy::relay(&worker.pool, &upstream_request, &mut tracked, keep_alive) {
        Ok((_status, close)) => {
            state.metrics.proxied_ok.inc();
            Ok(close)
        }
        Err(e) if !tracked.wrote => {
            worker.pool.clear();
            state.metrics.upstream_errors.inc();
            unavailable(
                state,
                tracked.inner,
                &format!("shard {slot} unreachable ({e}); retry shortly"),
                keep_alive,
            )
        }
        Err(e) => Err(e),
    }
}

fn split_path(path: &str) -> (&str, &str) {
    match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    }
}

fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn handle_request<W: Write>(
    state: &Arc<RouterState>,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    state.metrics.requests.inc();
    let (path, query) = split_path(&request.path);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => respond_json(out, 200, &healthz_json(state), keep_alive),
        ("GET", "/metrics") => {
            if query_param(query, "format") == Some("prometheus") {
                let body = sam_obs::Registry::global().render_prometheus();
                http::write_text_response(out, 200, &body, keep_alive)?;
                Ok(!keep_alive)
            } else {
                respond_json(out, 200, &merged_metrics(state), keep_alive)
            }
        }
        ("GET", "/models") => respond_json(out, 200, &merged_models(state), keep_alive),
        ("POST", "/models") => load_model_via_router(state, request, out, keep_alive),
        ("POST", p) if p.starts_with("/models/") && p.ends_with("/rollback") => {
            let name = &p["/models/".len()..p.len() - "/rollback".len()];
            match slot_for_model(state, name) {
                Some(slot) => proxy_to_slot(state, slot, request, out, keep_alive),
                None => respond_json(
                    out,
                    404,
                    &json!({"error": format!("model '{name}' is not placed on any shard")}),
                    keep_alive,
                ),
            }
        }
        ("POST", "/estimate") | ("POST", "/generate") => {
            route_by_body_model(state, request, out, keep_alive)
        }
        ("POST", "/train") => match query_param(query, "model") {
            Some(model) => route_by_model(state, model, request, out, keep_alive),
            None => respond_json(
                out,
                400,
                &json!({"error": "POST /train requires model=<name> in the query"}),
                keep_alive,
            ),
        },
        ("GET", "/quality") => match query_param(query, "model") {
            Some(model) => route_by_model(state, model, request, out, keep_alive),
            None => respond_json(out, 200, &fanout_quality(state), keep_alive),
        },
        ("GET", "/debug/buildinfo") if query_param(query, "model").is_none() => {
            respond_json(out, 200, &router_buildinfo(state), keep_alive)
        }
        (_, p) if p.starts_with("/debug/") => match query_param(query, "model") {
            Some(model) => route_by_model(state, model, request, out, keep_alive),
            None => respond_json(
                out,
                400,
                &json!({"error": "debug routes need model=<name> to pick a shard (the router keeps no per-model state)"}),
                keep_alive,
            ),
        },
        (_, p) if p.starts_with("/jobs/") => {
            let id_text = p["/jobs/".len()..].split('/').next().unwrap_or_default();
            match id_text.parse::<u64>() {
                Ok(id) => {
                    let slot = slot_for_job(id);
                    if request.method == "GET" && p.ends_with("/export") {
                        relay_to_slot(state, slot, request, out, keep_alive)
                    } else {
                        proxy_to_slot(state, slot, request, out, keep_alive)
                    }
                }
                Err(_) => respond_json(
                    out,
                    400,
                    &json!({"error": format!("invalid job id '{id_text}'")}),
                    keep_alive,
                ),
            }
        }
        ("GET", "/admin/topology") => respond_json(out, 200, &topology_json(state), keep_alive),
        ("POST", "/admin/join") => match join_worker(state) {
            Ok(slot) => respond_json(out, 200, &json!({"joined": slot}), keep_alive),
            Err(e) => respond_json(out, 500, &json!({"error": e}), keep_alive),
        },
        ("POST", "/admin/leave") => {
            let slot = query_param(query, "slot").and_then(|v| v.parse::<usize>().ok());
            let replace = query_param(query, "replace") == Some("true");
            match slot {
                Some(slot) => match leave_worker(state, slot, replace) {
                    Ok(()) => respond_json(
                        out,
                        200,
                        &json!({"left": slot, "replaced": replace}),
                        keep_alive,
                    ),
                    Err(e) => respond_json(out, 409, &json!({"error": e}), keep_alive),
                },
                None => respond_json(
                    out,
                    400,
                    &json!({"error": "POST /admin/leave requires slot=<n>"}),
                    keep_alive,
                ),
            }
        }
        (_, p) => respond_json(
            out,
            404,
            &json!({"error": format!("no route for {p}")}),
            keep_alive,
        ),
    }
}

/// Route by a model name taken from the request body's `"model"` field.
fn route_by_body_model<W: Write>(
    state: &Arc<RouterState>,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let model = serde_json::parse_value(&request.body)
        .ok()
        .and_then(|doc| doc.get("model").and_then(Value::as_str).map(str::to_string));
    match model {
        Some(model) => route_by_model(state, &model, request, out, keep_alive),
        None => respond_json(
            out,
            400,
            &json!({"error": "missing string field 'model'"}),
            keep_alive,
        ),
    }
}

fn route_by_model<W: Write>(
    state: &Arc<RouterState>,
    model: &str,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    if state.moving.lock().contains(model) {
        return unavailable(
            state,
            out,
            &format!("model '{model}' is mid-rebalance; retry shortly"),
            keep_alive,
        );
    }
    match slot_for_model(state, model) {
        Some(slot) => proxy_to_slot(state, slot, request, out, keep_alive),
        None => respond_json(
            out,
            404,
            &json!({"error": format!("model '{model}' is not placed on any shard (POST /models to load it)")}),
            keep_alive,
        ),
    }
}

/// `POST /models` through the router: assign a shard by the ring, forward,
/// and record the placement (with the spec needed to re-load the model on
/// worker restart or rebalance) once the owning worker confirms.
fn load_model_via_router<W: Write>(
    state: &Arc<RouterState>,
    request: &Request,
    out: &mut W,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let Some(doc) = serde_json::parse_value(&request.body).ok() else {
        return respond_json(out, 400, &json!({"error": "invalid JSON body"}), keep_alive);
    };
    let (Some(name), Some(path)) = (
        doc.get("name").and_then(Value::as_str),
        doc.get("path").and_then(Value::as_str),
    ) else {
        return respond_json(
            out,
            400,
            &json!({"error": "POST /models needs string fields 'name' and 'path'"}),
            keep_alive,
        );
    };
    let data = doc.get("data").and_then(Value::as_str).map(str::to_string);
    let slot = slot_for_model(state, name)
        .or_else(|| state.ring.lock().slot_for(name))
        .unwrap_or(0);
    let close = proxy_to_slot(state, slot, request, out, keep_alive)?;
    // Record the placement optimistically: even if the load just failed,
    // re-loading on restart is idempotent and a later successful load of
    // the same name must land on the same shard anyway.
    state.placement.lock().insert(
        name.to_string(),
        Placement {
            spec: ModelSpec {
                name: name.to_string(),
                path: path.to_string(),
                data,
                pin: None,
            },
            slot,
        },
    );
    Ok(close)
}

fn worker_json(state: &RouterState, worker: &WorkerRuntime) -> Value {
    json!({
        "slot": worker.slot,
        "addr": worker.addr(),
        "health": worker.health().label(),
        "managed": worker.is_managed(),
        "restarts": worker.restarts(),
        "draining": worker.draining.load(Ordering::SeqCst),
        "pid": worker.pid().map_or(Value::Null, |p| json!(p)),
        "models": placed_count(state, worker.slot),
    })
}

fn healthz_json(state: &RouterState) -> Value {
    let workers: Vec<Value> = state
        .workers
        .lock()
        .values()
        .map(|w| worker_json(state, w))
        .collect();
    let healthy = workers
        .iter()
        .filter(|w| w.get("health").and_then(Value::as_str) == Some("healthy"))
        .count();
    json!({
        "status": if healthy == workers.len() { "ok" } else { "degraded" },
        "role": "router",
        "workers": Value::Array(workers),
        "models": state.placement.lock().len(),
        "shutting_down": state.shutting_down.load(Ordering::SeqCst),
    })
}

fn router_buildinfo(state: &RouterState) -> Value {
    json!({
        "version": env!("CARGO_PKG_VERSION"),
        "role": "router",
        "workers": state.workers.lock().len(),
        "models": state.placement.lock().len(),
    })
}

fn topology_json(state: &RouterState) -> Value {
    let workers: Vec<Value> = state
        .workers
        .lock()
        .values()
        .map(|w| worker_json(state, w))
        .collect();
    let placement: Vec<Value> = state
        .placement
        .lock()
        .iter()
        .map(
            |(name, p)| json!({"model": name.clone(), "slot": p.slot, "path": p.spec.path.clone()}),
        )
        .collect();
    let moving: Vec<Value> = state
        .moving
        .lock()
        .iter()
        .map(|m| Value::String(m.clone()))
        .collect();
    json!({
        "slots": state.ring.lock().slots(),
        "workers": Value::Array(workers),
        "placement": Value::Array(placement),
        "moving": Value::Array(moving),
    })
}

/// Fan one GET out to every healthy worker; returns `(slot, response)`.
fn fanout(state: &RouterState, path: &str) -> Vec<(usize, Response)> {
    let workers: Vec<Arc<WorkerRuntime>> = state.workers.lock().values().cloned().collect();
    let request = build_request("GET", path, &[], b"");
    let mut out = Vec::new();
    for worker in workers {
        if !matches!(worker.health(), WorkerHealth::Healthy) {
            continue;
        }
        state.metrics.fanouts.inc();
        if let Ok(resp) = worker.pool.exchange(&request) {
            out.push((worker.slot, resp));
        }
    }
    out
}

/// Merge JSON documents: numbers sum, objects merge recursively, anything
/// else first-wins. This is what makes the fan-out `/metrics` read like a
/// single server's counters.
fn merge_value(into: &mut Value, from: &Value) {
    match (into, from) {
        (Value::Object(a), Value::Object(b)) => {
            for (key, bv) in b {
                match a.iter_mut().find(|(k, _)| k == key) {
                    Some((_, av)) => merge_value(av, bv),
                    None => a.push((key.clone(), bv.clone())),
                }
            }
        }
        (Value::Number(_), Value::Number(_)) => {
            // Handled below — replace via arithmetic on f64.
        }
        _ => {}
    }
}

/// Post-order numeric sum for [`merge_value`] (objects handled there);
/// numbers need the extra pass because `merge_value` cannot rebind the
/// `into` enum variant while matching on it.
fn sum_numbers(into: &mut Value, from: &Value) {
    if let (Value::Object(a), Value::Object(b)) = (&mut *into, from) {
        for (key, bv) in b {
            if let Some((_, av)) = a.iter_mut().find(|(k, _)| k == key) {
                sum_numbers(av, bv);
            }
        }
        return;
    }
    let (Some(x), Some(y)) = (into.as_f64(), from.as_f64()) else {
        return;
    };
    *into = json!(x + y);
}

fn merged_metrics(state: &RouterState) -> Value {
    let responses = fanout(state, "/metrics");
    let mut merged = Value::Object(Vec::new());
    for (_slot, resp) in &responses {
        if let Ok(doc) = serde_json::parse_value(&resp.text()) {
            sum_numbers(&mut merged, &doc);
            merge_value(&mut merged, &doc);
        }
    }
    if let Value::Object(fields) = &mut merged {
        fields.push(("router".to_string(), state.metrics.to_json()));
        fields.push(("shards".to_string(), json!(responses.len())));
    }
    merged
}

fn merged_models(state: &RouterState) -> Value {
    let mut models: Vec<Value> = Vec::new();
    for (slot, resp) in fanout(state, "/models") {
        let Ok(doc) = serde_json::parse_value(&resp.text()) else {
            continue;
        };
        let Some(list) = doc.get("models").and_then(Value::as_array) else {
            continue;
        };
        for entry in list {
            if let Value::Object(fields) = entry {
                let mut fields = fields.clone();
                fields.push(("shard".to_string(), json!(slot)));
                models.push(Value::Object(fields));
            }
        }
    }
    json!({"models": Value::Array(models)})
}

fn fanout_quality(state: &RouterState) -> Value {
    let shards: Vec<Value> = fanout(state, "/quality")
        .into_iter()
        .map(|(slot, resp)| {
            let report = serde_json::parse_value(&resp.text()).unwrap_or(Value::Null);
            json!({"slot": slot, "report": report})
        })
        .collect();
    json!({"shards": Value::Array(shards)})
}

/// Ask a worker to quiesce: finish in-flight jobs, checkpoint the journal,
/// and reject new work until resumed.
fn drain_shard(worker: &WorkerRuntime) -> Result<(), String> {
    worker.draining.store(true, Ordering::SeqCst);
    let request = build_request("POST", "/admin/drain", &[], b"");
    match worker.pool.exchange(&request) {
        Ok(resp) if resp.status == 200 => Ok(()),
        Ok(resp) => Err(format!(
            "shard {} refused to drain: {} {}",
            worker.slot,
            resp.status,
            resp.text()
        )),
        Err(e) => Err(format!("shard {} drain failed: {e}", worker.slot)),
    }
}

fn resume_shard(worker: &WorkerRuntime) {
    let request = build_request("POST", "/admin/resume", &[], b"");
    let _ = worker.pool.exchange(&request);
    worker.draining.store(false, Ordering::SeqCst);
}

/// Join a fresh managed worker slot: plan the moved-model set from a ring
/// preview, quiesce the source shards, spawn the new owner with the moved
/// models, commit the ring + placement, resume the sources.
fn join_worker(state: &Arc<RouterState>) -> Result<usize, String> {
    let new_slot = state
        .workers
        .lock()
        .keys()
        .next_back()
        .map_or(0, |max| max + 1);
    // Plan: unpinned models whose ring ownership moves to the joiner.
    let moved: Vec<(String, Placement)> = {
        let ring = state.ring.lock();
        state
            .placement
            .lock()
            .iter()
            .filter(|(name, p)| {
                p.spec.pin.is_none() && ring.slot_for_with(name, new_slot) == Some(new_slot)
            })
            .map(|(name, p)| (name.clone(), p.clone()))
            .collect()
    };
    {
        let mut moving = state.moving.lock();
        for (name, _) in &moved {
            moving.insert(name.clone());
        }
    }
    let finish = |state: &RouterState, names: &[(String, Placement)]| {
        let mut moving = state.moving.lock();
        for (name, _) in names {
            moving.remove(name);
        }
    };

    // Quiesce every source shard that loses a model.
    let sources: BTreeSet<usize> = moved.iter().map(|(_, p)| p.slot).collect();
    let mut drained: Vec<Arc<WorkerRuntime>> = Vec::new();
    for &slot in &sources {
        if let Some(worker) = worker_for_slot(state, slot) {
            if let Err(e) = drain_shard(&worker) {
                for w in &drained {
                    resume_shard(w);
                }
                finish(state, &moved);
                return Err(e);
            }
            drained.push(worker);
        }
    }

    // Spawn the new owner with the moved models already on its command
    // line: its journal store is fresh, its models load at boot.
    let spec = WorkerSpec {
        store_dir: Some(state.config.store_root.join(format!("shard-{new_slot}"))),
        external_addr: None,
        env: Vec::new(),
    };
    let worker = Arc::new(WorkerRuntime::new(new_slot, spec, &state.config));
    {
        // Placement must describe the new world before spawn_slot computes
        // the worker's --models flag.
        let mut placement = state.placement.lock();
        for (name, p) in &moved {
            placement.insert(
                name.clone(),
                Placement {
                    spec: p.spec.clone(),
                    slot: new_slot,
                },
            );
        }
    }
    let spawn_result = spawn_slot(state, &worker)
        .map_err(|e| e.to_string())
        .and_then(|()| {
            if wait_for_probe(state, &worker) {
                Ok(())
            } else {
                Err(format!("joined worker {new_slot} never became healthy"))
            }
        });
    match spawn_result {
        Ok(()) => {
            state.workers.lock().insert(new_slot, Arc::clone(&worker));
            state.ring.lock().add_slot(new_slot);
            for w in &drained {
                resume_shard(w);
            }
            finish(state, &moved);
            state.metrics.rebalances.inc();
            Ok(new_slot)
        }
        Err(e) => {
            kill_worker(&worker);
            // Roll the placement back to the pre-join owners.
            let mut placement = state.placement.lock();
            for (name, p) in &moved {
                placement.insert(name.clone(), p.clone());
            }
            drop(placement);
            for w in &drained {
                resume_shard(w);
            }
            finish(state, &moved);
            Err(e)
        }
    }
}

/// Probe the worker directly (the health thread may be sleeping) until it
/// answers healthy or a generous deadline passes.
fn wait_for_probe(state: &RouterState, worker: &WorkerRuntime) -> bool {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let probe_pool = ConnPool::new(
            worker.pool.addr(),
            Duration::from_millis(state.config.probe_timeout_ms.max(1)),
            Duration::from_millis(state.config.probe_timeout_ms.max(1)),
        );
        let health = proxy::probe(&probe_pool, placed_count(state, worker.slot));
        worker.set_health(health.clone());
        if matches!(health, WorkerHealth::Healthy) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Remove a worker slot, either replacing its process in place (same
/// store — the replacement resumes every journaled job) or draining and
/// reassigning its models across the remaining ring.
fn leave_worker(state: &Arc<RouterState>, slot: usize, replace: bool) -> Result<(), String> {
    let Some(worker) = worker_for_slot(state, slot) else {
        return Err(format!("no worker at slot {slot}"));
    };
    if !worker.is_managed() {
        return Err(format!(
            "slot {slot} is external; the router cannot manage its lifecycle"
        ));
    }
    if replace {
        // Quiesce, kill, respawn on the same store: the new process is the
        // shard's new owner and resumes from the shared job store.
        let _ = drain_shard(&worker);
        kill_worker(&worker);
        worker.draining.store(false, Ordering::SeqCst);
        spawn_slot(state, &worker).map_err(|e| e.to_string())?;
        worker.restarts.fetch_add(1, Ordering::Relaxed);
        state.metrics.worker_restarts.inc();
        if !wait_for_probe(state, &worker) {
            return Err(format!(
                "replacement worker for slot {slot} never became healthy"
            ));
        }
        state.metrics.rebalances.inc();
        return Ok(());
    }
    if state.workers.lock().len() <= 1 {
        return Err("cannot retire the last worker slot".to_string());
    }
    let owned: Vec<(String, Placement)> = state
        .placement
        .lock()
        .iter()
        .filter(|(_, p)| p.slot == slot)
        .map(|(name, p)| (name.clone(), p.clone()))
        .collect();
    {
        let mut moving = state.moving.lock();
        for (name, _) in &owned {
            moving.insert(name.clone());
        }
    }
    let drain_result = drain_shard(&worker);
    if let Err(e) = drain_result {
        resume_shard(&worker);
        let mut moving = state.moving.lock();
        for (name, _) in &owned {
            moving.remove(name);
        }
        return Err(e);
    }
    // Retire the slot from the ring, then hand each model to its new owner
    // via POST /models (loads from the recorded checkpoint spec).
    state.ring.lock().remove_slot(slot);
    let mut errors = Vec::new();
    for (name, p) in &owned {
        let new_slot = state.ring.lock().slot_for(name);
        let Some(new_slot) = new_slot else {
            errors.push(format!("no remaining shard for '{name}'"));
            continue;
        };
        let Some(new_owner) = worker_for_slot(state, new_slot) else {
            errors.push(format!("shard {new_slot} missing for '{name}'"));
            continue;
        };
        let body = match &p.spec.data {
            Some(data) => {
                json!({"name": name.clone(), "path": p.spec.path.clone(), "data": data.clone()})
            }
            None => json!({"name": name.clone(), "path": p.spec.path.clone()}),
        };
        let body_text = serde_json::to_string(&body).unwrap_or_default();
        let request = build_request("POST", "/models", &[], body_text.as_bytes());
        match new_owner.pool.exchange(&request) {
            Ok(resp) if resp.status == 200 => {
                state.placement.lock().insert(
                    name.clone(),
                    Placement {
                        spec: p.spec.clone(),
                        slot: new_slot,
                    },
                );
            }
            Ok(resp) => errors.push(format!(
                "move '{name}' to shard {new_slot}: {} {}",
                resp.status,
                resp.text()
            )),
            Err(e) => errors.push(format!("move '{name}' to shard {new_slot}: {e}")),
        }
    }
    kill_worker(&worker);
    worker.set_health(WorkerHealth::Stopped);
    state.workers.lock().remove(&slot);
    {
        let mut moving = state.moving.lock();
        for (name, _) in &owned {
            moving.remove(name);
        }
    }
    state.metrics.rebalances.inc();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_classification() {
        assert!(is_idempotent("GET", "/jobs/7"));
        assert!(is_idempotent("GET", "/jobs/7/export"));
        assert!(is_idempotent("POST", "/estimate"));
        assert!(is_idempotent("POST", "/jobs/7/cancel"));
        assert!(!is_idempotent("POST", "/generate"));
        assert!(!is_idempotent("POST", "/train"));
        assert!(!is_idempotent("POST", "/models"));
    }

    #[test]
    fn merge_sums_numbers_and_unions_objects() {
        let mut a = serde_json::parse_value(
            r#"{"counters": {"requests": 3, "errors": 1}, "build": {"version": "1.0"}}"#,
        )
        .unwrap();
        let b = serde_json::parse_value(
            r#"{"counters": {"requests": 4, "jobs": 2}, "build": {"version": "1.0"}}"#,
        )
        .unwrap();
        sum_numbers(&mut a, &b);
        merge_value(&mut a, &b);
        let counters = a.get("counters").unwrap();
        assert_eq!(counters.get("requests").and_then(Value::as_f64), Some(7.0));
        assert_eq!(counters.get("errors").and_then(Value::as_f64), Some(1.0));
        assert_eq!(counters.get("jobs").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            a.get("build")
                .unwrap()
                .get("version")
                .and_then(Value::as_str),
            Some("1.0")
        );
    }

    #[test]
    fn default_config_is_sane() {
        let config = RouterConfig::default();
        assert_eq!(config.workers, 2);
        assert!(config.restart_backoff_ms < config.restart_backoff_cap_ms);
    }

    #[test]
    fn query_param_parses() {
        assert_eq!(query_param("model=m&x=1", "model"), Some("m"));
        assert_eq!(query_param("model=m", "x"), None);
        assert_eq!(query_param("", "x"), None);
    }
}
