//! Experiment binary: Table 5 — Q-Error of test queries.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table5::run(ctx) {
        r.print();
    }
}
