//! Experiment binary: Figure 5 — workload processing time.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::fig5::run(ctx) {
        r.print();
    }
}
