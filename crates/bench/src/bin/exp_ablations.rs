//! Experiment binary: design-choice ablations.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::ablations::run(ctx) {
        r.print();
    }
}
