//! Experiment binary: Tables 3 & 4 — IMDB input-query fidelity.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table34::run(ctx) {
        r.print();
    }
}
