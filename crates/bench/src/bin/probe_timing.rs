//! Timing probe used to calibrate experiment scales (not a paper artifact).

use sam_bench::*;
use sam_core::JoinKeyStrategy;

fn main() {
    let ctx = parse_args();
    println!("scale {:?}", ctx.scale);
    let (bundle, t) = timed(|| census_bundle(ctx.scale, ctx.seed));
    println!(
        "census build: {t:.2}s rows={}",
        bundle.db.tables()[0].num_rows()
    );
    let (w, t) = timed(|| single_workload(&bundle, 1000, ctx.seed));
    println!("label 1000 queries: {t:.2}s");
    let cfg = sam_config(ctx.scale, ctx.seed);
    let (trained, t) = timed(|| fit_sam(&bundle, &w, &cfg));
    println!(
        "train {} queries x {} epochs: {t:.2}s (report {:.2}s, last loss {:?})",
        w.len(),
        cfg.train.epochs,
        trained.report.wall_seconds,
        trained.report.epoch_losses.last()
    );
    let (gen, t) = timed(|| {
        trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .unwrap()
    });
    println!("generate: {t:.2}s rows={}", gen.0.tables()[0].num_rows());
    let (qe, t) = timed(|| q_errors_on(&gen.0, &w.queries[..500.min(w.len())]));
    let p = sam_metrics::Percentiles::from_values(&qe);
    println!(
        "eval 500: {t:.2}s median={:.2} mean={:.2} p90={:.2}",
        p.median, p.mean, p.p90
    );

    // IMDB probe
    let (bundle, t) = timed(|| imdb_bundle(ctx.scale, ctx.seed));
    println!("imdb build: {t:.2}s total_rows={}", bundle.db.total_rows());
    let (w, t) = timed(|| multi_workload(&bundle, 1000, ctx.seed));
    println!("imdb label 1000: {t:.2}s");
    let (trained, t) = timed(|| fit_sam(&bundle, &w, &cfg));
    println!(
        "imdb train: {t:.2}s last loss {:?}",
        trained.report.epoch_losses.last()
    );
    let (gen, t) = timed(|| {
        trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .unwrap()
    });
    println!(
        "imdb generate: {t:.2}s sizes={:?}",
        gen.0
            .tables()
            .iter()
            .map(|t| t.num_rows())
            .collect::<Vec<_>>()
    );
    println!(
        "imdb target sizes={:?}",
        bundle
            .db
            .tables()
            .iter()
            .map(|t| t.num_rows())
            .collect::<Vec<_>>()
    );
    let (qe, t) = timed(|| q_errors_on(&gen.0, &w.queries[..300.min(w.len())]));
    let p = sam_metrics::Percentiles::from_values(&qe);
    println!(
        "imdb eval 300: {t:.2}s median={:.2} mean={:.2} p90={:.2} max={:.1}",
        p.median, p.mean, p.p90, p.max
    );
}
