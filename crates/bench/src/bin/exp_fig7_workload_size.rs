//! Experiment binary: Figure 7 — recovery vs workload size.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::fig7::run(ctx) {
        r.print();
    }
}
