//! Run every experiment in DESIGN.md's index, print all tables, and write
//! `exp_results.json` (consumed when updating EXPERIMENTS.md).

use sam_bench::experiments::*;
use sam_bench::parse_args;

/// One experiment suite: name plus runner.
type Suite = (
    &'static str,
    fn(sam_bench::ExpContext) -> Vec<ExperimentResult>,
);

fn main() {
    let ctx = parse_args();
    println!(
        "Running all experiments at {:?} scale (seed {})",
        ctx.scale, ctx.seed
    );
    let suites: Vec<Suite> = vec![
        ("fig5", fig5::run),
        ("table1", table1::run),
        ("table2", table2::run),
        ("table3/4", table34::run),
        ("table5", table5::run),
        ("table6", table6::run),
        ("table7", table7::run),
        ("table8/9", table89::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("gen_single", gen_single::run),
        ("ablations", ablations::run),
        ("seeds", seeds::run),
    ];
    let mut all = Vec::new();
    for (name, f) in suites {
        eprintln!("--- running {name} ---");
        let start = std::time::Instant::now();
        for r in f(ctx) {
            r.print();
            all.push(r);
        }
        eprintln!(
            "--- {name} done in {:.1}s ---",
            start.elapsed().as_secs_f64()
        );
    }
    let json = serde_json::json!({
        "scale": format!("{:?}", ctx.scale),
        "seed": ctx.seed,
        "experiments": all,
    });
    std::fs::write(
        "exp_results.json",
        serde_json::to_string_pretty(&json).expect("serialisable"),
    )
    .expect("writable cwd");
    println!("\nWrote exp_results.json");
}
