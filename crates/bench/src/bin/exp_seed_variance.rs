//! Experiment binary: fidelity robustness across seeds.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::seeds::run(ctx) {
        r.print();
    }
}
