//! Experiment binary: Figure 6 — generation time vs FOJ samples.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::fig6::run(ctx) {
        r.print();
    }
}
