//! Experiment binary: §5.6 — single-relation generation time.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::gen_single::run(ctx) {
        r.print();
    }
}
