//! Experiment binary: Figure 8 — recovery vs coverage ratio.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::fig8::run(ctx) {
        r.print();
    }
}
