//! Experiment binary: Tables 8 & 9 — performance deviation.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table89::run(ctx) {
        r.print();
    }
}
