//! Experiment binary: Table 2 — Q-Error of very few input queries.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table2::run(ctx) {
        r.print();
    }
}
