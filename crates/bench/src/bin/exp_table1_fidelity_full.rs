//! Experiment binary: Table 1 — Q-Error of input queries, full scale.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table1::run(ctx) {
        r.print();
    }
}
