//! Experiment binary: Table 6 — JOB-light Q-Error on IMDB.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table6::run(ctx) {
        r.print();
    }
}
