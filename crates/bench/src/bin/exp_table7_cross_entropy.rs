//! Experiment binary: Table 7 — cross entropy.
fn main() {
    let ctx = sam_bench::parse_args();
    for r in sam_bench::experiments::table7::run(ctx) {
        r.print();
    }
}
