//! Tables 8 & 9: performance deviation — the absolute difference in query
//! latency between the generated and original databases, measured on the
//! same in-memory engine (the benchmarking/stress-testing use case).
//!
//! Table 8: unseen single-relation test queries on Census and DMV.
//! Table 9: JOB-light-style join queries on IMDB.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_engine::performance_deviation;
use sam_metrics::{render_table, Percentiles};
use sam_query::Query;
use serde_json::json;

const REPEATS: usize = 9;

/// Convert a deviation series from ms to µs (our scaled-down data runs
/// 10³–10⁴× faster than the paper's Postgres setups; µs keeps precision).
fn to_us(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| x * 1e3).collect()
}

fn queries_of(w: &sam_query::Workload) -> Vec<Query> {
    w.queries.iter().map(|lq| lq.query.clone()).collect()
}

fn single(bundle: &Bundle, pgm_n: usize, ctx: ExpContext) -> (Percentiles, Percentiles) {
    let (train_n, _, test_n) = workload_sizes(ctx.scale);
    let train = single_workload(bundle, train_n, ctx.seed);
    let test = queries_of(&test_single_workload(bundle, test_n.min(100), ctx.seed));

    let pgm = fit_pgm_single(bundle, &train.truncate(pgm_n), &pgm_config(ctx.scale));
    let pgm_db = pgm_generate_single(bundle, &pgm, ctx.seed);
    let dev_pgm = to_us(
        &performance_deviation(&bundle.db, &pgm_db, &test, REPEATS)
            .expect("latency measurement succeeds"),
    );

    let trained = fit_sam(bundle, &train, &sam_config(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let dev_sam = to_us(
        &performance_deviation(&bundle.db, &sam_db, &test, REPEATS)
            .expect("latency measurement succeeds"),
    );

    (
        Percentiles::from_values(&dev_pgm),
        Percentiles::from_values(&dev_sam),
    )
}

/// Run Tables 8 and 9.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    let pack = |p: &Percentiles| json!({"median": p.median, "p75": p.p75, "p90": p.p90, "mean": p.mean, "max": p.max});

    // ---- Table 8 ----
    {
        let census = census_bundle(ctx.scale, ctx.seed);
        let dmv = dmv_bundle(ctx.scale, ctx.seed);
        let (pgm_c, sam_c) = single(&census, 12, ctx);
        let (pgm_d, sam_d) = single(&dmv, 7, ctx);
        let text = render_table(
            "Table 8: Performance deviation of test queries (µs; paper used ms on Postgres)",
            &[
                "Cen.Med", "Cen.75", "Cen.90", "Cen.Mean", "DMV.Med", "DMV.75", "DMV.90",
                "DMV.Mean",
            ],
            &[
                (
                    "PGM".into(),
                    vec![
                        pgm_c.median,
                        pgm_c.p75,
                        pgm_c.p90,
                        pgm_c.mean,
                        pgm_d.median,
                        pgm_d.p75,
                        pgm_d.p90,
                        pgm_d.mean,
                    ],
                ),
                (
                    "SAM".into(),
                    vec![
                        sam_c.median,
                        sam_c.p75,
                        sam_c.p90,
                        sam_c.mean,
                        sam_d.median,
                        sam_d.p75,
                        sam_d.p90,
                        sam_d.mean,
                    ],
                ),
            ],
        );
        out.push(ExperimentResult {
            id: "table8".into(),
            title: "Performance deviation of test queries (µs)".into(),
            text,
            json: json!({
                "census": {"pgm": pack(&pgm_c), "sam": pack(&sam_c)},
                "dmv": {"pgm": pack(&pgm_d), "sam": pack(&sam_d)},
                "paper_note": "paper: Postgres 12 latencies; here: sam-engine latencies (see DESIGN.md)",
                "paper": {"census": {"pgm": {"median": 1.38, "mean": 1.81}, "sam": {"median": 0.26, "mean": 0.43}},
                           "dmv": {"pgm": {"median": 145.2, "mean": 311.4}, "sam": {"median": 103.0, "mean": 221.8}}},
            }),
        });
    }

    // ---- Table 9 ----
    {
        let bundle = imdb_bundle(ctx.scale, ctx.seed);
        let (_, train_multi, _) = workload_sizes(ctx.scale);
        let train = multi_workload(&bundle, train_multi, ctx.seed);
        let job_light = queries_of(&job_light_workload(&bundle, 70, ctx.seed));

        let trained = fit_sam(&bundle, &train, &sam_config(ctx.scale, ctx.seed));
        let (sam_db, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let dev_sam = to_us(
            &performance_deviation(&bundle.db, &sam_db, &job_light, REPEATS)
                .expect("latency measurement succeeds"),
        );

        let pgm = fit_pgm_multi(&bundle, &train.truncate(400), &pgm_config(ctx.scale));
        let pgm_db = pgm
            .generate(bundle.db.schema(), &bundle.stats, ctx.seed)
            .expect("pgm generation succeeds");
        let dev_pgm = to_us(
            &performance_deviation(&bundle.db, &pgm_db, &job_light, REPEATS)
                .expect("latency measurement succeeds"),
        );

        let p_pgm = Percentiles::from_values(&dev_pgm);
        let p_sam = Percentiles::from_values(&dev_sam);
        let row = |p: &Percentiles| vec![p.median, p.p75, p.p90, p.mean, p.max];
        let text = render_table(
            "Table 9: Performance deviation of JOB-light queries on IMDB (µs)",
            &["Median", "75th", "90th", "Mean", "Max"],
            &[("PGM".into(), row(&p_pgm)), ("SAM".into(), row(&p_sam))],
        );
        out.push(ExperimentResult {
            id: "table9".into(),
            title: "Performance deviation of JOB-light queries on IMDB (µs)".into(),
            text,
            json: json!({
                "pgm": pack(&p_pgm), "sam": pack(&p_sam),
                "paper": {"pgm": {"median": 19.20, "p75": 373.9, "p90": 2637.0, "mean": 1565.0, "max": 3e4},
                           "sam": {"median": 0.89, "p75": 4.86, "p90": 65.75, "mean": 121.0, "max": 5730.0}},
            }),
        });
    }

    out
}
