//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod ablations;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod gen_single;
pub mod seeds;
pub mod table1;
pub mod table2;
pub mod table34;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table89;

use serde::Serialize;

/// The outcome of one experiment: a printable block plus structured data.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Stable id, e.g. `table1`, `fig5`.
    pub id: String,
    /// Paper-facing title.
    pub title: String,
    /// Rendered plain-text table(s)/series.
    pub text: String,
    /// Structured numbers for EXPERIMENTS.md.
    pub json: serde_json::Value,
}

impl ExperimentResult {
    /// Print to stdout in the harness's standard framing.
    pub fn print(&self) {
        println!("\n######## {} — {} ########", self.id, self.title);
        println!("{}", self.text);
    }
}
