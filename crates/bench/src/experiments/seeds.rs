//! Seed-robustness check (beyond the paper): repeat the Table-1 pipeline
//! across several seeds and report the spread of the fidelity percentiles —
//! evidence that the headline numbers are not a lucky draw.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::Percentiles;
use serde_json::json;

/// Run the seed sweep on Census.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let seeds: Vec<u64> = (0..3).map(|i| ctx.seed + i).collect();
    let (train_n, _, _) = workload_sizes(ctx.scale);

    let mut text = String::from("Census — input-query fidelity across seeds\n");
    text.push_str(&format!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}\n",
        "seed", "median", "p75", "p90", "mean"
    ));
    let mut medians = Vec::new();
    let mut means = Vec::new();
    let mut rows = Vec::new();
    for &seed in &seeds {
        let bundle = census_bundle(ctx.scale, seed);
        let workload = single_workload(&bundle, train_n, seed);
        let trained = fit_sam(&bundle, &workload, &sam_config(ctx.scale, seed));
        let (db, _) = trained
            .generate(&generation_config(
                ctx.scale,
                seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let qe = q_errors_on(&db, &workload.queries[..workload.len().min(1000)]);
        let p = Percentiles::from_values(&qe);
        text.push_str(&format!(
            "{:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            seed, p.median, p.p75, p.p90, p.mean
        ));
        medians.push(p.median);
        means.push(p.mean);
        rows.push(json!({"seed": seed, "median": p.median, "p75": p.p75,
                          "p90": p.p90, "mean": p.mean}));
    }
    let spread = |v: &[f64]| {
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (mlo, mhi) = spread(&medians);
    let (alo, ahi) = spread(&means);
    text.push_str(&format!(
        "\nmedian Q spread: [{mlo:.2}, {mhi:.2}]; mean Q spread: [{alo:.2}, {ahi:.2}]\n"
    ));

    vec![ExperimentResult {
        id: "seeds".into(),
        title: "Fidelity robustness across seeds (Census)".into(),
        text,
        json: json!({"rows": rows}),
    }]
}
