//! Figure 5: workload processing time vs. number of input queries.
//!
//! The paper's headline scalability plot: PGM's processing time grows as a
//! high-degree polynomial (more queries → more literals → bigger
//! intervalized domains → clique tables explode), while SAM's grows
//! linearly (fixed epochs over a growing workload). PGM's sweep stops once
//! a fit exceeds the per-scale time cap — the moral equivalent of the
//! paper's 12 h / 48 h frames.

use super::ExperimentResult;
use crate::harness::*;
use serde_json::json;

/// PGM per-fit time cap in seconds, per scale.
fn pgm_cap(scale: Scale) -> f64 {
    match scale {
        Scale::Smoke => 2.0,
        Scale::Quick => 15.0,
        Scale::Full => 120.0,
    }
}

/// Run the Figure 5 sweeps.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let mut text = String::new();
    let mut series = Vec::new();

    // ---- Census (single relation) ----
    let bundle = census_bundle(ctx.scale, ctx.seed);
    let (train_n, _, _) = workload_sizes(ctx.scale);
    let workload = single_workload(&bundle, train_n, ctx.seed);

    text.push_str("Census — processing time (seconds) vs #queries\n");
    text.push_str(&format!(
        "{:>8}  {:>10}  {:>10}  {:>12}\n",
        "n", "SAM", "PGM", "PGM vars"
    ));

    let mut pgm_dead = false;
    let mut n = 4usize;
    let cfg = sam_config(ctx.scale, ctx.seed);
    let pgm_cfg = pgm_config(ctx.scale);
    while n <= train_n {
        let w = workload.truncate(n);
        let (_, sam_t) = timed(|| fit_sam(&bundle, &w, &cfg));
        let (pgm_t, pgm_vars) = if pgm_dead {
            (f64::NAN, 0)
        } else {
            let (pgm, t) = timed(|| fit_pgm_single(&bundle, &w, &pgm_cfg));
            if t > pgm_cap(ctx.scale) || pgm.exceeded {
                pgm_dead = true;
            }
            let vars = pgm.num_variables();
            (if pgm.exceeded { f64::NAN } else { t }, vars)
        };
        text.push_str(&format!(
            "{:>8}  {:>10.3}  {:>10}  {:>12}\n",
            n,
            sam_t,
            if pgm_t.is_nan() {
                ">cap".to_string()
            } else {
                format!("{pgm_t:.3}")
            },
            if pgm_vars > 0 {
                pgm_vars.to_string()
            } else {
                "-".into()
            },
        ));
        series.push(json!({
            "dataset": "census", "n": n, "sam_seconds": sam_t,
            "pgm_seconds": if pgm_t.is_nan() { None } else { Some(pgm_t) },
            "pgm_variables": pgm_vars,
        }));
        n *= 4;
    }

    // ---- IMDB (multi relation) ----
    let bundle = imdb_bundle(ctx.scale, ctx.seed);
    let (_, train_multi, _) = workload_sizes(ctx.scale);
    let workload = multi_workload(&bundle, train_multi, ctx.seed);

    text.push_str("\nIMDB — processing time (seconds) vs #queries\n");
    text.push_str(&format!("{:>8}  {:>10}  {:>10}\n", "n", "SAM", "PGM"));
    let mut pgm_dead = false;
    let mut n = 8usize;
    while n <= train_multi {
        let w = workload.truncate(n);
        let (_, sam_t) = timed(|| fit_sam(&bundle, &w, &cfg));
        let pgm_t = if pgm_dead {
            f64::NAN
        } else {
            let (pgm, t) = timed(|| fit_pgm_multi(&bundle, &w, &pgm_cfg));
            if t > pgm_cap(ctx.scale) || pgm.exceeded {
                pgm_dead = true;
            }
            if pgm.exceeded {
                f64::NAN
            } else {
                t
            }
        };
        text.push_str(&format!(
            "{:>8}  {:>10.3}  {:>10}\n",
            n,
            sam_t,
            if pgm_t.is_nan() {
                ">cap".to_string()
            } else {
                format!("{pgm_t:.3}")
            },
        ));
        series.push(json!({
            "dataset": "imdb", "n": n, "sam_seconds": sam_t,
            "pgm_seconds": if pgm_t.is_nan() { None } else { Some(pgm_t) },
        }));
        n *= 4;
    }

    vec![ExperimentResult {
        id: "fig5".into(),
        title: "Processing time of query workloads (SAM linear vs PGM polynomial)".into(),
        text,
        json: json!({ "series": series }),
    }]
}
