//! Table 1: Q-Error of input queries at full workload scale (Census, DMV).
//!
//! PGM cannot process workloads of this size at all (Fig 5); only SAM rows
//! are reported, exactly as in the paper.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::{render_table, Percentiles};
use serde_json::json;

/// Run Table 1 for one single-relation bundle.
fn one(bundle: &Bundle, ctx: ExpContext) -> (Percentiles, f64, f64) {
    let (train_n, _, _) = workload_sizes(ctx.scale);
    let workload = single_workload(bundle, train_n, ctx.seed);
    let cfg = sam_config(ctx.scale, ctx.seed);
    let (trained, train_secs) = timed(|| fit_sam(bundle, &workload, &cfg));
    let ((generated, _), gen_secs) = timed(|| {
        trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds")
    });
    // Evaluate a 1000-query sample of the input constraints (paper protocol
    // for large workloads).
    let sample = &workload.queries[..workload.len().min(1000)];
    let qe = q_errors_on(&generated, sample);
    (Percentiles::from_values(&qe), train_secs, gen_secs)
}

/// Run Table 1.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let census = census_bundle(ctx.scale, ctx.seed);
    let dmv = dmv_bundle(ctx.scale, ctx.seed);
    let (pc, ct, cg) = one(&census, ctx);
    let (pd, dt, dg) = one(&dmv, ctx);

    let text = render_table(
        "Table 1: Q-Error of input queries — full scale",
        &[
            "Cen.Med", "Cen.75", "Cen.90", "Cen.Mean", "DMV.Med", "DMV.75", "DMV.90", "DMV.Mean",
        ],
        &[(
            "SAM".into(),
            vec![
                pc.median, pc.p75, pc.p90, pc.mean, pd.median, pd.p75, pd.p90, pd.mean,
            ],
        )],
    );
    vec![ExperimentResult {
        id: "table1".into(),
        title: "Q-Error of input queries — full scale".into(),
        text,
        json: json!({
            "census": {"median": pc.median, "p75": pc.p75, "p90": pc.p90, "mean": pc.mean,
                        "train_seconds": ct, "generate_seconds": cg},
            "dmv": {"median": pd.median, "p75": pd.p75, "p90": pd.p90, "mean": pd.mean,
                     "train_seconds": dt, "generate_seconds": dg},
            "paper": {"census": {"median": 1.27, "p75": 1.65, "p90": 2.50, "mean": 1.80},
                       "dmv": {"median": 1.15, "p75": 1.48, "p90": 2.28, "mean": 2.10}},
        }),
    }]
}
