//! Figure 7: database recovery vs. workload size on Census — more
//! cardinality constraints carry more information about the joint
//! distribution, so cross entropy and test Q-Error both fall as the
//! workload grows.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::Percentiles;
use serde_json::json;

/// Run the Figure 7 sweep.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = census_bundle(ctx.scale, ctx.seed);
    let (train_n, _, test_n) = workload_sizes(ctx.scale);
    let full = single_workload(&bundle, train_n, ctx.seed);
    let test = test_single_workload(&bundle, test_n, ctx.seed);
    let table = bundle.db.tables()[0].name().to_string();

    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut text = String::from("Census — recovery vs workload size\n");
    text.push_str(&format!(
        "{:>10}  {:>14}  {:>12}  {:>12}\n",
        "#queries", "cross entropy", "test med Q", "test mean Q"
    ));
    let mut series = Vec::new();
    for f in fractions {
        let n = ((train_n as f64) * f) as usize;
        let w = full.truncate(n.max(10));
        let trained = fit_sam(&bundle, &w, &sam_config(ctx.scale, ctx.seed));
        let (db, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let h = table_cross_entropy(&bundle.db, &db, &table);
        let p = Percentiles::from_values(&q_errors_on(&db, &test.queries));
        text.push_str(&format!(
            "{:>10}  {:>14.2}  {:>12.2}  {:>12.2}\n",
            w.len(),
            h,
            p.median,
            p.mean
        ));
        series.push(json!({
            "queries": w.len(), "cross_entropy": h,
            "test_median_qerror": p.median, "test_mean_qerror": p.mean,
        }));
    }

    vec![ExperimentResult {
        id: "fig7".into(),
        title: "Database recovery vs workload size (Census)".into(),
        text,
        json: json!({
            "series": series,
            "paper_note": "paper: both cross entropy and test Q-Error fall from 20K to 100K queries",
        }),
    }]
}
