//! Table 2: Q-Error of very few input queries (Census 12, DMV 7) —
//! the only regime where PGM completes, so the only apples-to-apples
//! single-relation fidelity comparison. PGM solves a near-exact system
//! here; SAM's approximate fit is expected to be comparable but not
//! uniformly better (paper F2).

use super::ExperimentResult;
use crate::harness::*;
use sam_ar::TrainConfig;
use sam_core::{JoinKeyStrategy, SamConfig};
use sam_metrics::{render_table, Percentiles};
use serde_json::json;

/// SAM hyperparameters for tiny workloads: same architecture, many more
/// epochs (each epoch is a couple of batches).
fn sam_config_tiny(scale: Scale, seed: u64) -> SamConfig {
    let mut cfg = sam_config(scale, seed);
    cfg.train = TrainConfig {
        epochs: 300,
        batch_size: 8,
        lr: 1e-2,
        seed,
        ..Default::default()
    };
    cfg
}

fn one(bundle: &Bundle, n_queries: usize, ctx: ExpContext) -> (Percentiles, Percentiles) {
    let workload = single_workload(bundle, n_queries, ctx.seed);

    // PGM.
    let pgm = fit_pgm_single(bundle, &workload, &pgm_config(ctx.scale));
    let pgm_db = pgm_generate_single(bundle, &pgm, ctx.seed);
    let pgm_qe = q_errors_on(&pgm_db, &workload.queries);

    // SAM.
    let trained = fit_sam(bundle, &workload, &sam_config_tiny(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let sam_qe = q_errors_on(&sam_db, &workload.queries);

    (
        Percentiles::from_values(&pgm_qe),
        Percentiles::from_values(&sam_qe),
    )
}

/// Run Table 2.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let census = census_bundle(ctx.scale, ctx.seed);
    let dmv = dmv_bundle(ctx.scale, ctx.seed);
    let (pgm_c, sam_c) = one(&census, 12, ctx);
    let (pgm_d, sam_d) = one(&dmv, 7, ctx);

    let header = &[
        "Cen.Med", "Cen.75", "Cen.90", "Cen.Mean", "DMV.Med", "DMV.75", "DMV.90", "DMV.Mean",
    ];
    let text = render_table(
        "Table 2: Q-Error of very few input queries (Census 12, DMV 7)",
        header,
        &[
            (
                "PGM".into(),
                vec![
                    pgm_c.median,
                    pgm_c.p75,
                    pgm_c.p90,
                    pgm_c.mean,
                    pgm_d.median,
                    pgm_d.p75,
                    pgm_d.p90,
                    pgm_d.mean,
                ],
            ),
            (
                "SAM".into(),
                vec![
                    sam_c.median,
                    sam_c.p75,
                    sam_c.p90,
                    sam_c.mean,
                    sam_d.median,
                    sam_d.p75,
                    sam_d.p90,
                    sam_d.mean,
                ],
            ),
        ],
    );
    let pack =
        |p: &Percentiles| json!({"median": p.median, "p75": p.p75, "p90": p.p90, "mean": p.mean});
    vec![ExperimentResult {
        id: "table2".into(),
        title: "Q-Error of very few input queries".into(),
        text,
        json: json!({
            "census": {"pgm": pack(&pgm_c), "sam": pack(&sam_c)},
            "dmv": {"pgm": pack(&pgm_d), "sam": pack(&sam_d)},
            "paper": {
                "census": {"pgm": {"median": 1.05, "p75": 1.65, "p90": 6.99, "mean": 2.61},
                            "sam": {"median": 1.32, "p75": 1.56, "p90": 1.63, "mean": 1.84}},
                "dmv": {"pgm": {"median": 1.00, "p75": 1.04, "p90": 1.06, "mean": 1.02},
                         "sam": {"median": 2.81, "p75": 8.41, "p90": 15.69, "mean": 5.97}}},
        }),
    }]
}
