//! Figure 8: database recovery vs. workload *coverage ratio* on Census —
//! equal-sized workloads whose literals cover only a centred fraction of
//! each column's domain. Lower coverage starves the model of information
//! about the uncovered space, degrading recovery.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::Percentiles;
use sam_query::{label_workload, WorkloadGenerator};
use serde_json::json;

/// Run the Figure 8 sweep.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = census_bundle(ctx.scale, ctx.seed);
    let (train_n, _, test_n) = workload_sizes(ctx.scale);
    let test = test_single_workload(&bundle, test_n, ctx.seed);
    let table = bundle.db.tables()[0].name().to_string();

    let ratios = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut text = String::from("Census — recovery vs workload coverage ratio\n");
    text.push_str(&format!(
        "{:>8}  {:>14}  {:>12}  {:>12}\n",
        "ratio", "cross entropy", "test med Q", "test mean Q"
    ));
    let mut series = Vec::new();
    for r in ratios {
        let mut gen = WorkloadGenerator::new(&bundle.db, ctx.seed);
        let queries = gen.coverage_workload(&table, train_n, r);
        let w = label_workload(&bundle.db, queries).expect("labelling succeeds");
        let trained = fit_sam(&bundle, &w, &sam_config(ctx.scale, ctx.seed));
        let (db, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let h = table_cross_entropy(&bundle.db, &db, &table);
        let p = Percentiles::from_values(&q_errors_on(&db, &test.queries));
        text.push_str(&format!(
            "{:>8.1}  {:>14.2}  {:>12.2}  {:>12.2}\n",
            r, h, p.median, p.mean
        ));
        series.push(json!({
            "coverage_ratio": r, "cross_entropy": h,
            "test_median_qerror": p.median, "test_mean_qerror": p.mean,
        }));
    }

    vec![ExperimentResult {
        id: "fig8".into(),
        title: "Database recovery vs workload coverage ratio (Census)".into(),
        text,
        json: json!({
            "series": series,
            "paper_note": "paper: cross entropy and mean test Q-Error both fall as coverage rises",
        }),
    }]
}
