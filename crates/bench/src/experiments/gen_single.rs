//! §5.6 (single-relation half): database generation time — SAM's batched
//! parallel sampling (Algorithm 1) vs. PGM's sequential junction-tree
//! sampling, at the full table size of Census and DMV.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use serde_json::json;

fn one(bundle: &Bundle, pgm_n: usize, ctx: ExpContext) -> (f64, f64) {
    let (train_n, _, _) = workload_sizes(ctx.scale);
    let train = single_workload(bundle, train_n, ctx.seed);

    let trained = fit_sam(bundle, &train, &sam_config(ctx.scale, ctx.seed));
    let (_, sam_secs) = timed(|| {
        trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds")
    });

    let pgm = fit_pgm_single(bundle, &train.truncate(pgm_n), &pgm_config(ctx.scale));
    let (_, pgm_secs) = timed(|| pgm_generate_single(bundle, &pgm, ctx.seed));
    (sam_secs, pgm_secs)
}

/// Run the §5.6 single-relation generation-time comparison.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let census = census_bundle(ctx.scale, ctx.seed);
    let dmv = dmv_bundle(ctx.scale, ctx.seed);
    let (sam_c, pgm_c) = one(&census, 12, ctx);
    let (sam_d, pgm_d) = one(&dmv, 7, ctx);

    let text = format!(
        "Single-relation generation time (seconds)\n\
         {:>8}  {:>10}  {:>10}\n\
         {:>8}  {:>10.3}  {:>10.3}\n\
         {:>8}  {:>10.3}  {:>10.3}\n",
        "", "SAM", "PGM", "Census", sam_c, pgm_c, "DMV", sam_d, pgm_d
    );
    vec![ExperimentResult {
        id: "gen_single".into(),
        title: "Single-relation generation time (§5.6)".into(),
        text,
        json: json!({
            "census": {"sam_seconds": sam_c, "pgm_seconds": pgm_c},
            "dmv": {"sam_seconds": sam_d, "pgm_seconds": pgm_d},
            "paper": {"census": {"sam": "1.2 s (GPU)", "pgm": "19 s"},
                       "dmv": {"sam": "2.7 min (GPU)", "pgm": "0.9 h"}},
        }),
    }]
}
