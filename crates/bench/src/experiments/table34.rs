//! Tables 3 & 4: Q-Error of input queries on IMDB.
//!
//! Table 3 — full-scale workload: SAM vs. SAM without Group-and-Merge
//! (evaluated on a 1000-query sample of the inputs, paper protocol).
//! Table 4 — a 400-query workload small enough for PGM: all three methods.
//! The headline: Group-and-Merge slashes tail error on join queries.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::{render_table, Percentiles};
use serde_json::json;

fn pack(p: &Percentiles) -> serde_json::Value {
    json!({"median": p.median, "p75": p.p75, "p90": p.p90, "mean": p.mean, "max": p.max})
}

fn row(p: &Percentiles) -> Vec<f64> {
    vec![p.median, p.p75, p.p90, p.mean, p.max]
}

/// Run Tables 3 and 4.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = imdb_bundle(ctx.scale, ctx.seed);
    let (_, train_multi, _) = workload_sizes(ctx.scale);
    let header = &["Median", "75th", "90th", "Mean", "Max"];
    let mut out = Vec::new();

    // ---- Table 3: full-scale workload, SAM vs SAM w/o GaM ----
    {
        let workload = multi_workload(&bundle, train_multi, ctx.seed);
        let cfg = sam_config(ctx.scale, ctx.seed);
        let trained = fit_sam(&bundle, &workload, &cfg);
        let sample = &workload.queries[..workload.len().min(1000)];

        let (with_gam, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let (without_gam, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::PairwiseViews,
            ))
            .expect("generation succeeds");

        let p_with = Percentiles::from_values(&q_errors_on(&with_gam, sample));
        let p_wo = Percentiles::from_values(&q_errors_on(&without_gam, sample));

        let text = render_table(
            "Table 3: Q-Error of input queries on IMDB — full scale",
            header,
            &[
                ("SAM w/o Group-and-Merge".into(), row(&p_wo)),
                ("SAM".into(), row(&p_with)),
            ],
        );
        out.push(ExperimentResult {
            id: "table3".into(),
            title: "Q-Error of input queries on IMDB — full scale".into(),
            text,
            json: json!({
                "sam": pack(&p_with), "sam_wo_gam": pack(&p_wo),
                "paper": {"sam": {"median": 1.57, "p75": 2.61, "p90": 5.74, "mean": 14.85, "max": 3142.0},
                           "sam_wo_gam": {"median": 2.00, "p75": 4.68, "p90": 26.0, "mean": 2602.0, "max": 2e6}},
            }),
        });
    }

    // ---- Table 4: 400 input queries, all three methods ----
    {
        let workload = multi_workload(&bundle, 400, ctx.seed ^ 1);
        let cfg = sam_config(ctx.scale, ctx.seed);
        let trained = fit_sam(&bundle, &workload, &cfg);
        let (with_gam, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::GroupAndMerge,
            ))
            .expect("generation succeeds");
        let (without_gam, _) = trained
            .generate(&generation_config(
                ctx.scale,
                ctx.seed,
                JoinKeyStrategy::PairwiseViews,
            ))
            .expect("generation succeeds");
        let pgm = fit_pgm_multi(&bundle, &workload, &pgm_config(ctx.scale));
        let pgm_db = pgm
            .generate(bundle.db.schema(), &bundle.stats, ctx.seed)
            .expect("pgm generation succeeds");

        let p_pgm = Percentiles::from_values(&q_errors_on(&pgm_db, &workload.queries));
        let p_wo = Percentiles::from_values(&q_errors_on(&without_gam, &workload.queries));
        let p_with = Percentiles::from_values(&q_errors_on(&with_gam, &workload.queries));

        let text = render_table(
            "Table 4: Q-Error of 400 input queries on IMDB",
            header,
            &[
                ("PGM".into(), row(&p_pgm)),
                ("SAM w/o Group-and-Merge".into(), row(&p_wo)),
                ("SAM".into(), row(&p_with)),
            ],
        );
        out.push(ExperimentResult {
            id: "table4".into(),
            title: "Q-Error of 400 input queries on IMDB".into(),
            text,
            json: json!({
                "pgm": pack(&p_pgm), "sam_wo_gam": pack(&p_wo), "sam": pack(&p_with),
                "paper": {"pgm": {"median": 1.55, "p75": 149.5, "p90": 6202.0, "mean": 1e5, "max": 1e7},
                           "sam_wo_gam": {"median": 1.98, "p75": 5.24, "p90": 24.34, "mean": 2e4, "max": 4e6},
                           "sam": {"median": 1.77, "p75": 3.58, "p90": 8.60, "mean": 17.97, "max": 5040.0}},
            }),
        });
    }

    out
}
