//! Design-choice ablations (DESIGN.md): straight-through vs. soft
//! Gumbel-Softmax, progressive samples per query, and intervalization
//! on/off — each measured by training loss and input-query fidelity on the
//! Census workload.

use super::ExperimentResult;
use crate::harness::*;
use sam_ar::TrainConfig;
use sam_core::{JoinKeyStrategy, Sam, SamConfig};
use sam_metrics::Percentiles;
use serde_json::json;

struct Variant {
    name: &'static str,
    mutate: fn(&mut SamConfig),
}

fn run_variant(
    bundle: &Bundle,
    workload: &sam_query::Workload,
    ctx: ExpContext,
    v: &Variant,
) -> (f32, Percentiles, f64) {
    let mut config = sam_config(ctx.scale, ctx.seed);
    (v.mutate)(&mut config);
    let (trained, secs) = timed(|| {
        Sam::fit(bundle.db.schema(), &bundle.stats, workload, &config).expect("training succeeds")
    });
    let last_loss = *trained.report.epoch_losses.last().unwrap_or(&f32::NAN);
    let (db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let qe = q_errors_on(&db, &workload.queries[..workload.len().min(500)]);
    (last_loss, Percentiles::from_values(&qe), secs)
}

/// Run the ablation sweep.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = census_bundle(ctx.scale, ctx.seed);
    let (train_n, _, _) = workload_sizes(ctx.scale);
    let workload = single_workload(&bundle, (train_n / 2).max(200), ctx.seed);

    let variants: Vec<Variant> = vec![
        Variant {
            name: "baseline (ST gumbel, S=1, intervalized)",
            mutate: |_| {},
        },
        Variant {
            name: "soft gumbel (no straight-through)",
            mutate: |c| c.train.straight_through = false,
        },
        Variant {
            name: "high temperature (tau=2)",
            mutate: |c| c.train.temperature = 2.0,
        },
        Variant {
            name: "4 progressive samples per query",
            mutate: |c| c.train.samples_per_query = 4,
        },
        Variant {
            name: "no intervalization (raw numeric domains)",
            mutate: |c| c.encoding.intervalize_threshold = usize::MAX,
        },
        Variant {
            name: "ResMADE (residual blocks)",
            mutate: |c| c.model.residual = true,
        },
        Variant {
            name: "Transformer backbone (d=32, 2 blocks)",
            mutate: |c| c.model.transformer = Some(sam_ar::TransformerDims::default()),
        },
        Variant {
            name: "half epochs",
            mutate: |c: &mut SamConfig| {
                c.train = TrainConfig {
                    epochs: (c.train.epochs / 2).max(1),
                    ..c.train.clone()
                }
            },
        },
    ];

    let mut text = String::from("Census — training/fidelity ablations\n");
    text.push_str(&format!(
        "{:<46} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        "variant", "loss", "med Q", "p90 Q", "mean Q", "train s"
    ));
    let mut results = Vec::new();
    for v in &variants {
        let (loss, p, secs) = run_variant(&bundle, &workload, ctx, v);
        text.push_str(&format!(
            "{:<46} {:>10.4} {:>9.2} {:>9.2} {:>9.2} {:>9.1}\n",
            v.name, loss, p.median, p.p90, p.mean, secs
        ));
        results.push(json!({
            "variant": v.name, "final_loss": loss, "median_qerror": p.median,
            "p90_qerror": p.p90, "mean_qerror": p.mean, "train_seconds": secs,
        }));
    }

    vec![ExperimentResult {
        id: "ablations".into(),
        title: "Design-choice ablations (DESIGN.md)".into(),
        text,
        json: json!({ "variants": results }),
    }]
}
