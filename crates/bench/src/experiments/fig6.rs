//! Figure 6: generation time and median input Q-Error vs. the number of
//! full-outer-join samples drawn on IMDB. Generation time grows linearly;
//! the Q-Error plateaus once the sample covers the joint distribution —
//! the paper's justification for sampling only a small FOJ fraction.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_metrics::Percentiles;
use serde_json::json;

/// Run the Figure 6 sweep.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = imdb_bundle(ctx.scale, ctx.seed);
    let (_, train_multi, _) = workload_sizes(ctx.scale);
    let workload = multi_workload(&bundle, train_multi, ctx.seed);
    let trained = fit_sam(&bundle, &workload, &sam_config(ctx.scale, ctx.seed));
    let eval_sample = &workload.queries[..workload.len().min(400)];

    let sweep: Vec<usize> = match ctx.scale {
        Scale::Smoke => vec![500, 1_000, 2_000, 4_000],
        Scale::Quick => vec![1_000, 2_500, 5_000, 10_000, 20_000, 40_000],
        Scale::Full => vec![5_000, 10_000, 25_000, 50_000, 100_000, 200_000],
    };

    let mut text = String::from("IMDB — generation time & median input Q-Error vs #FOJ samples\n");
    text.push_str(&format!(
        "{:>10}  {:>12}  {:>10}  {:>10}\n",
        "samples", "gen time (s)", "median Q", "mean Q"
    ));
    let mut series = Vec::new();
    for &k in &sweep {
        let ((db, report), secs) = timed(|| {
            trained
                .generate(&GenerationConfig {
                    foj_samples: k,
                    batch: 512,
                    seed: ctx.seed,
                    strategy: JoinKeyStrategy::GroupAndMerge,
                })
                .expect("generation succeeds")
        });
        let p = Percentiles::from_values(&q_errors_on(&db, eval_sample));
        text.push_str(&format!(
            "{:>10}  {:>12.3}  {:>10.2}  {:>10.2}\n",
            k, secs, p.median, p.mean
        ));
        series.push(json!({
            "foj_samples": k, "generation_seconds": secs,
            "median_qerror": p.median, "mean_qerror": p.mean,
            "reported_seconds": report.wall_seconds,
        }));
    }

    vec![ExperimentResult {
        id: "fig6".into(),
        title: "Generation time and Q-Error vs FOJ sample count (IMDB)".into(),
        text,
        json: json!({
            "series": series,
            "paper_note": "paper: linear time, Q-Error plateau after ~120M samples (~1/20000 of FOJ)",
        }),
    }]
}
