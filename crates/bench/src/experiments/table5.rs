//! Table 5: Q-Error of *unseen* test queries (Census, DMV) — database
//! recovery. Under the fixed processing time frame PGM only digests a
//! handful of queries (12 / 7, as in the paper), while SAM digests the full
//! workload; the generalisation gap follows.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::{render_table, Percentiles};
use serde_json::json;

fn one(bundle: &Bundle, pgm_n: usize, ctx: ExpContext) -> (Percentiles, Percentiles) {
    let (train_n, _, test_n) = workload_sizes(ctx.scale);
    let train = single_workload(bundle, train_n, ctx.seed);
    let test = test_single_workload(bundle, test_n, ctx.seed);

    // PGM: only the prefix it can process in the fixed time frame.
    let pgm_train = train.truncate(pgm_n);
    let pgm = fit_pgm_single(bundle, &pgm_train, &pgm_config(ctx.scale));
    let pgm_db = pgm_generate_single(bundle, &pgm, ctx.seed);
    let pgm_qe = q_errors_on(&pgm_db, &test.queries);

    // SAM: the full workload.
    let trained = fit_sam(bundle, &train, &sam_config(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let sam_qe = q_errors_on(&sam_db, &test.queries);

    (
        Percentiles::from_values(&pgm_qe),
        Percentiles::from_values(&sam_qe),
    )
}

/// Run Table 5.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let census = census_bundle(ctx.scale, ctx.seed);
    let dmv = dmv_bundle(ctx.scale, ctx.seed);
    let (pgm_c, sam_c) = one(&census, 12, ctx);
    let (pgm_d, sam_d) = one(&dmv, 7, ctx);

    let text = render_table(
        "Table 5: Q-Error of test queries",
        &[
            "Cen.Med", "Cen.75", "Cen.90", "Cen.Mean", "DMV.Med", "DMV.75", "DMV.90", "DMV.Mean",
        ],
        &[
            (
                "PGM".into(),
                vec![
                    pgm_c.median,
                    pgm_c.p75,
                    pgm_c.p90,
                    pgm_c.mean,
                    pgm_d.median,
                    pgm_d.p75,
                    pgm_d.p90,
                    pgm_d.mean,
                ],
            ),
            (
                "SAM".into(),
                vec![
                    sam_c.median,
                    sam_c.p75,
                    sam_c.p90,
                    sam_c.mean,
                    sam_d.median,
                    sam_d.p75,
                    sam_d.p90,
                    sam_d.mean,
                ],
            ),
        ],
    );
    let pack =
        |p: &Percentiles| json!({"median": p.median, "p75": p.p75, "p90": p.p90, "mean": p.mean});
    vec![ExperimentResult {
        id: "table5".into(),
        title: "Q-Error of test queries (database recovery)".into(),
        text,
        json: json!({
            "census": {"pgm": pack(&pgm_c), "sam": pack(&sam_c)},
            "dmv": {"pgm": pack(&pgm_d), "sam": pack(&sam_d)},
            "paper": {
                "census": {"pgm": {"median": 46.0, "p75": 872.0, "p90": 3461.0, "mean": 1097.0},
                            "sam": {"median": 1.31, "p75": 1.76, "p90": 2.70, "mean": 1.97}},
                "dmv": {"pgm": {"median": 646.0, "p75": 1e5, "p90": 1e6, "mean": 4e5},
                         "sam": {"median": 1.16, "p75": 1.54, "p90": 3.11, "mean": 4.05}}},
        }),
    }]
}
