//! Table 7: cross entropy (Eq 1, bits) between the generated and original
//! relations — Census, DMV, and IMDB's primary-key relation `title`.
//! Smaller is statistically closer.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::render_table;
use serde_json::json;

fn single(bundle: &Bundle, pgm_n: usize, ctx: ExpContext) -> (f64, f64) {
    let (train_n, _, _) = workload_sizes(ctx.scale);
    let train = single_workload(bundle, train_n, ctx.seed);
    let table = bundle.db.tables()[0].name().to_string();

    let pgm = fit_pgm_single(bundle, &train.truncate(pgm_n), &pgm_config(ctx.scale));
    let pgm_db = pgm_generate_single(bundle, &pgm, ctx.seed);
    let h_pgm = table_cross_entropy(&bundle.db, &pgm_db, &table);

    let trained = fit_sam(bundle, &train, &sam_config(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let h_sam = table_cross_entropy(&bundle.db, &sam_db, &table);
    (h_pgm, h_sam)
}

/// Run Table 7.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let census = census_bundle(ctx.scale, ctx.seed);
    let dmv = dmv_bundle(ctx.scale, ctx.seed);
    let (pgm_c, sam_c) = single(&census, 12, ctx);
    let (pgm_d, sam_d) = single(&dmv, 7, ctx);

    // IMDB: cross entropy of the pk relation `title`.
    let imdb = imdb_bundle(ctx.scale, ctx.seed);
    let (_, train_multi, _) = workload_sizes(ctx.scale);
    let train = multi_workload(&imdb, train_multi, ctx.seed);
    let trained = fit_sam(&imdb, &train, &sam_config(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let sam_i = table_cross_entropy(&imdb.db, &sam_db, "title");
    let pgm = fit_pgm_multi(&imdb, &train.truncate(400), &pgm_config(ctx.scale));
    let pgm_db = pgm
        .generate(imdb.db.schema(), &imdb.stats, ctx.seed)
        .expect("pgm generation succeeds");
    let pgm_i = table_cross_entropy(&imdb.db, &pgm_db, "title");

    let text = render_table(
        "Table 7: Cross entropy of the generated relation (bits)",
        &["Census", "DMV", "IMDB(title)"],
        &[
            ("PGM".into(), vec![pgm_c, pgm_d, pgm_i]),
            ("SAM".into(), vec![sam_c, sam_d, sam_i]),
        ],
    );
    vec![ExperimentResult {
        id: "table7".into(),
        title: "Cross entropy of the generated relation".into(),
        text,
        json: json!({
            "pgm": {"census": pgm_c, "dmv": pgm_d, "imdb": pgm_i},
            "sam": {"census": sam_c, "dmv": sam_d, "imdb": sam_i},
            "paper": {"pgm": {"census": 29.37, "dmv": 39.49, "imdb": 12.45},
                       "sam": {"census": 28.68, "dmv": 23.22, "imdb": 6.14}},
        }),
    }]
}
