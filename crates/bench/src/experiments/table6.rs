//! Table 6: Q-Error of JOB-light-style queries on IMDB — joins of up to
//! five relations the models never trained on; the sharpest probe of
//! whether the generated base relations recover the *joint* full-outer-join
//! distribution. PGM sees the 400-query prefix (its fixed-frame budget),
//! SAM the full workload.

use super::ExperimentResult;
use crate::harness::*;
use sam_core::JoinKeyStrategy;
use sam_metrics::{render_table, Percentiles};
use serde_json::json;

fn pack(p: &Percentiles) -> serde_json::Value {
    json!({"median": p.median, "p75": p.p75, "p90": p.p90, "mean": p.mean, "max": p.max})
}

/// Run Table 6.
pub fn run(ctx: ExpContext) -> Vec<ExperimentResult> {
    let bundle = imdb_bundle(ctx.scale, ctx.seed);
    let (_, train_multi, _) = workload_sizes(ctx.scale);
    let train = multi_workload(&bundle, train_multi, ctx.seed);
    let job_light = job_light_workload(&bundle, 70, ctx.seed);

    // SAM (full workload), with and without Group-and-Merge.
    let trained = fit_sam(&bundle, &train, &sam_config(ctx.scale, ctx.seed));
    let (sam_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::GroupAndMerge,
        ))
        .expect("generation succeeds");
    let (sam_wo_db, _) = trained
        .generate(&generation_config(
            ctx.scale,
            ctx.seed,
            JoinKeyStrategy::PairwiseViews,
        ))
        .expect("generation succeeds");

    // PGM (400-query prefix).
    let pgm = fit_pgm_multi(&bundle, &train.truncate(400), &pgm_config(ctx.scale));
    let pgm_db = pgm
        .generate(bundle.db.schema(), &bundle.stats, ctx.seed)
        .expect("pgm generation succeeds");

    let p_pgm = Percentiles::from_values(&q_errors_on(&pgm_db, &job_light.queries));
    let p_wo = Percentiles::from_values(&q_errors_on(&sam_wo_db, &job_light.queries));
    let p_sam = Percentiles::from_values(&q_errors_on(&sam_db, &job_light.queries));

    let row = |p: &Percentiles| vec![p.median, p.p75, p.p90, p.mean, p.max];
    let text = render_table(
        "Table 6: Q-Error of JOB-light queries on IMDB",
        &["Median", "75th", "90th", "Mean", "Max"],
        &[
            ("PGM".into(), row(&p_pgm)),
            ("SAM w/o Group-and-Merge".into(), row(&p_wo)),
            ("SAM".into(), row(&p_sam)),
        ],
    );
    vec![ExperimentResult {
        id: "table6".into(),
        title: "Q-Error of JOB-light queries on IMDB".into(),
        text,
        json: json!({
            "pgm": pack(&p_pgm), "sam_wo_gam": pack(&p_wo), "sam": pack(&p_sam),
            "paper": {"pgm": {"median": 232.7, "p75": 6e4, "p90": 1e6, "mean": 9e5, "max": 3e7},
                       "sam_wo_gam": {"median": 38.67, "p75": 1e5, "p90": 3e6, "mean": 5e6, "max": 3e8},
                       "sam": {"median": 2.29, "p75": 5.39, "p90": 27.78, "mean": 2776.0, "max": 2e5}},
        }),
    }]
}
