//! # sam-bench — experiment harness for the SAM reproduction
//!
//! One binary per table/figure of the paper's §5 (see DESIGN.md's
//! experiment index), Criterion microbenchmarks, and the shared harness.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::*;
