//! Shared experiment harness: scales, dataset bundles, method drivers.
//!
//! Every experiment binary accepts `--scale {smoke|quick|full}` and
//! `--seed N`. `smoke` is a seconds-level sanity run, `quick` (default)
//! reproduces every trend in minutes on a laptop CPU, `full` pushes sizes
//! toward the paper's (hours; still CPU-bound — see DESIGN.md scale
//! substitution).

use sam_ar::{ArModelConfig, EncodingOptions, TrainConfig};
use sam_core::{GenerationConfig, JoinKeyStrategy, Sam, SamConfig, TrainedSam};
use sam_metrics::q_error;
use sam_pgm::PgmConfig;
use sam_query::{evaluate_cardinality, label_workload, Query, Workload, WorkloadGenerator};
use sam_storage::{Database, DatabaseStats};
use std::time::Instant;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: tiny data, tiny models (CI sanity).
    Smoke,
    /// Minutes: every trend reproducible (default).
    Quick,
    /// Toward paper sizes (hours on CPU).
    Full,
}

impl Scale {
    /// Parse from a CLI token.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Parsed CLI context.
#[derive(Debug, Clone, Copy)]
pub struct ExpContext {
    /// Chosen scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

/// Parse `--scale` / `--seed` from `std::env::args`.
pub fn parse_args() -> ExpContext {
    let mut scale = Scale::Quick;
    let mut seed = 0u64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(s) = args.get(i + 1).and_then(|s| Scale::parse(s)) {
                    scale = s;
                }
                i += 2;
            }
            "--seed" => {
                if let Some(s) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = s;
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    ExpContext { scale, seed }
}

/// A dataset ready for experiments.
pub struct Bundle {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// The target database (the "customer data" SAM never sees directly).
    pub db: Database,
    /// Its metadata summary (what SAM does see).
    pub stats: DatabaseStats,
}

/// Synthetic Census at the given scale.
pub fn census_bundle(scale: Scale, seed: u64) -> Bundle {
    let rows = match scale {
        Scale::Smoke => 2_000,
        Scale::Quick => 12_000,
        Scale::Full => 48_000,
    };
    let db = sam_datasets::census(rows, seed);
    let stats = DatabaseStats::from_database(&db);
    Bundle {
        name: "Census",
        db,
        stats,
    }
}

/// Synthetic DMV at the given scale.
pub fn dmv_bundle(scale: Scale, seed: u64) -> Bundle {
    let rows = match scale {
        Scale::Smoke => 3_000,
        Scale::Quick => 20_000,
        Scale::Full => 120_000,
    };
    let db = sam_datasets::dmv(rows, seed);
    let stats = DatabaseStats::from_database(&db);
    Bundle {
        name: "DMV",
        db,
        stats,
    }
}

/// Synthetic IMDB (JOB-light star) at the given scale.
pub fn imdb_bundle(scale: Scale, seed: u64) -> Bundle {
    let titles = match scale {
        Scale::Smoke => 400,
        Scale::Quick => 2_000,
        Scale::Full => 8_000,
    };
    let db = sam_datasets::imdb(&sam_datasets::ImdbConfig {
        titles,
        seed,
        ..Default::default()
    });
    let stats = DatabaseStats::from_database(&db);
    Bundle {
        name: "IMDB",
        db,
        stats,
    }
}

/// Workload sizes per scale: (train single, train multi, test).
pub fn workload_sizes(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Smoke => (300, 300, 100),
        Scale::Quick => (4_000, 4_000, 400),
        Scale::Full => (20_000, 20_000, 1_000),
    }
}

/// SAM hyperparameters per scale.
pub fn sam_config(scale: Scale, seed: u64) -> SamConfig {
    let (hidden, epochs, batch) = match scale {
        Scale::Smoke => (vec![32], 4, 32),
        Scale::Quick => (vec![64, 64], 10, 64),
        Scale::Full => (vec![128, 128], 20, 64),
    };
    SamConfig {
        model: ArModelConfig {
            hidden,
            seed,
            residual: false,
            transformer: None,
        },
        train: TrainConfig {
            epochs,
            batch_size: batch,
            lr: 5e-3,
            seed,
            ..Default::default()
        },
        encoding: EncodingOptions::default(),
    }
}

/// PGM solver settings per scale.
pub fn pgm_config(scale: Scale) -> PgmConfig {
    match scale {
        Scale::Smoke => PgmConfig {
            max_iters: 1_500,
            tol: 1e-7,
            max_variables: 50_000,
        },
        _ => PgmConfig::default(),
    }
}

/// Generation settings per scale.
pub fn generation_config(scale: Scale, seed: u64, strategy: JoinKeyStrategy) -> GenerationConfig {
    let foj_samples = match scale {
        Scale::Smoke => 2_000,
        Scale::Quick => 20_000,
        Scale::Full => 100_000,
    };
    GenerationConfig {
        foj_samples,
        batch: 512,
        seed,
        strategy,
    }
}

/// Train SAM on a labelled workload and report wall time.
pub fn fit_sam(bundle: &Bundle, workload: &Workload, config: &SamConfig) -> TrainedSam {
    Sam::fit(bundle.db.schema(), &bundle.stats, workload, config)
        .expect("SAM training succeeds on harness workloads")
}

/// Build + label a single-relation workload on the bundle's only table.
pub fn single_workload(bundle: &Bundle, n: usize, seed: u64) -> Workload {
    let table = bundle.db.tables()[0].name().to_string();
    let mut gen = WorkloadGenerator::new(&bundle.db, seed);
    let queries = gen.single_workload(&table, n);
    label_workload(&bundle.db, queries).expect("labelling succeeds")
}

/// Build + label an MSCN-style multi-relation workload (0–2 joins).
pub fn multi_workload(bundle: &Bundle, n: usize, seed: u64) -> Workload {
    let mut gen = WorkloadGenerator::new(&bundle.db, seed);
    let queries = gen.multi_workload(n, 2);
    label_workload(&bundle.db, queries).expect("labelling succeeds")
}

/// Q-Errors of a query set evaluated against a generated database, with the
/// true cardinalities taken from the labels.
pub fn q_errors_on(generated: &Database, workload: &[sam_query::LabeledQuery]) -> Vec<f64> {
    workload
        .iter()
        .map(|lq| {
            let got = evaluate_cardinality(generated, &lq.query).unwrap_or(0) as f64;
            q_error(got, lq.cardinality as f64)
        })
        .collect()
}

/// Label `queries` on `truth_db` and measure their Q-Error on `generated`.
pub fn q_errors_fresh(truth_db: &Database, generated: &Database, queries: &[Query]) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            let truth = evaluate_cardinality(truth_db, q).unwrap_or(0) as f64;
            let got = evaluate_cardinality(generated, q).unwrap_or(0) as f64;
            q_error(got, truth)
        })
        .collect()
}

/// Time a closure in seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Build + label a deduplicated *test* workload of single-relation queries
/// from an independent seed stream (paper: "ensured to have no duplicate
/// query").
pub fn test_single_workload(bundle: &Bundle, n: usize, seed: u64) -> Workload {
    let table = bundle.db.tables()[0].name().to_string();
    let mut gen = WorkloadGenerator::new(&bundle.db, seed ^ 0xD15EA5E);
    // Overdraw, dedup, truncate.
    let queries = sam_query::dedup_queries(gen.single_workload(&table, n * 3));
    label_workload(&bundle.db, queries.into_iter().take(n).collect()).expect("labelling succeeds")
}

/// Build + label a JOB-light-style test workload (joins of 2..=6 tables).
pub fn job_light_workload(bundle: &Bundle, n: usize, seed: u64) -> Workload {
    let mut gen = WorkloadGenerator::new(&bundle.db, seed ^ 0x10B);
    let queries = sam_query::dedup_queries(gen.job_light_style(n * 2));
    label_workload(&bundle.db, queries.into_iter().take(n).collect()).expect("labelling succeeds")
}

/// Fit the single-relation PGM baseline on a bundle.
pub fn fit_pgm_single(
    bundle: &Bundle,
    workload: &Workload,
    config: &sam_pgm::PgmConfig,
) -> sam_pgm::TablePgm {
    let schema = bundle.db.tables()[0].schema().clone();
    sam_pgm::fit_single_pgm(
        &schema,
        &bundle.stats.table(0).columns,
        bundle.stats.table(0).num_rows,
        &workload.queries,
        config,
    )
}

/// Generate a single-relation database from a fitted PGM.
pub fn pgm_generate_single(bundle: &Bundle, pgm: &sam_pgm::TablePgm, seed: u64) -> Database {
    let schema = bundle.db.tables()[0].schema().clone();
    let rows = bundle.stats.table(0).num_rows as usize;
    Database::single(pgm.generate(&schema, rows, seed))
}

/// Fit the multi-relation PGM baseline (per-view models).
pub fn fit_pgm_multi(
    bundle: &Bundle,
    workload: &Workload,
    config: &sam_pgm::PgmConfig,
) -> sam_pgm::MultiPgm {
    let sizes = sam_pgm::view_sizes_from_database(&bundle.db, &workload.queries)
        .expect("view sizes computable");
    sam_pgm::fit_multi_pgm(
        bundle.db.schema(),
        &bundle.stats,
        &workload.queries,
        &sizes,
        config,
    )
    .expect("multi PGM fit succeeds")
}

/// Cross entropy (Eq 1, bits) between the original and generated versions
/// of `table` (for IMDB use `title`, the paper's choice).
pub fn table_cross_entropy(original: &Database, generated: &Database, table: &str) -> f64 {
    sam_metrics::pairwise_cross_entropy(
        original.table_by_name(table).expect("table exists"),
        generated.table_by_name(table).expect("table exists"),
        32,
    )
}
