//! Inference-backend microbenchmarks: the f32 reference kernel vs the
//! blocked half-precision and per-block-quantised int8 kernels, at the raw
//! forward level (single-row and batch-major), end-to-end through
//! progressive sampling, plus the prefix-trie sharing ablation (fresh trie
//! per batch vs a warm persistent trie). Numbers from this bench feed the
//! backend table in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sam_ar::{
    estimate_cardinality, estimate_cardinality_batch, estimate_cardinality_batch_shared, ArModel,
    ArModelConfig, ArSchema, EncodingOptions, PrefixTrie,
};
use sam_nn::{BackendKind, Made, MadeConfig, Matrix, ParamStore};
use sam_query::{Query, WorkloadGenerator};
use sam_storage::DatabaseStats;

const BACKENDS: [BackendKind; 3] = [
    BackendKind::ReferenceF32,
    BackendKind::BlockedF16,
    BackendKind::Int8Blocked,
];

/// Raw `FrozenMade::forward` throughput on a MADE big enough for the
/// blocked kernel's cache behaviour to matter (width 520, hidden 256×2).
fn bench_forward(c: &mut Criterion) {
    let domains = vec![64usize, 128, 200, 128];
    let width: usize = domains.iter().sum();
    let mut store = ParamStore::new();
    let made = Made::new(
        MadeConfig::new(domains.clone(), vec![256, 256], 11),
        &mut store,
    );

    // One-hot rows, like progressive sampling produces: mostly zero input,
    // which the blocked kernel skips per 64-wide block.
    let rows = 64;
    let mut rng = StdRng::seed_from_u64(3);
    let mut input = Matrix::zeros(rows, width);
    for r in 0..rows {
        let mut off = 0;
        for &d in &domains {
            input.set(r, off + rng.gen_range(0..d), 1.0);
            off += d;
        }
    }

    let mut group = c.benchmark_group("frozen_forward_backend");
    group.sample_size(30);
    for kind in BACKENDS {
        let frozen = made.freeze_with(&store, kind);
        let mut out = Matrix::zeros(rows, width);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| frozen.forward_into(&input, &mut out))
        });
    }
    group.finish();
}

/// Batch-major forward throughput: one matrix–matrix call over S live
/// sample rows, per kernel × batch size — the inner loop of batch-major
/// estimation. A ~30%-dead live mask mimics mid-query path die-off.
fn bench_forward_batch(c: &mut Criterion) {
    let domains = vec![64usize, 128, 200, 128];
    let width: usize = domains.iter().sum();
    let mut store = ParamStore::new();
    let made = Made::new(
        MadeConfig::new(domains.clone(), vec![256, 256], 11),
        &mut store,
    );

    let mut group = c.benchmark_group("frozen_forward_batch");
    group.sample_size(30);
    for kind in BACKENDS {
        let frozen = made.freeze_with(&store, kind);
        for rows in [8usize, 64, 256] {
            let mut rng = StdRng::seed_from_u64(5);
            let mut input = Matrix::zeros(rows, width);
            for r in 0..rows {
                let mut off = 0;
                for &d in &domains {
                    input.set(r, off + rng.gen_range(0..d), 1.0);
                    off += d;
                }
            }
            let live: Vec<bool> = (0..rows).map(|r| r % 3 != 2).collect();
            let mut out = Matrix::zeros(rows, width);
            group.bench_with_input(BenchmarkId::new(kind.name(), rows), &rows, |b, _| {
                b.iter(|| frozen.forward_batch_into(&input, Some(&live), &mut out))
            });
        }
    }
    group.finish();
}

fn census_model() -> (ArModel, Vec<Query>) {
    let db = sam_datasets::census(2_000, 2);
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 2);
    let queries = gen.single_workload("census", 64);
    let schema =
        ArSchema::build(db.schema(), &stats, &queries, &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema,
        &ArModelConfig {
            hidden: vec![128, 128],
            seed: 2,
            residual: false,
            transformer: None,
        },
    );
    (model, queries)
}

/// End-to-end estimate latency per backend: forward passes dominate, so
/// this is the user-visible f32-vs-f16 number.
fn bench_estimate(c: &mut Criterion) {
    let (model, queries) = census_model();
    let mut group = c.benchmark_group("estimate_backend");
    group.sample_size(20);
    for kind in BACKENDS {
        let model = model.freeze().with_backend(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| estimate_cardinality(&model, &queries[0], 256, &mut rng).unwrap())
        });
    }
    group.finish();
}

/// Trie-sharing ablation: the same 8-query batch estimated with a fresh
/// trie every call (within-batch dedup only) vs a persistent warm trie
/// (cross-batch conditional reuse — the serving steady state).
fn bench_trie_sharing(c: &mut Criterion) {
    let (model, queries) = census_model();
    let model = model.freeze();
    let requests: Vec<(&Query, usize)> = queries.iter().take(8).map(|q| (q, 64)).collect();
    let seeds: Vec<u64> = (0..requests.len() as u64).collect();
    let fresh_rngs =
        || -> Vec<StdRng> { seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect() };

    let mut group = c.benchmark_group("batch_estimate_trie");
    group.sample_size(20);
    group.bench_function("fresh_trie", |b| {
        b.iter(|| {
            let mut rngs = fresh_rngs();
            estimate_cardinality_batch(&model, &requests, &mut rngs)
        })
    });
    group.bench_function("warm_trie", |b| {
        let mut trie = PrefixTrie::new();
        let mut rngs = fresh_rngs();
        estimate_cardinality_batch_shared(&model, &requests, &mut rngs, &mut trie);
        b.iter(|| {
            let mut rngs = fresh_rngs();
            estimate_cardinality_batch_shared(&model, &requests, &mut rngs, &mut trie)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_forward_batch,
    bench_estimate,
    bench_trie_sharing
);
criterion_main!(benches);
