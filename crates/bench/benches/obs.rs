//! Observability overhead: the instrumentation must be invisible when
//! nothing is listening (the <2 % acceptance bar on the serving path).
//!
//! * `estimate/silent` vs `estimate/spanned_silent` — the serving-path
//!   workload (a micro-batched estimate), bare vs wrapped in a `span!`,
//!   with the silent sink and tracing off. The two must be within noise:
//!   an idle `span!` is two relaxed atomic loads and a branch, and the
//!   matmul counters are one cached-handle `fetch_add` per kernel call.
//! * `primitives/*` — the raw cost of one counter bump, one gauge set, and
//!   one inert `span!`, to make regressions attributable.
//! * `estimate/traced` — the same workload with the in-memory collector
//!   on, to show what tracing itself costs when enabled.
//! * `flight/*` — the always-on flight recorder's per-request cost: one
//!   `record` (the estimate-path event), one `record` under the sampling
//!   arithmetic of 1% quality shadow-scoring, and a 50-event `recent` read
//!   (the `GET /debug/flight` path, which must not stall writers).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{
    estimate_cardinality_batch, ArModel, ArModelConfig, ArSchema, EncodingOptions, FrozenModel,
};
use sam_obs::{CacheOutcome, Endpoint, FlightRecorder};
use sam_query::{Query, WorkloadGenerator};
use sam_storage::DatabaseStats;

const SAMPLES: usize = 64;
const BATCH: usize = 8;

fn build_model() -> (FrozenModel, Vec<Query>) {
    let db = sam_datasets::census(1_000, 5);
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 5);
    let queries = gen.single_workload("census", BATCH);
    let schema =
        ArSchema::build(db.schema(), &stats, &queries, &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema,
        &ArModelConfig {
            hidden: vec![32, 32],
            seed: 5,
            residual: false,
            transformer: None,
        },
    )
    .freeze();
    (model, queries)
}

fn run_batch(model: &FrozenModel, queries: &[Query]) -> f64 {
    let requests: Vec<(&Query, usize)> = queries.iter().map(|q| (q, SAMPLES)).collect();
    let mut rngs: Vec<StdRng> = (0..queries.len())
        .map(|i| StdRng::seed_from_u64(i as u64))
        .collect();
    estimate_cardinality_batch(model, &requests, &mut rngs)
        .into_iter()
        .map(|r| r.unwrap())
        .sum()
}

fn bench_estimate_overhead(c: &mut Criterion) {
    let (model, queries) = build_model();
    sam_obs::set_log_level(sam_obs::LogLevel::Silent);
    sam_obs::disable_tracing();

    let mut group = c.benchmark_group("estimate");
    group.bench_function("silent", |b| b.iter(|| run_batch(&model, &queries)));
    group.bench_function("spanned_silent", |b| {
        b.iter(|| {
            let _span = sam_obs::span!("bench_estimate", batch = BATCH);
            run_batch(&model, &queries)
        })
    });
    sam_obs::enable_tracing();
    group.bench_function("traced", |b| {
        b.iter(|| {
            let _span = sam_obs::span!("bench_estimate", batch = BATCH);
            run_batch(&model, &queries)
        })
    });
    sam_obs::disable_tracing();
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    sam_obs::set_log_level(sam_obs::LogLevel::Silent);
    sam_obs::disable_tracing();
    let counter = sam_obs::counter("bench_counter_total");
    let gauge = sam_obs::gauge("bench_gauge");

    let mut group = c.benchmark_group("primitives");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("gauge_set", |b| b.iter(|| gauge.set(1.5)));
    group.bench_function("inert_span", |b| {
        b.iter(|| sam_obs::span!("bench_span", value = 7))
    });
    group.finish();
}

fn bench_flight_recorder(c: &mut Criterion) {
    let recorder = FlightRecorder::new(512);
    let mut group = c.benchmark_group("flight");
    let mut trace = 0u64;
    group.bench_function("record", |b| {
        b.iter(|| {
            trace += 1;
            recorder.record(
                trace,
                Endpoint::Estimate,
                1,
                4,
                CacheOutcome::Miss,
                1_250_000,
                200,
            );
        })
    });
    // The estimate path's extra arithmetic when 1% quality sampling is on:
    // a counter-stride decision per request on top of the flight event.
    let sample_counter = std::sync::atomic::AtomicU64::new(0);
    group.bench_function("record_with_1pct_sampling", |b| {
        b.iter(|| {
            trace += 1;
            recorder.record(
                trace,
                Endpoint::Estimate,
                1,
                4,
                CacheOutcome::Miss,
                1_250_000,
                200,
            );
            let sampled = sample_counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                .is_multiple_of(100);
            criterion::black_box(sampled)
        })
    });
    group.bench_function("recent_50", |b| {
        b.iter(|| criterion::black_box(recorder.recent(50).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimate_overhead,
    bench_primitives,
    bench_flight_recorder
);
criterion_main!(benches);
