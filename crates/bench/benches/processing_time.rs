//! Figure 5 microbenchmark: workload-processing cost per method.
//!
//! `sam_train_epoch/*` measures one DPS epoch at growing workload sizes
//! (expect linear scaling); `pgm_fit/*` measures the PGM build+solve
//! (expect super-linear growth in both time and unknowns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sam_ar::{train, ArModel, ArModelConfig, ArSchema, EncodingOptions, TrainConfig};
use sam_pgm::{fit_single_pgm, PgmConfig};
use sam_query::{label_workload, WorkloadGenerator};
use sam_storage::DatabaseStats;

fn bench_processing(c: &mut Criterion) {
    let db = sam_datasets::census(2_000, 1);
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 1);
    let full = label_workload(&db, gen.single_workload("census", 512)).unwrap();

    let mut group = c.benchmark_group("sam_train_epoch");
    group.sample_size(10);
    for n in [64usize, 128, 256, 512] {
        let workload = full.truncate(n);
        let queries: Vec<_> = workload.iter().map(|lq| lq.query.clone()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let schema =
                    ArSchema::build(db.schema(), &stats, &queries, &EncodingOptions::default())
                        .unwrap();
                let mut model = ArModel::new(
                    schema,
                    &ArModelConfig {
                        hidden: vec![32],
                        seed: 0,
                        residual: false,
                        transformer: None,
                    },
                );
                train(
                    &mut model,
                    &workload,
                    &TrainConfig {
                        epochs: 1,
                        batch_size: 64,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pgm_fit");
    group.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        let workload = full.truncate(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                fit_single_pgm(
                    db.tables()[0].schema(),
                    &stats.table(0).columns,
                    stats.table(0).num_rows,
                    &workload.queries,
                    &PgmConfig {
                        max_iters: 500,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_processing);
criterion_main!(benches);
