//! Progressive-sampling inference microbenchmark: cardinality-estimate
//! latency vs sample-path count (the variance/latency ablation DESIGN.md
//! lists), plus the intervalization ablation — a raw large-domain column vs
//! an intervalized one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{estimate_cardinality, ArModel, ArModelConfig, ArSchema, EncodingOptions};
use sam_query::WorkloadGenerator;
use sam_storage::DatabaseStats;

fn bench_inference(c: &mut Criterion) {
    let db = sam_datasets::census(2_000, 2);
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 2);
    let queries = gen.single_workload("census", 64);

    let schema =
        ArSchema::build(db.schema(), &stats, &queries, &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema,
        &ArModelConfig {
            hidden: vec![32],
            seed: 2,
            residual: false,
            transformer: None,
        },
    )
    .freeze();

    let mut group = c.benchmark_group("progressive_sampling_paths");
    group.sample_size(20);
    for paths in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(paths), &paths, |b, &paths| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| estimate_cardinality(&model, &queries[0], paths, &mut rng).unwrap())
        });
    }
    group.finish();

    // Intervalization ablation: same data, raw vs intervalized numeric
    // domains. Raw keeps every distinct value (bigger model, slower steps).
    let mut group = c.benchmark_group("intervalization_ablation");
    group.sample_size(10);
    for (label, threshold) in [("intervalized", 64usize), ("raw_domains", usize::MAX)] {
        let schema = ArSchema::build(
            db.schema(),
            &stats,
            &queries,
            &EncodingOptions {
                intervalize_threshold: threshold,
            },
        )
        .unwrap();
        let width: usize = schema.domain_sizes().iter().sum();
        let model = ArModel::new(
            schema,
            &ArModelConfig {
                hidden: vec![32],
                seed: 2,
                residual: false,
                transformer: None,
            },
        )
        .freeze();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}_width{width}")),
            &width,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| estimate_cardinality(&model, &queries[0], 64, &mut rng).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
