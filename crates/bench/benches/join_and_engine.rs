//! Substrate microbenchmarks: full-outer-join materialisation / counting,
//! exact cardinality evaluation, and the execution engine's scan + hash
//! join path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sam_engine::Engine;
use sam_query::{evaluate_cardinality, Query, WorkloadGenerator};
use sam_storage::{foj_size, materialize_foj};

fn bench_join_and_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("foj");
    group.sample_size(10);
    for titles in [100usize, 300] {
        let db = sam_datasets::imdb(&sam_datasets::ImdbConfig {
            titles,
            seed: 1,
            mean_fanout: 1.5,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("materialize", titles), &titles, |b, _| {
            b.iter(|| materialize_foj(&db))
        });
        group.bench_with_input(BenchmarkId::new("count_only", titles), &titles, |b, _| {
            b.iter(|| foj_size(&db))
        });
    }
    group.finish();

    let db = sam_datasets::imdb(&sam_datasets::ImdbConfig {
        titles: 1_000,
        seed: 1,
        ..Default::default()
    });
    let mut gen = WorkloadGenerator::new(&db, 5);
    let queries = gen.multi_workload(16, 2);
    let five_way = Query::join(
        vec![
            "title".into(),
            "cast_info".into(),
            "movie_companies".into(),
            "movie_info".into(),
            "movie_keyword".into(),
        ],
        vec![],
    );

    let mut group = c.benchmark_group("evaluator");
    group.sample_size(20);
    group.bench_function("mscn_batch_16", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| evaluate_cardinality(&db, q).unwrap())
                .sum::<u64>()
        })
    });
    group.bench_function("five_way_join", |b| {
        b.iter(|| evaluate_cardinality(&db, &five_way).unwrap())
    });
    group.finish();

    let engine = Engine::new(&db);
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("scan_filter", |b| {
        b.iter(|| engine.count(&queries[0]).unwrap())
    });
    group.bench_function("five_way_hash_join", |b| {
        b.iter(|| engine.count(&five_way).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_join_and_engine);
criterion_main!(benches);
