//! Figure 6 / §5.6 microbenchmarks: generation-stage throughput — batched
//! tuple sampling (Algorithm 1), inverse probability weighting + scaling
//! (Algorithm 2), and Group-and-Merge key assignment (Algorithm 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sam_ar::{sample_model_rows, ArModel, ArModelConfig, ArSchema, EncodingOptions};
use sam_core::{assemble_database, assign_keys_group_merge, weigh_samples, JoinKeyStrategy};
use sam_storage::DatabaseStats;

fn bench_generation(c: &mut Criterion) {
    let db = sam_datasets::imdb(&sam_datasets::ImdbConfig {
        titles: 500,
        seed: 1,
        ..Default::default()
    });
    let stats = DatabaseStats::from_database(&db);
    let schema = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema.clone(),
        &ArModelConfig {
            hidden: vec![32],
            seed: 1,
            residual: false,
            transformer: None,
        },
    )
    .freeze();

    let mut group = c.benchmark_group("alg1_sampling");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sample_model_rows(&model, n, 256, 7))
        });
    }
    group.finish();

    let rows = sample_model_rows(&model, 8192, 256, 7);

    let mut group = c.benchmark_group("alg2_weighting");
    group.sample_size(20);
    for n in [1024usize, 4096, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| weigh_samples(&schema, &rows[..n]))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alg3_group_and_merge");
    group.sample_size(20);
    for n in [1024usize, 4096, 8192] {
        let w = weigh_samples(&schema, &rows[..n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| assign_keys_group_merge(&schema, &rows[..n], &w))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("end_to_end_assembly");
    group.sample_size(10);
    for strategy in [
        JoinKeyStrategy::GroupAndMerge,
        JoinKeyStrategy::PairwiseViews,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| b.iter(|| assemble_database(db.schema(), &schema, &rows[..4096], s, 3)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
