//! Serving-path microbenchmark: sequential per-request inference vs the
//! micro-batched estimator (`sam_ar::estimate_cardinality_batch`) that
//! `sam-serve`'s worker pool runs.
//!
//! Three arrival mixes, each at batch sizes 1 / 4 / 8 / 16:
//!
//! * `hot_query` — every co-batched request is the same (query, seed,
//!   samples), the repeated-plan pattern of estimator services. Prefix
//!   deduplication coalesces identical sample paths, so the fused batch
//!   costs one request; throughput scales ~linearly with batch size.
//! * `hot_set4` — requests round-robin over 4 hot queries; each query's
//!   copies coalesce, giving ~batch/4 × throughput.
//! * `distinct` — worst case, every request a different query; paths
//!   diverge after the first few columns, so fusing buys little on one
//!   core (row-parallel forwards recover the gap on multicore).
//!
//! Batched results are bit-identical to sequential ones by construction
//! (each request keeps its own seeded RNG; see `estimate_cardinality_batch`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{
    estimate_cardinality, estimate_cardinality_batch, ArModel, ArModelConfig, ArSchema,
    EncodingOptions, FrozenModel,
};
use sam_query::{Query, WorkloadGenerator};
use sam_storage::DatabaseStats;

const SAMPLES: usize = 64;

fn build_model() -> (FrozenModel, Vec<Query>) {
    let db = sam_datasets::census(2_000, 2);
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 2);
    let queries = gen.single_workload("census", 32);
    let schema =
        ArSchema::build(db.schema(), &stats, &queries, &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema,
        &ArModelConfig {
            hidden: vec![32],
            seed: 2,
            residual: false,
            transformer: None,
        },
    )
    .freeze();
    (model, queries)
}

/// Maps the b-th request of a batch to a query index.
type QueryPick = fn(usize) -> usize;

fn bench_serving(c: &mut Criterion) {
    let (model, queries) = build_model();
    let scenarios: [(&str, QueryPick); 3] = [
        ("hot_query", |_| 0),
        ("hot_set4", |b| b % 4),
        ("distinct", |b| b),
    ];

    for (scenario, pick) in scenarios {
        let mut group = c.benchmark_group(format!("serving_{scenario}"));
        group.sample_size(10);
        for batch in [1usize, 4, 8, 16] {
            let reqs: Vec<(&Query, usize)> =
                (0..batch).map(|b| (&queries[pick(b)], SAMPLES)).collect();
            // The serving default: deterministic estimates, one seed.
            let seeds: Vec<u64> = (0..batch).map(|_| 0).collect();

            group.bench_with_input(
                BenchmarkId::new("sequential", batch),
                &batch,
                |bencher, _| {
                    bencher.iter(|| {
                        reqs.iter()
                            .zip(&seeds)
                            .map(|((q, n), &s)| {
                                let mut rng = StdRng::seed_from_u64(s);
                                estimate_cardinality(&model, q, *n, &mut rng).unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("micro_batched", batch),
                &batch,
                |bencher, _| {
                    bencher.iter(|| {
                        let mut rngs: Vec<StdRng> =
                            seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
                        estimate_cardinality_batch(&model, &reqs, &mut rngs)
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
