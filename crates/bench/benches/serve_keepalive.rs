//! HTTP transport benchmark: 64 sequential estimates over **one keep-alive
//! connection** vs **one fresh connection per request**.
//!
//! The request is identical in both modes and hits the estimate cache after
//! the warm-up, so the measured difference is the transport: TCP connect +
//! per-connection thread spawn + teardown, paid 64× in per-connection mode
//! and once in keep-alive mode. This is the workload shape of an estimator
//! service inside a query optimizer — thousands of small sequential calls —
//! and the reason `sam-serve` holds connections open by default.

use criterion::{criterion_group, criterion_main, Criterion};
use sam_core::{Sam, SamConfig, TrainedSam};
use sam_query::{label_workload, WorkloadGenerator};
use sam_serve::{ServeConfig, Server};
use sam_storage::{paper_example, DatabaseStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

const REQUESTS: usize = 64;
const BODY: &str =
    r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 64, "seed": 1}"#;

fn tiny_model() -> TrainedSam {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: vec![12],
            seed: 3,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

/// The full request as one buffer, so it leaves in a single write — a
/// multi-write request would trip Nagle + delayed ACK and measure the
/// client's sloppiness instead of the server's transport.
fn request_bytes(close: bool) -> Vec<u8> {
    format!(
        "POST /estimate HTTP/1.1\r\nHost: bench\r\nConnection: {}\r\nContent-Length: {}\r\n\r\n{BODY}",
        if close { "close" } else { "keep-alive" },
        BODY.len()
    )
    .into_bytes()
}

/// Read one `Content-Length`-framed response off a keep-alive connection.
fn read_framed(reader: &mut BufReader<&TcpStream>) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "unexpected response: {line}");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
}

/// 64 sequential estimates over a single keep-alive connection.
fn keepalive_burst(addr: SocketAddr, request: &[u8]) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(&stream);
    for _ in 0..REQUESTS {
        (&stream).write_all(request).expect("write request");
        read_framed(&mut reader);
    }
}

/// 64 sequential estimates, each on its own connection.
fn per_connection_burst(addr: SocketAddr, request: &[u8]) {
    for _ in 0..REQUESTS {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.write_all(request).expect("write request");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        assert!(raw.starts_with(b"HTTP/1.1 200"), "unexpected response");
    }
}

fn bench_keepalive(c: &mut Criterion) {
    let server = Server::start(ServeConfig::default()).expect("start server");
    server.registry().insert("demo", tiny_model());
    let addr = server.addr();
    let keep_alive = request_bytes(false);
    let close = request_bytes(true);
    // Warm the estimate cache so both modes measure transport, not inference.
    per_connection_burst(addr, &close);

    let mut group = c.benchmark_group("serve_keepalive");
    group.sample_size(20);
    group.bench_function("keep_alive_64", |b| {
        b.iter(|| keepalive_burst(addr, &keep_alive))
    });
    group.bench_function("per_connection_64", |b| {
        b.iter(|| per_connection_burst(addr, &close))
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_keepalive);
criterion_main!(benches);
