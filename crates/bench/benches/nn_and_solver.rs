//! Neural-substrate and PGM-solver microbenchmarks: matmul kernels, MADE
//! forward passes, one DPS tape step, and the non-negative least-squares
//! solver's scaling in system size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sam_nn::{Made, MadeConfig, Matrix, ParamStore};
use sam_pgm::{solve_nonneg_least_squares, LinearSystem};

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 31 + cc * 17) % 97) as f32 * 0.01);
        let b = Matrix::from_fn(n, n, |r, cc| ((r * 13 + cc * 7) % 89) as f32 * 0.01);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();

    let mut store = ParamStore::new();
    let made = Made::new(
        MadeConfig {
            domain_sizes: vec![32; 12],
            hidden: vec![64, 64],
            seed: 0,
            residual: false,
        },
        &mut store,
    );
    let frozen = made.freeze(&store);
    let mut group = c.benchmark_group("made_forward");
    group.sample_size(20);
    for batch in [16usize, 64, 256] {
        let input = Matrix::zeros(batch, frozen.total_width());
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| frozen.forward(&input))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("nnls_solver");
    group.sample_size(10);
    for vars in [256usize, 1024, 4096] {
        // A banded consistent system: x sums to 1 in blocks plus point
        // constraints — representative of clique systems.
        let mut system = LinearSystem::new(vars);
        let block = 16;
        for start in (0..vars).step_by(block) {
            let coefs = (start..(start + block).min(vars))
                .map(|v| (v, 1.0))
                .collect();
            system.push(coefs, 1.0, 4.0);
        }
        for v in (0..vars).step_by(7) {
            system.push(vec![(v, 1.0)], 1.0 / block as f64, 1.0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| solve_nonneg_least_squares(&system, 300, 1e-9))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
