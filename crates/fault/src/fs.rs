//! The filesystem seam: [`FaultFs`] is the narrow trait every durability
//! path writes through, [`RealFs`] the production passthrough, and
//! [`FaultyFs`] the deterministic fault-injecting wrapper.

use crate::plan::{FaultKind, FaultPlan};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open writable file. `write_all`/`flush` come from [`Write`];
/// `sync_data` is the durability barrier (fsync).
pub trait FaultFile: Write + Send {
    /// Flush OS buffers to stable storage (fsync / `fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem operations durability code is allowed to use. Narrow by
/// design: everything the journal, CSV persistence, and checkpoints need —
/// and nothing more, so a fault plan can cover the whole surface.
pub trait FaultFs: Send + Sync + std::fmt::Debug {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>>;
    /// Open (creating if absent) a file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FaultFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` onto `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Entries (files and directories) directly under `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Size of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Truncate (or extend with zeros) a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

// ------------------------------------------------------------------ RealFs

/// Production filesystem: direct `std::fs` passthrough, no overhead beyond
/// the vtable call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl FaultFile for std::fs::File {
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
}

impl FaultFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        ))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ----------------------------------------------------------------- FaultyFs

/// Shared mutable core of a [`FaultyFs`]: the plan and the operation
/// counter every opened file reports into.
#[derive(Debug)]
struct Injector {
    plan: Mutex<FaultPlan>,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl Injector {
    /// Account one write-ish operation and return the fault to inject, if
    /// the plan schedules one at this index.
    fn next_op(&self) -> Option<FaultKind> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        let fault = self
            .plan
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .fault_at(n);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }
}

fn storage_full(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        format!("injected ENOSPC on {what}"),
    )
}

/// A fault-injecting filesystem: wraps [`RealFs`] and executes a
/// [`FaultPlan`] over the instance-global sequence of write and sync
/// operations. Reads, renames, and metadata always succeed (those failure
/// modes are modelled by crash points instead). Cheap to clone; clones
/// share the plan and the operation counter.
#[derive(Debug, Clone)]
pub struct FaultyFs {
    inner: RealFs,
    injector: Arc<Injector>,
}

impl FaultyFs {
    /// A faulty filesystem executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyFs {
            inner: RealFs,
            injector: Arc::new(Injector {
                plan: Mutex::new(plan),
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Replace the active plan (the operation counter keeps running).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.injector.plan.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Write/sync operations performed so far (successful or faulted).
    pub fn ops(&self) -> u64 {
        self.injector.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injector.injected.load(Ordering::SeqCst)
    }
}

/// A file handle that consults the shared injector on every write/sync.
struct FaultyFile {
    inner: Box<dyn FaultFile>,
    injector: Arc<Injector>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.injector.next_op() {
            None => self.inner.write(buf),
            Some(FaultKind::WriteError) => Err(storage_full("write")),
            Some(FaultKind::TornWrite { keep_bytes }) => {
                let keep = keep_bytes.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    let _ = self.inner.flush();
                }
                Err(storage_full("torn write"))
            }
            // A scheduled sync error on a write degrades to plain failure.
            Some(FaultKind::SyncError) => Err(storage_full("write")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl FaultFile for FaultyFile {
    fn sync_data(&mut self) -> io::Result<()> {
        match self.injector.next_op() {
            Some(FaultKind::SyncError) | Some(FaultKind::WriteError) => Err(storage_full("fsync")),
            Some(FaultKind::TornWrite { .. }) => Err(storage_full("fsync")),
            None => self.inner.sync_data(),
        }
    }
}

impl FaultFs for FaultyFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            injector: Arc::clone(&self.injector),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_append(path)?,
            injector: Arc::clone(&self.injector),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

// ------------------------------------------------------------ atomic write

/// Durably write `bytes` to `path` via the tmp+fsync+rename commit
/// protocol: write `<path>.tmp`, fsync it, rename onto `path`. A crash at
/// any instant leaves either the old file (or nothing) or the complete new
/// file — never a torn mix. Crash points: `atomic.tmp_written` (tmp
/// complete, not yet durable), `atomic.pre_rename` (durable, not yet
/// visible).
pub fn write_atomic(fs: &dyn FaultFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut file = fs.create(&tmp)?;
        file.write_all(bytes)?;
        file.flush()?;
        crate::crash::crash_point("atomic.tmp_written");
        file.sync_data()?;
    }
    crate::crash::crash_point("atomic.pre_rename");
    fs.rename(&tmp, path)
}

/// The `.tmp` sibling used by [`write_atomic`] (and swept by
/// [`crate::sweep_tmp_files`] after a crash).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultPlan};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sam_fault_fs_{tag}_{}", std::process::id()))
    }

    #[test]
    fn real_fs_round_trips() {
        let dir = temp_path("real");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("x.txt");
        {
            let mut f = fs.create(&path).unwrap();
            f.write_all(b"hello").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        assert_eq!(fs.file_len(&path).unwrap(), 5);
        fs.truncate(&path, 2).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"he");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nth_write_fails_with_enospc() {
        let dir = temp_path("nth");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FaultyFs::new(FaultPlan::fail_nth(1, FaultKind::WriteError));
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"first").unwrap(); // op 0: ok
        let err = f.write_all(b"second").unwrap_err(); // op 1: ENOSPC
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(fs.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let dir = temp_path("torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FaultyFs::new(FaultPlan::fail_nth(
            0,
            FaultKind::TornWrite { keep_bytes: 3 },
        ));
        let path = dir.join("t");
        let mut f = fs.create(&path).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"abc", "exactly the torn prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_survives_write_faults() {
        let dir = temp_path("atomic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.json");
        std::fs::write(&path, b"old").unwrap();
        // Fault on the tmp write: the visible file must keep its old bytes.
        let fs = FaultyFs::new(FaultPlan::fail_nth(0, FaultKind::WriteError));
        assert!(write_atomic(&fs, &path, b"new contents").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        // No fault: the new bytes land.
        fs.set_plan(FaultPlan::none());
        write_atomic(&fs, &path, b"new contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
