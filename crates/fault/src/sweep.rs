//! Startup sweep for orphaned temporary files.
//!
//! Every atomic write in this workspace goes tmp → fsync → rename. A crash
//! between the tmp write and the rename leaves a `*.tmp` orphan that will
//! never be renamed; on the next startup the owning subsystem calls
//! [`sweep_tmp_files`] on its directory to delete them before replaying.

use crate::fs::FaultFs;
use std::io;
use std::path::Path;

/// Remove every `*.tmp` file under `dir`, recursing into subdirectories.
/// Returns the number of files removed. A missing `dir` counts as empty.
/// Removal errors on individual files are propagated — a sweep that cannot
/// clean up must not silently report success.
pub fn sweep_tmp_files(fs: &dyn FaultFs, dir: &Path) -> io::Result<usize> {
    if !fs.exists(dir) {
        return Ok(0);
    }
    let mut removed = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs.list_dir(&current)? {
            if entry.is_dir() {
                stack.push(entry);
            } else if entry.extension().is_some_and(|e| e == "tmp") {
                fs.remove_file(&entry)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sam_fault_sweep_{tag}_{}", std::process::id()))
    }

    #[test]
    fn sweeps_tmp_files_recursively() {
        let dir = temp_dir("rec");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("keep.csv"), b"a,b\n").unwrap();
        std::fs::write(dir.join("orphan.csv.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("sub/ckpt.json.tmp"), b"partial").unwrap();
        let removed = sweep_tmp_files(&RealFs, &dir).unwrap();
        assert_eq!(removed, 2);
        assert!(dir.join("keep.csv").exists());
        assert!(!dir.join("orphan.csv.tmp").exists());
        assert!(!dir.join("sub/ckpt.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty() {
        let dir = temp_dir("missing_nonexistent");
        assert_eq!(sweep_tmp_files(&RealFs, &dir).unwrap(), 0);
    }
}
