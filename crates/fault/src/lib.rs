//! # sam-fault — deterministic fault injection for durability paths
//!
//! Every path in this workspace that must survive a crash — the serve-side
//! job journal, persisted result CSVs, model checkpoints, training
//! snapshots — does its I/O through the [`FaultFs`] abstraction in this
//! crate instead of calling `std::fs` directly. In production the
//! implementation is [`RealFs`], a zero-overhead passthrough. In tests it
//! is [`FaultyFs`], which executes a deterministic, seedable
//! [`FaultPlan`]: *fail the Nth write with `ENOSPC`*, *tear this write
//! after k bytes*, and so on — the failure modes a full disk or a power
//! cut actually produce, reproduced bit-for-bit on every run.
//!
//! Orthogonally, [`crash_point`] marks the instants where a hard crash is
//! interesting (between a tmp write and its rename, between an fsync and
//! the commit record…). Each call site is a named point; the crash-matrix
//! test harness enumerates the registered names, re-runs the scenario in a
//! subprocess with `SAM_FAULT_CRASH=<name>` set, and the process exits with
//! [`CRASH_EXIT_CODE`] at exactly that point — a real `process::exit`, so
//! no destructor gets to "helpfully" flush buffers the way an unwinding
//! panic would. Production cost of an unarmed crash point is one relaxed
//! atomic load.
//!
//! [`crc32`] is the IEEE CRC-32 used by the journal's per-record framing
//! and the checkpoint files; [`sweep_tmp_files`] removes `*.tmp` orphans a
//! crash may have left between tmp-write and rename.

#![warn(missing_docs)]

pub mod crash;
pub mod crc;
pub mod fs;
pub mod plan;
pub mod sweep;

pub use crash::{armed_crash_point, crash_point, CRASH_ENV, CRASH_EXIT_CODE};
pub use crc::crc32;
pub use fs::{tmp_sibling, write_atomic, FaultFile, FaultFs, FaultyFs, RealFs};
pub use plan::{FaultKind, FaultPlan, ScheduledFault};
pub use sweep::sweep_tmp_files;

use std::sync::Arc;

/// The production filesystem: a shared [`RealFs`] handle. Durability code
/// defaults to this when the caller does not inject a filesystem.
pub fn real_fs() -> Arc<dyn FaultFs> {
    Arc::new(RealFs)
}
