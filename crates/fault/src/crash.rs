//! Named crash points: deterministic "the power died *here*" markers.
//!
//! Durability code calls [`crash_point`] at every instant where a hard
//! crash is semantically distinct (tmp file written but not renamed, data
//! fsynced but commit record unwritten, …). Normally the call reads one
//! cached `Option` and returns immediately. When the process is started
//! with the environment variable [`CRASH_ENV`] (`SAM_FAULT_CRASH`) set to
//! a point's name, reaching that point calls
//! `std::process::exit(`[`CRASH_EXIT_CODE`]`)` — an immediate exit, not a
//! panic, so no `Drop` impl gets to flush half-written buffers on the way
//! out. That is what makes subprocess crash-matrix tests honest: the
//! on-disk state the parent inspects is exactly what a kill at that
//! instant leaves behind.

use std::sync::OnceLock;

/// Environment variable naming the crash point to trigger.
pub const CRASH_ENV: &str = "SAM_FAULT_CRASH";

/// Exit code of a triggered crash point, chosen to be distinguishable from
/// test-harness failures (101) and clean exits (0).
pub const CRASH_EXIT_CODE: i32 = 86;

/// The crash point this process is armed to trigger, if any (read once
/// from [`CRASH_ENV`] and cached).
pub fn armed_crash_point() -> Option<&'static str> {
    static NAME: OnceLock<Option<String>> = OnceLock::new();
    NAME.get_or_init(|| std::env::var(CRASH_ENV).ok().filter(|s| !s.is_empty()))
        .as_deref()
}

/// Mark a named crash point. Exits the process with [`CRASH_EXIT_CODE`]
/// iff the environment armed exactly this name; otherwise a no-op.
pub fn crash_point(name: &str) {
    if armed_crash_point() == Some(name) {
        eprintln!("sam-fault: crash point {name:?} reached, exiting {CRASH_EXIT_CODE}");
        std::process::exit(CRASH_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        // The test runner never sets SAM_FAULT_CRASH, so this must return.
        crash_point("test.point.that.does.not.exist");
        assert_eq!(armed_crash_point(), None);
    }
}
