//! IEEE CRC-32 (the polynomial used by gzip/zip/PNG), table-driven.
//!
//! Used for the journal's per-record framing and checkpoint file
//! checksums. CRC-32 detects every single-bit error and every burst up to
//! 32 bits — exactly the corruption classes a torn write or a flaky disk
//! produces — at a few cycles per byte.

/// Lazily built 256-entry lookup table for polynomial `0xEDB88320`
/// (reflected `0x04C11DB7`).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// IEEE CRC-32 of `data` (initial value `0xFFFFFFFF`, final XOR, reflected
/// — byte-compatible with `zlib`'s `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"{\"event\":\"completed\",\"job\":7}".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
