//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is a list of faults keyed on the *global write index* of
//! a [`crate::FaultyFs`] instance: "the 3rd `write` call fails with
//! `ENOSPC`", "the 7th write persists only its first 12 bytes, then
//! fails". Plans are plain data — build them explicitly for targeted
//! tests, or derive a pseudo-random one from a seed with
//! [`FaultPlan::from_seed`] for sweep-style tests; either way the schedule
//! is fully reproducible.

/// What goes wrong when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails outright with `ENOSPC`-style `StorageFull`; no
    /// bytes reach the file.
    WriteError,
    /// A torn write: only the first `keep_bytes` bytes of the buffer reach
    /// the file, then the write fails — what a power cut mid-write leaves.
    TornWrite {
        /// Bytes of the attempted buffer that land on disk.
        keep_bytes: usize,
    },
    /// The fsync fails (`sync_data` on the open file); data may or may not
    /// be durable, the caller must treat it as not.
    SyncError,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// 0-based index into the instance's write/sync operation sequence.
    pub nth_op: u64,
    /// The failure to inject there.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled faults (any order; matched by exact `nth_op`).
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// The empty plan: every operation succeeds.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fail exactly the `nth` write-ish operation with `kind`.
    pub fn fail_nth(nth: u64, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![ScheduledFault { nth_op: nth, kind }],
        }
    }

    /// Derive a reproducible pseudo-random plan: over the first `horizon`
    /// operations, each independently fails with probability
    /// `fail_per_1024 / 1024`, alternating error kinds. Same seed → same
    /// plan, always.
    pub fn from_seed(seed: u64, horizon: u64, fail_per_1024: u32) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // SplitMix64: tiny, well-distributed, and dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut faults = Vec::new();
        for op in 0..horizon {
            let roll = next();
            if (roll % 1024) < u64::from(fail_per_1024) {
                let kind = match roll >> 32 & 3 {
                    0 => FaultKind::WriteError,
                    1 => FaultKind::SyncError,
                    _ => FaultKind::TornWrite {
                        keep_bytes: (roll >> 40) as usize % 64,
                    },
                };
                faults.push(ScheduledFault { nth_op: op, kind });
            }
        }
        FaultPlan { faults }
    }

    /// The fault scheduled for operation `nth_op`, if any.
    pub fn fault_at(&self, nth_op: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.nth_op == nth_op)
            .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::from_seed(42, 1000, 64);
        let b = FaultPlan::from_seed(42, 1000, 64);
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_empty(), "64/1024 over 1000 ops should fire");
        let c = FaultPlan::from_seed(43, 1000, 64);
        assert_ne!(a.faults, c.faults, "different seeds, different plans");
    }

    #[test]
    fn fault_at_matches_exact_index() {
        let plan = FaultPlan::fail_nth(3, FaultKind::WriteError);
        assert_eq!(plan.fault_at(3), Some(FaultKind::WriteError));
        assert_eq!(plan.fault_at(2), None);
    }
}
