//! MADE — Masked Autoencoder for Distribution Estimation (Germain et al.,
//! ICML 2015), the autoregressive architecture instantiating SAM (§4.1).
//!
//! Inputs are per-column one-hot blocks; outputs are per-column logit blocks.
//! Binary masks on the weight matrices enforce the autoregressive property:
//! the logits of column `i` depend only on the (encoded) values of columns
//! `< i`, so `softmax(logits_i)` is `P(X_i | x_{<i})` and their chain product
//! is the joint (Eq 3 of the paper, no independence assumptions).

use crate::backend::{build_backend, BackendKind, FrozenLayers, InferenceBackend};
use crate::matrix::Matrix;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::rc::Rc;
use std::sync::Arc;

/// Architecture hyperparameters.
#[derive(Debug, Clone)]
pub struct MadeConfig {
    /// Per-column domain sizes (one-hot block widths), in autoregressive order.
    pub domain_sizes: Vec<usize>,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// RNG seed for weight initialisation and mask degrees.
    pub seed: u64,
    /// ResMADE (Naru/NeuroCard): residual connections between equal-width
    /// hidden layers. A skip keeps each unit's degree, so the
    /// autoregressive masks stay valid.
    pub residual: bool,
}

impl MadeConfig {
    /// Plain MADE with the given shape.
    pub fn new(domain_sizes: Vec<usize>, hidden: Vec<usize>, seed: u64) -> Self {
        MadeConfig {
            domain_sizes,
            hidden,
            seed,
            residual: false,
        }
    }
}

/// One affine layer: weights, bias, and the autoregressive mask.
struct Layer {
    w: ParamId,
    b: ParamId,
    mask: Rc<Matrix>,
    /// Add the layer input to its output before the activation (ResMADE).
    residual: bool,
}

/// A MADE network bound to a [`ParamStore`].
pub struct Made {
    config: MadeConfig,
    /// Input/output offsets of each column's one-hot block.
    offsets: Vec<usize>,
    total_width: usize,
    layers: Vec<Layer>,
}

/// Build the 0/1 mask for a layer given degrees of its input and output
/// units. `strict` uses `>` (the final layer), otherwise `>=`.
fn build_mask(out_deg: &[usize], in_deg: &[usize], strict: bool) -> Matrix {
    Matrix::from_fn(out_deg.len(), in_deg.len(), |r, c| {
        let ok = if strict {
            out_deg[r] > in_deg[c]
        } else {
            out_deg[r] >= in_deg[c]
        };
        if ok {
            1.0
        } else {
            0.0
        }
    })
}

fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

impl Made {
    /// Construct a MADE and register its parameters in `store`.
    pub fn new(config: MadeConfig, store: &mut ParamStore) -> Self {
        assert!(!config.domain_sizes.is_empty(), "need at least one column");
        assert!(
            config.domain_sizes.iter().all(|&d| d > 0),
            "domains must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.domain_sizes.len();
        let mut offsets = Vec::with_capacity(n);
        let mut total = 0usize;
        for &d in &config.domain_sizes {
            offsets.push(total);
            total += d;
        }

        // Unit degrees: input/output block for column i has degree i+1;
        // hidden units cycle through 1..=max(n-1, 1).
        let io_deg: Vec<usize> = config
            .domain_sizes
            .iter()
            .enumerate()
            .flat_map(|(i, &d)| std::iter::repeat_n(i + 1, d))
            .collect();
        let hidden_mod = (n - 1).max(1);
        let hidden_deg =
            |width: usize| -> Vec<usize> { (0..width).map(|k| 1 + (k % hidden_mod)).collect() };

        let mut layers = Vec::new();
        let mut prev_deg = io_deg.clone();
        let mut prev_width = total;
        for (li, &h) in config.hidden.iter().enumerate() {
            let deg = hidden_deg(h);
            let mask = Rc::new(build_mask(&deg, &prev_deg, false));
            let w = store.add(xavier(h, prev_width, &mut rng));
            let b = store.add(Matrix::zeros(1, h));
            // Residual only between equal-width hidden layers (never from
            // the input, whose width differs in general).
            let residual = config.residual && li > 0 && prev_width == h;
            layers.push(Layer {
                w,
                b,
                mask,
                residual,
            });
            prev_deg = deg;
            prev_width = h;
        }
        // Output layer (strict comparison → column i sees only columns < i).
        let mask = Rc::new(build_mask(&io_deg, &prev_deg, true));
        let w = store.add(xavier(total, prev_width, &mut rng));
        let b = store.add(Matrix::zeros(1, total));
        layers.push(Layer {
            w,
            b,
            mask,
            residual: false,
        });

        Made {
            config,
            offsets,
            total_width: total,
            layers,
        }
    }

    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        self.config.domain_sizes.len()
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        self.config.domain_sizes[i]
    }

    /// One-hot block offset of column `i` in the input/output vector.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Width of the concatenated one-hot encoding (== logit vector width).
    pub fn total_width(&self) -> usize {
        self.total_width
    }

    /// Bind the parameters as tape leaves for one training step. The same
    /// binding is reused across the several forward passes DPS performs.
    pub fn bind<'m>(&'m self, tape: &mut Tape, store: &ParamStore) -> BoundMade<'m> {
        let vars = self
            .layers
            .iter()
            .map(|l| {
                (
                    tape.leaf(store.value(l.w).clone()),
                    tape.leaf(store.value(l.b).clone()),
                )
            })
            .collect();
        BoundMade { made: self, vars }
    }

    /// Snapshot the effective (masked) weights for fast inference/sampling
    /// on the bit-exact [`BackendKind::ReferenceF32`] runtime.
    pub fn freeze(&self, store: &ParamStore) -> FrozenMade {
        self.freeze_with(store, BackendKind::ReferenceF32)
    }

    /// Snapshot onto a chosen inference backend (the weights are repacked at
    /// freeze time; see [`crate::backend`]).
    pub fn freeze_with(&self, store: &ParamStore, kind: BackendKind) -> FrozenMade {
        let layers = self
            .layers
            .iter()
            .map(|l| {
                let eff = store.value(l.w).mul_elem(&l.mask);
                (eff, store.value(l.b).clone())
            })
            .collect();
        FrozenMade::assemble(
            Arc::new(FrozenLayers {
                layers,
                residual: self.layers.iter().map(|l| l.residual).collect(),
            }),
            self.config.domain_sizes.clone(),
            kind,
        )
    }
}

/// A MADE whose parameters are bound to tape leaves for one step.
pub struct BoundMade<'m> {
    made: &'m Made,
    /// Per layer: (weight var, bias var).
    vars: Vec<(Var, Var)>,
}

impl<'m> BoundMade<'m> {
    /// Forward pass on the tape: `input` (batch × total_width) → logits
    /// (batch × total_width). ReLU between layers, none after the last.
    pub fn forward(&self, tape: &mut Tape, input: Var) -> Var {
        let mut h = input;
        let last = self.vars.len() - 1;
        for (i, ((w, b), layer)) in self.vars.iter().zip(&self.made.layers).enumerate() {
            let lin = tape.masked_linear(h, *w, *b, Some(Rc::clone(&layer.mask)));
            let pre = if layer.residual {
                tape.add(lin, h)
            } else {
                lin
            };
            h = if i != last { tape.relu(pre) } else { pre };
        }
        h
    }

    /// Logit block of column `i` from a full logits var.
    pub fn logits_of(&self, tape: &mut Tape, logits: Var, i: usize) -> Var {
        tape.slice_cols(logits, self.made.offset(i), self.made.domain_size(i))
    }

    /// After `tape.backward`, fold each parameter's gradient into the store.
    pub fn apply_grads(&self, tape: &Tape, store: &mut ParamStore) {
        for ((wv, bv), layer) in self.vars.iter().zip(&self.made.layers) {
            store.accumulate_grad(layer.w, &tape.grad(*wv));
            store.accumulate_grad(layer.b, &tape.grad(*bv));
        }
    }
}

/// An immutable snapshot of a trained MADE for inference and sampling
/// (`Send + Sync`; safe to share across sampling threads).
///
/// A thin handle: the canonical f32 layer stack lives in a shared
/// [`FrozenLayers`], and every forward pass is executed by the attached
/// [`InferenceBackend`] — the bit-exact f32 reference by default, or a
/// repacked kernel chosen at freeze/load time (see [`crate::backend`]).
#[derive(Debug, Clone)]
pub struct FrozenMade {
    /// Canonical effective (masked) weights — persistence and parity oracle.
    params: Arc<FrozenLayers>,
    /// The kernel executing forward passes.
    backend: Arc<dyn InferenceBackend>,
    offsets: Vec<usize>,
    domain_sizes: Vec<usize>,
    total_width: usize,
}

impl FrozenMade {
    fn assemble(params: Arc<FrozenLayers>, domain_sizes: Vec<usize>, kind: BackendKind) -> Self {
        let mut offsets = Vec::with_capacity(domain_sizes.len());
        let mut total = 0usize;
        for &d in &domain_sizes {
            offsets.push(total);
            total += d;
        }
        let backend = build_backend(kind, &params);
        FrozenMade {
            params,
            backend,
            offsets,
            domain_sizes,
            total_width: total,
        }
    }

    /// Reassemble from raw parts (model deserialisation). `layers` hold the
    /// *effective* (already masked) weights.
    pub fn from_parts(layers: Vec<(Matrix, Matrix)>, domain_sizes: Vec<usize>) -> Self {
        let residual = vec![false; layers.len()];
        Self::from_parts_residual(layers, residual, domain_sizes)
    }

    /// Reassemble with per-layer residual flags (ResMADE deserialisation).
    pub fn from_parts_residual(
        layers: Vec<(Matrix, Matrix)>,
        residual: Vec<bool>,
        domain_sizes: Vec<usize>,
    ) -> Self {
        assert_eq!(residual.len(), layers.len());
        Self::assemble(
            Arc::new(FrozenLayers { layers, residual }),
            domain_sizes,
            BackendKind::ReferenceF32,
        )
    }

    /// The same model re-hosted on a different inference backend (weights
    /// are repacked from the canonical f32 stack; cheap for f32, one-time
    /// quantisation cost for f16).
    pub fn with_backend(&self, kind: BackendKind) -> FrozenMade {
        let mut out = self.clone();
        out.backend = build_backend(kind, &self.params);
        out
    }

    /// Which backend executes this model's forward passes.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Per-layer residual flags.
    pub fn residual_flags(&self) -> &[bool] {
        &self.params.residual
    }

    /// The effective (masked) layer weights and biases.
    pub fn layers(&self) -> &[(Matrix, Matrix)] {
        &self.params.layers
    }

    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domain_sizes[i]
    }

    /// One-hot block offset of column `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Input/logits width.
    pub fn total_width(&self) -> usize {
        self.total_width
    }

    /// Forward pass: `input` (batch × total_width) → logits.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.total_width);
        self.backend.forward_into(input, &mut out);
        out
    }

    /// Forward pass into a caller-provided logits buffer
    /// (`input.rows() × total_width`), avoiding the output allocation on
    /// hot sampling loops. Every element of `out` is overwritten.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        self.backend.forward_into(input, out);
    }

    /// Batch-major forward with an optional row-liveness mask: only rows
    /// with `live[r] == true` are forwarded and written in `out`;
    /// masked-out rows are left untouched (see
    /// [`InferenceBackend::forward_batch_into`]). Per-row results are
    /// bit-identical to an unmasked forward.
    pub fn forward_batch_into(&self, input: &Matrix, live: Option<&[bool]>, out: &mut Matrix) {
        self.backend.forward_batch_into(input, live, out);
    }

    /// Row-wise softmax of column `i`'s logit block.
    pub fn conditional_probs(&self, logits: &Matrix, i: usize) -> Matrix {
        let off = self.offsets[i];
        let d = self.domain_sizes[i];
        let mut out = Matrix::zeros(logits.rows(), d);
        for r in 0..logits.rows() {
            let row = &logits.row(r)[off..off + d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            let dst = out.row_mut(r);
            for (o, &v) in dst.iter_mut().zip(row) {
                let e = (v - m).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            dst.iter_mut().for_each(|o| *o *= inv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Made, ParamStore) {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: vec![3, 2, 4],
                hidden: vec![16, 16],
                seed: 1,
                residual: false,
            },
            &mut store,
        );
        (made, store)
    }

    #[test]
    fn offsets_and_widths() {
        let (made, _) = tiny();
        assert_eq!(made.total_width(), 9);
        assert_eq!(made.offset(0), 0);
        assert_eq!(made.offset(1), 3);
        assert_eq!(made.offset(2), 5);
    }

    /// The defining MADE property: logits of column i are invariant to
    /// changes in the inputs of columns >= i.
    #[test]
    fn autoregressive_property() {
        let (made, store) = tiny();
        let frozen = made.freeze(&store);
        let mut base = Matrix::zeros(1, 9);
        base.set(0, 0, 1.0); // col 0 = code 0
        base.set(0, 3, 1.0); // col 1 = code 0
        base.set(0, 5, 1.0); // col 2 = code 0
        let l1 = frozen.forward(&base);

        // Perturb column 2's encoding: logits of cols 0, 1 must not change.
        let mut alt = base.clone();
        alt.set(0, 5, 0.0);
        alt.set(0, 8, 1.0);
        let l2 = frozen.forward(&alt);
        for j in 0..5 {
            assert!(
                (l1.get(0, j) - l2.get(0, j)).abs() < 1e-6,
                "logit {j} leaked from column 2"
            );
        }

        // Perturb column 1: logits of col 0 unchanged, col 2 may change.
        let mut alt = base.clone();
        alt.set(0, 3, 0.0);
        alt.set(0, 4, 1.0);
        let l3 = frozen.forward(&alt);
        for j in 0..3 {
            assert!((l1.get(0, j) - l3.get(0, j)).abs() < 1e-6);
        }

        // Column 0's logits are input-independent entirely.
        let mut rnd = Matrix::zeros(1, 9);
        for j in 0..9 {
            rnd.set(0, j, 0.37 * (j as f32 + 1.0));
        }
        let l4 = frozen.forward(&rnd);
        for j in 0..3 {
            assert!((l1.get(0, j) - l4.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn tape_forward_matches_frozen() {
        let (made, store) = tiny();
        let frozen = made.freeze(&store);
        let mut input = Matrix::zeros(2, 9);
        input.set(0, 1, 1.0);
        input.set(1, 2, 1.0);
        input.set(1, 4, 1.0);
        let expected = frozen.forward(&input);

        let mut tape = Tape::new();
        let bound = made.bind(&mut tape, &store);
        let iv = tape.leaf(input);
        let logits = bound.forward(&mut tape, iv);
        let got = tape.value(logits);
        for r in 0..2 {
            for c in 0..9 {
                assert!((got.get(r, c) - expected.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conditional_probs_are_normalised() {
        let (made, store) = tiny();
        let frozen = made.freeze(&store);
        let input = Matrix::zeros(3, 9);
        let logits = frozen.forward(&input);
        for i in 0..3 {
            let p = frozen.conditional_probs(&logits, i);
            for r in 0..p.rows() {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "col {i} row {r} sums to {s}");
                assert!(p.row(r).iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn single_column_model_is_bias_only() {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: vec![5],
                hidden: vec![8],
                seed: 3,
                residual: false,
            },
            &mut store,
        );
        let frozen = made.freeze(&store);
        let a = frozen.forward(&Matrix::zeros(1, 5));
        let mut onehot = Matrix::zeros(1, 5);
        onehot.set(0, 2, 1.0);
        let b = frozen.forward(&onehot);
        for j in 0..5 {
            assert!(
                (a.get(0, j) - b.get(0, j)).abs() < 1e-6,
                "1-column model must ignore its input"
            );
        }
    }

    #[test]
    fn gradients_flow_into_all_layers() {
        let (made, mut store) = tiny();
        let mut tape = Tape::new();
        let bound = made.bind(&mut tape, &store);
        let mut input = Matrix::zeros(1, 9);
        input.set(0, 0, 1.0);
        let iv = tape.leaf(input);
        let logits = bound.forward(&mut tape, iv);
        // Train column 2's block toward something.
        let block = bound.logits_of(&mut tape, logits, 2);
        let p = tape.softmax_rows(block, 1.0);
        let s = tape.row_dot_const(p, Rc::new(vec![1.0, 0.0, 0.0, 0.0]));
        let loss = tape.sq_err_mean(s, Rc::new(vec![1.0]));
        tape.backward(loss);
        bound.apply_grads(&tape, &mut store);
        // At least the output layer and one hidden layer must have signal.
        let grads: Vec<f32> = (0..store.len())
            .map(|i| store.grad(ParamId(i)).norm_sq())
            .collect();
        assert!(grads.iter().sum::<f32>() > 0.0);
    }
}

#[cfg(test)]
mod resmade_tests {
    use super::*;

    #[test]
    fn residual_made_keeps_autoregressive_property() {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: vec![3, 2, 4],
                hidden: vec![20, 20, 20],
                seed: 8,
                residual: true,
            },
            &mut store,
        );
        let frozen = made.freeze(&store);
        // Residual flags: first hidden layer no, subsequent equal-width
        // hidden layers yes, output layer no.
        assert_eq!(frozen.residual_flags(), &[false, true, true, false]);

        let base = Matrix::zeros(1, 9);
        let l1 = frozen.forward(&base);
        let mut alt = base.clone();
        alt.set(0, 5, 1.0); // perturb column 2
        let l2 = frozen.forward(&alt);
        for j in 0..5 {
            assert!(
                (l1.get(0, j) - l2.get(0, j)).abs() < 1e-6,
                "residual skip leaked column 2 into logit {j}"
            );
        }
    }

    #[test]
    fn residual_tape_forward_matches_frozen() {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: vec![2, 3],
                hidden: vec![12, 12],
                seed: 3,
                residual: true,
            },
            &mut store,
        );
        let frozen = made.freeze(&store);
        let mut input = Matrix::zeros(2, 5);
        input.set(0, 0, 1.0);
        input.set(1, 1, 1.0);
        let expected = frozen.forward(&input);

        let mut tape = Tape::new();
        let bound = made.bind(&mut tape, &store);
        let iv = tape.leaf(input);
        let logits = bound.forward(&mut tape, iv);
        let got = tape.value(logits);
        for r in 0..2 {
            for c in 0..5 {
                assert!((got.get(r, c) - expected.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn mismatched_widths_disable_residual() {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: vec![2, 2],
                hidden: vec![8, 16],
                seed: 1,
                residual: true,
            },
            &mut store,
        );
        let frozen = made.freeze(&store);
        assert_eq!(frozen.residual_flags(), &[false, false, false]);
    }
}
