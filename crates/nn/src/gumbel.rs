//! Gumbel-Softmax sampling (Jang et al. / Maddison et al.), the trick that
//! makes progressive sampling differentiable (paper §4.1, DPS from UAE \[34\]).
//!
//! A relaxed categorical sample from logits `z` is
//! `softmax((z + g) / τ)` with i.i.d. Gumbel noise `g`. Restricting the
//! sample to a query's in-range codes is done by adding a log-mask
//! (`0` in range, `-LARGE` outside) before the softmax. The optional
//! straight-through variant returns a hard one-hot forward value while
//! keeping the soft gradient.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};
use rand::Rng;
use std::rc::Rc;

/// Effectively `-inf` for masked logits (kept finite for f32 stability).
pub const NEG_LARGE: f32 = -1.0e9;

/// Sample a matrix of i.i.d. Gumbel(0, 1) noise.
pub fn gumbel_noise(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        -(-u.ln()).ln()
    })
}

/// A log-mask row vector: `0` at allowed codes, [`NEG_LARGE`] elsewhere.
pub fn log_mask(width: usize, allowed: impl Iterator<Item = usize>) -> Vec<f32> {
    let mut m = vec![NEG_LARGE; width];
    for code in allowed {
        m[code] = 0.0;
    }
    m
}

/// Draw a differentiable (relaxed one-hot) sample per batch row.
///
/// * `logits` — batch × domain logit block on the tape.
/// * `mask_rows` — per-row log-mask (batch × domain) restricting the sample
///   to each row's allowed codes; pass all-zeros for unconstrained sampling.
/// * `temperature` — Gumbel-Softmax temperature (lower = closer to one-hot).
/// * `straight_through` — return a hard one-hot forward value with the soft
///   sample's gradient.
pub fn gumbel_softmax(
    tape: &mut Tape,
    logits: Var,
    mask_rows: Rc<Matrix>,
    temperature: f32,
    straight_through: bool,
    rng: &mut impl Rng,
) -> Var {
    let shape = {
        let v = tape.value(logits);
        (v.rows(), v.cols())
    };
    assert_eq!(
        (mask_rows.rows(), mask_rows.cols()),
        shape,
        "mask must match logits shape"
    );
    let mut noise = gumbel_noise(shape.0, shape.1, rng);
    noise.add_assign(&mask_rows);
    let noisy = tape.add_const(logits, Rc::new(noise));
    let soft = tape.softmax_rows(noisy, temperature);
    if !straight_through {
        return soft;
    }
    // Straight-through: value = onehot(argmax(soft)), gradient = soft's.
    // Implemented as soft + const(onehot - soft_value): the constant shifts
    // the forward value without contributing gradient.
    let soft_value = tape.value(soft).clone();
    let mut shift = Matrix::zeros(shape.0, shape.1);
    for r in 0..shape.0 {
        let row = soft_value.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (c, s) in shift.row_mut(r).iter_mut().enumerate() {
            *s = (if c == argmax { 1.0 } else { 0.0 }) - row[c];
        }
    }
    tape.add_const(soft, Rc::new(shift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gumbel_noise_has_right_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gumbel_noise(100, 100, &mut rng);
        let mean = g.data().iter().sum::<f32>() / g.len() as f32;
        // Gumbel(0,1) mean = Euler-Mascheroni ≈ 0.5772, var = π²/6 ≈ 1.645.
        assert!((mean - 0.5772).abs() < 0.05, "mean {mean}");
        let var = g
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / g.len() as f32;
        assert!((var - 1.645).abs() < 0.15, "var {var}");
    }

    #[test]
    fn argmax_frequencies_match_softmax_probs() {
        // Gumbel-max: P(argmax(z + g) = i) = softmax(z)_i exactly.
        let logits_raw = [1.0f32, 0.0, -1.0];
        let exp: Vec<f32> = logits_raw.iter().map(|x| x.exp()).collect();
        let z: f32 = exp.iter().sum();
        let probs: Vec<f32> = exp.iter().map(|e| e / z).collect();

        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let g = gumbel_noise(1, 3, &mut rng);
            let scores: Vec<f32> = logits_raw
                .iter()
                .zip(g.row(0))
                .map(|(a, b)| a + b)
                .collect();
            let arg = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            counts[arg] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f32 / trials as f32;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "code {i}: freq {freq} vs prob {}",
                probs[i]
            );
        }
    }

    #[test]
    fn mask_excludes_codes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::zeros(8, 4));
        let mask_row = log_mask(4, [1usize, 3].into_iter());
        let mask = Rc::new(Matrix::from_fn(8, 4, |_, c| mask_row[c]));
        let y = gumbel_softmax(&mut tape, logits, mask, 0.5, false, &mut rng);
        let v = tape.value(y);
        for r in 0..8 {
            assert!(v.get(r, 0) < 1e-6, "masked code 0 sampled");
            assert!(v.get(r, 2) < 1e-6, "masked code 2 sampled");
            let s: f32 = v.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn straight_through_is_hard_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::zeros(4, 5));
        let mask = Rc::new(Matrix::zeros(4, 5));
        let y = gumbel_softmax(&mut tape, logits, mask, 1.0, true, &mut rng);
        let v = tape.value(y);
        for r in 0..4 {
            let ones = v.row(r).iter().filter(|&&x| (x - 1.0).abs() < 1e-6).count();
            let zeros = v.row(r).iter().filter(|&&x| x.abs() < 1e-6).count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, 4);
        }
    }

    #[test]
    fn straight_through_keeps_gradient() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::zeros(1, 3));
        let mask = Rc::new(Matrix::zeros(1, 3));
        let y = gumbel_softmax(&mut tape, logits, mask, 1.0, true, &mut rng);
        let s = tape.row_dot_const(y, Rc::new(vec![1.0, 2.0, 3.0]));
        let loss = tape.sq_err_mean(s, Rc::new(vec![0.0]));
        tape.backward(loss);
        assert!(
            tape.grad(logits).norm_sq() > 0.0,
            "gradient must flow through the straight-through sample"
        );
    }
}
