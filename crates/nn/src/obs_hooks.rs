//! Kernel-level observability hooks (feature `obs`).
//!
//! The matmul kernels are the substrate's entire FLOP budget, so two
//! counters on the global [`sam_obs::Registry`] — calls and floating-point
//! operations — make every training epoch, estimate, and generation run
//! attributable to arithmetic actually performed. The handles are cached
//! in `OnceLock`s: after first use a hook costs one atomic load plus one
//! relaxed `fetch_add`, which disappears next to an `m×k×n` kernel. With
//! the feature disabled the [`count_matmul!`] macro expands to nothing.

#[cfg(feature = "obs")]
pub(crate) mod active {
    use sam_obs::Counter;
    use std::sync::{Arc, OnceLock};

    fn calls() -> &'static Arc<Counter> {
        static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
        CALLS.get_or_init(|| sam_obs::counter("sam_nn_matmul_total"))
    }

    fn flops() -> &'static Arc<Counter> {
        static FLOPS: OnceLock<Arc<Counter>> = OnceLock::new();
        FLOPS.get_or_init(|| sam_obs::counter("sam_nn_matmul_flops_total"))
    }

    /// Record one `m×k @ k×n` kernel invocation (2·m·k·n FLOPs).
    pub fn count_matmul(m: usize, k: usize, n: usize) {
        calls().inc();
        flops().add(2 * (m as u64) * (k as u64) * (n as u64));
    }
}

/// Count one matmul kernel call; compiles to nothing without feature `obs`.
macro_rules! count_matmul {
    ($m:expr, $k:expr, $n:expr) => {
        #[cfg(feature = "obs")]
        $crate::obs_hooks::active::count_matmul($m, $k, $n);
    };
}

pub(crate) use count_matmul;
