//! Dense row-major `f32` matrices with the kernels the tape needs.
//!
//! Sized for the models in this reproduction (hidden widths in the tens to
//! hundreds): plain `ikj` matmul loops that vectorise well, no BLAS.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (`self: m×k`, `other: k×n`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        crate::obs_hooks::count_matmul!(m, k, n);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other.T` (`self: m×k`, `other: n×k`).
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transb shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        crate::obs_hooks::count_matmul!(m, k, n);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
        out
    }

    /// `self.T @ other` (`self: k×m`, `other: k×n`).
    pub fn matmul_transa(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_transa shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        crate::obs_hooks::count_matmul!(m, k, n);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise in-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise product copy.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Map every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Fill with zeros.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_basics() {
        let c = a().matmul(&b());
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let bt = b().transpose();
        let c1 = a().matmul(&b());
        let c2 = a().matmul_transb(&bt);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let at = a().transpose();
        let c1 = a().matmul(&b());
        let c2 = at.matmul_transa(&b());
        assert_eq!(c1, c2);
    }

    #[test]
    fn elementwise_ops() {
        let m = a();
        let doubled = m.map(|x| 2.0 * x);
        assert_eq!(doubled.get(1, 2), 12.0);
        let prod = m.mul_elem(&m);
        assert_eq!(prod.get(0, 1), 4.0);
        let mut acc = Matrix::zeros(2, 3);
        acc.add_assign(&m);
        acc.add_scaled_assign(&m, -1.0);
        assert_eq!(acc.norm_sq(), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }
}
