//! # sam-nn — neural substrate for the SAM reproduction
//!
//! The thin-ML-ecosystem substitution (see DESIGN.md): a from-scratch `f32`
//! matrix kernel, reverse-mode tape autodiff with exactly the op set
//! Differentiable Progressive Sampling needs, the MADE masked autoencoder
//! (the paper's AR architecture of choice), Gumbel-Softmax sampling, and
//! Adam/SGD optimisers.

#![warn(missing_docs)]

pub mod backend;
pub mod gumbel;
pub mod made;
pub mod matrix;
pub(crate) mod obs_hooks;
pub mod optim;
pub mod tape;
pub mod transformer;

pub use backend::{
    f16_bits_to_f32, f32_to_f16_bits, BackendKind, BlockedF16, FrozenLayers, InferenceBackend,
    Int8Blocked, ReferenceF32,
};
pub use gumbel::{gumbel_noise, gumbel_softmax, log_mask, NEG_LARGE};
pub use made::{BoundMade, FrozenMade, Made, MadeConfig};
pub use matrix::Matrix;
pub use optim::{Adam, ParamId, ParamStore, Sgd};
pub use tape::{Tape, Var};
pub use transformer::{BoundTransformer, FrozenTransformer, TransformerAr, TransformerConfig};
