//! Parameter storage and optimisers.

use crate::matrix::Matrix;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// Owns model parameters and their accumulated gradients, decoupled from the
/// per-step [`crate::tape::Tape`] (tapes are rebuilt every step; parameters
/// persist).
#[derive(Debug, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Register a parameter.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (used by optimiser steps).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Add `g` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id.0].add_assign(g);
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(Matrix::clear);
    }

    /// Global L2 norm of the accumulated gradients (0 when empty). Read it
    /// *before* an optimiser step — steps zero the accumulators.
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(Matrix::norm_sq).sum::<f32>().sqrt()
    }

    fn pairs(&mut self) -> impl Iterator<Item = (&mut Matrix, &Matrix)> {
        self.values.iter_mut().zip(self.grads.iter())
    }
}

/// Plain SGD with optional gradient clipping (by global norm).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Clip the global gradient norm to this value (disabled if `None`).
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip_norm: None,
        }
    }

    /// Apply one step and zero the gradients.
    pub fn step(&self, store: &mut ParamStore) {
        let scale = clip_scale(store, self.clip_norm);
        let lr = self.lr * scale;
        for (v, g) in store.pairs() {
            v.add_scaled_assign(g, -lr);
        }
        store.zero_grads();
    }
}

fn clip_scale(store: &ParamStore, clip: Option<f32>) -> f32 {
    match clip {
        Some(max_norm) => {
            let norm = store.grads.iter().map(Matrix::norm_sq).sum::<f32>().sqrt();
            if norm > max_norm {
                max_norm / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

/// Adam (Kingma & Ba) with bias correction and optional global-norm clipping.
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Clip the global gradient norm (disabled if `None`).
    pub clip_norm: Option<f32>,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas for the given store layout.
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        let shape = |src: &Vec<Matrix>| -> Vec<Matrix> {
            src.iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect()
        };
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
            m: shape(&store.values),
            v: shape(&store.values),
        }
    }

    /// The optimiser's mutable state for checkpointing: the step counter
    /// and the first/second moment estimates, in parameter order.
    pub fn export_state(&self) -> (u64, &[Matrix], &[Matrix]) {
        (self.t, &self.m, &self.v)
    }

    /// Restore state captured by [`Adam::export_state`]. Panics if the
    /// moment vectors do not match this optimiser's parameter layout —
    /// a checkpoint from a differently-shaped model is never silently
    /// accepted.
    pub fn import_state(&mut self, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) {
        let shapes_match = |ours: &[Matrix], theirs: &[Matrix]| {
            ours.len() == theirs.len()
                && ours
                    .iter()
                    .zip(theirs)
                    .all(|(a, b)| a.rows() == b.rows() && a.cols() == b.cols())
        };
        assert!(
            shapes_match(&self.m, &m) && shapes_match(&self.v, &v),
            "Adam::import_state: checkpoint moment shapes do not match model"
        );
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Apply one Adam step from the accumulated gradients, then zero them.
    pub fn step(&mut self, store: &mut ParamStore) {
        let scale = clip_scale(store, self.clip_norm);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..store.values.len() {
            let g = &store.grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi_raw) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                let gi = gi_raw * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = &mut store.values[i];
            for ((pv, &mi), &vi) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / b1t;
                let v_hat = vi / b2t;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use std::rc::Rc;

    /// Minimise mean((w·x − t)²) over w; both optimisers must converge.
    fn converges(mut step: impl FnMut(&mut ParamStore)) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let x = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let target = Rc::new(vec![2.0f32, -1.0, 1.0]); // solution w = (2, -1)
        let mut last = f32::MAX;
        for _ in 0..500 {
            let mut tape = Tape::new();
            let wv = tape.leaf(store.value(w).clone());
            let xv = tape.leaf(x.clone());
            let zero_bias = tape.leaf(Matrix::zeros(1, 1));
            let y = tape.masked_linear(xv, wv, zero_bias, None);
            let loss = tape.sq_err_mean(y, Rc::clone(&target));
            last = tape.value(loss).get(0, 0);
            tape.backward(loss);
            store.accumulate_grad(w, &tape.grad(wv));
            step(&mut store);
        }
        last
    }

    #[test]
    fn sgd_converges_on_least_squares() {
        let sgd = Sgd::new(0.1);
        let loss = converges(|s| sgd.step(s));
        assert!(loss < 1e-6, "sgd final loss {loss}");
    }

    #[test]
    fn adam_converges_on_least_squares() {
        let mut store_probe = ParamStore::new();
        store_probe.add(Matrix::zeros(1, 2));
        let mut adam = Adam::new(&store_probe, 0.05);
        let loss = converges(|s| adam.step(s));
        assert!(loss < 1e-4, "adam final loss {loss}");
    }

    #[test]
    fn clipping_bounds_update_norm() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::zeros(1, 1));
        store.accumulate_grad(w, &Matrix::full(1, 1, 1000.0));
        let sgd = Sgd {
            lr: 1.0,
            clip_norm: Some(1.0),
        };
        sgd.step(&mut store);
        assert!((store.value(w).get(0, 0) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::zeros(2, 2));
        store.accumulate_grad(w, &Matrix::full(2, 2, 3.0));
        store.zero_grads();
        assert_eq!(store.grad(w).norm_sq(), 0.0);
        assert_eq!(store.num_scalars(), 4);
    }
}
