//! Pluggable frozen-inference runtime.
//!
//! Every serving-path estimate and every generated tuple funnels through a
//! frozen forward pass, so this is where serving throughput lives. The
//! [`InferenceBackend`] trait is the seam: a backend owns a frozen MADE-style
//! layer stack (affine layers with optional residual skips, ReLU between,
//! none after the last) and pushes a row-chunk of inputs through it into a
//! caller-provided output buffer. Two implementations ship:
//!
//! * [`ReferenceF32`] — exactly the historical `FrozenMade::forward` loop,
//!   bit-for-bit. It shares the effective f32 weights with the frozen handle
//!   (no copy) and doubles as the parity oracle for every other backend.
//! * [`BlockedF16`] — weights repacked at freeze time into column-major
//!   blocks sized for the row-chunked loop and stored as IEEE 754 `binary16`
//!   bits (no external crates). The inner kernel dequantises one block into
//!   an f32 scratch tile and reuses it for every row of the chunk, so the
//!   conversion cost amortises across the batch; input zeros (one-hot rows
//!   are almost entirely zero) skip the whole tile row. Accumulation stays
//!   in f32 — only the stored weights are half precision.
//!
//! Future backends (int8 quantisation, SIMD kernels) implement the same
//! trait and plug into the identical seam.

use crate::matrix::Matrix;
use std::fmt;
use std::sync::Arc;

// ------------------------------------------------------------------ binary16

/// Convert an `f32` to IEEE 754 `binary16` bits with round-to-nearest-even.
/// Overflow saturates to ±inf; NaN maps to a quiet NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep NaN-ness (quiet bit set), drop the payload.
        return if mant != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    // Re-bias: f32 exponent −127, f16 exponent −15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal f16. Mantissa 23 → 10 bits, round to nearest even.
        let mant16 = mant >> 13;
        let round_bits = mant & 0x1fff;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) != 0) {
            out += 1; // carries ripple into the exponent correctly
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16: implicit leading 1 becomes explicit, shifted.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) + 13;
        let mant16 = full >> shift;
        let round_bit = 1u32 << (shift - 1);
        let round_bits = full & ((round_bit << 1) - 1);
        let mut out = sign | mant16 as u16;
        if round_bits > round_bit || (round_bits == round_bit && (mant16 & 1) != 0) {
            out += 1;
        }
        return out;
    }
    sign // underflow → ±0
}

/// Convert IEEE 754 `binary16` bits back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal (`m × 2⁻²⁴`): normalise so the leading 1 sits at
            // bit 10, then re-bias into a normal f32.
            let lead = m.leading_zeros() - 21; // zeros above bit 10
            let m10 = m << lead; // in [2¹⁰, 2¹¹): value = 2^(−14−lead)·(m10/2¹⁰)
            let exp32 = 127 - 14 - lead;
            sign | (exp32 << 23) | ((m10 & 0x03ff) << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// The 64K-entry `binary16 → f32` decode table, built once per process.
/// Dequantisation in the blocked kernel is a single indexed load.
fn f16_table() -> &'static [f32; 1 << 16] {
    static TABLE: std::sync::OnceLock<Box<[f32; 1 << 16]>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f32; 1 << 16].into_boxed_slice();
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = f16_bits_to_f32(i as u16);
        }
        t.try_into().expect("exact length")
    })
}

// ----------------------------------------------------------------- the seam

/// Which inference backend a frozen model runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Bit-exact f32 reference kernels (the parity oracle).
    ReferenceF32,
    /// Column-major-blocked `binary16` weights with f32 accumulation.
    BlockedF16,
}

impl BackendKind {
    /// Stable identifier, used by persistence and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::ReferenceF32 => "f32",
            BackendKind::BlockedF16 => "f16",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" | "reference" | "reference_f32" => Ok(BackendKind::ReferenceF32),
            "f16" | "blocked" | "blocked_f16" => Ok(BackendKind::BlockedF16),
            other => Err(format!("unknown backend {other:?} (expected f32|f16)")),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The frozen layer stack a backend executes: effective (already masked)
/// affine layers plus per-layer residual-skip flags. This is the canonical
/// f32 form — persistence serialises it and every backend is derived from it.
#[derive(Debug, Clone)]
pub struct FrozenLayers {
    /// Per layer: (effective weights `out×in`, bias `1×out`).
    pub layers: Vec<(Matrix, Matrix)>,
    /// Per layer: add the layer input to its output before the activation.
    pub residual: Vec<bool>,
}

/// A frozen-inference backend: forwards a row-chunk of inputs through the
/// frozen layer stack into a caller-provided output buffer.
///
/// Rows are independent sample paths, so implementations are free to chunk
/// or reorder work per row as long as per-row arithmetic is preserved.
pub trait InferenceBackend: Send + Sync + fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Forward `input` (rows × in_width) into `out` (rows × out_width).
    /// Every element of `out` is overwritten.
    fn forward_into(&self, input: &Matrix, out: &mut Matrix);
}

/// Build a backend of `kind` over `params`.
pub fn build_backend(kind: BackendKind, params: &Arc<FrozenLayers>) -> Arc<dyn InferenceBackend> {
    match kind {
        BackendKind::ReferenceF32 => Arc::new(ReferenceF32::new(Arc::clone(params))),
        BackendKind::BlockedF16 => Arc::new(BlockedF16::new(params)),
    }
}

// -------------------------------------------------------------- ReferenceF32

/// The historical `FrozenMade::forward` loop, unchanged: row-major
/// `matmul_transb`, bias broadcast, optional residual, ReLU between layers.
/// Shares the f32 weights with the frozen handle; bit-identical by
/// construction and locked by parity tests.
#[derive(Debug, Clone)]
pub struct ReferenceF32 {
    params: Arc<FrozenLayers>,
}

impl ReferenceF32 {
    /// Wrap shared frozen layers.
    pub fn new(params: Arc<FrozenLayers>) -> Self {
        ReferenceF32 { params }
    }
}

impl InferenceBackend for ReferenceF32 {
    fn kind(&self) -> BackendKind {
        BackendKind::ReferenceF32
    }

    fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        let mut h = input.clone();
        let last = self.params.layers.len() - 1;
        for (i, (w, b)) in self.params.layers.iter().enumerate() {
            let mut y = h.matmul_transb(w);
            for r in 0..y.rows() {
                let row = y.row_mut(r);
                for (o, &bb) in row.iter_mut().zip(b.row(0)) {
                    *o += bb;
                }
            }
            if self.params.residual[i] {
                y.add_assign(&h);
            }
            if i != last {
                y = y.map(|v| v.max(0.0));
            }
            h = y;
        }
        assert_eq!(
            (out.rows(), out.cols()),
            (h.rows(), h.cols()),
            "output buffer shape mismatch"
        );
        out.data_mut().copy_from_slice(h.data());
    }
}

// --------------------------------------------------------------- BlockedF16

/// Outputs per weight block (the vectorised inner-loop width).
const JB: usize = 16;
/// Inputs per weight block (the dequantised scratch depth).
const KB: usize = 64;

/// One layer repacked for the blocked kernel: `binary16` weights laid out
/// block-by-block, column-major within the block — for each input `k` of a
/// block, the `JB` output weights sit contiguously, so the row-update inner
/// loop is a unit-stride fused multiply-add over the scratch tile.
#[derive(Debug, Clone)]
struct PackedLayer {
    out_dim: usize,
    in_dim: usize,
    /// Block grid: `j_blocks × k_blocks` tiles of `KB×JB` half weights,
    /// zero-padded at the edges.
    data: Vec<u16>,
    bias: Vec<f32>,
    residual: bool,
}

impl PackedLayer {
    fn pack(w: &Matrix, b: &Matrix, residual: bool) -> PackedLayer {
        let (out_dim, in_dim) = (w.rows(), w.cols());
        let jbn = out_dim.div_ceil(JB);
        let kbn = in_dim.div_ceil(KB);
        let mut data = vec![0u16; jbn * kbn * JB * KB];
        for jb in 0..jbn {
            for kb in 0..kbn {
                let base = (jb * kbn + kb) * JB * KB;
                for kl in 0..KB.min(in_dim - kb * KB) {
                    let k = kb * KB + kl;
                    for jl in 0..JB.min(out_dim - jb * JB) {
                        let j = jb * JB + jl;
                        data[base + kl * JB + jl] = f32_to_f16_bits(w.get(j, k));
                    }
                }
            }
        }
        PackedLayer {
            out_dim,
            in_dim,
            data,
            bias: b.row(0).to_vec(),
            residual,
        }
    }

    /// `y = x @ W.T + bias` over the packed blocks; `y` must be
    /// `x.rows() × out_dim` and is fully overwritten.
    fn forward(&self, x: &Matrix, y: &mut Matrix, scratch: &mut [f32]) {
        debug_assert_eq!(x.cols(), self.in_dim);
        debug_assert_eq!((y.rows(), y.cols()), (x.rows(), self.out_dim));
        let table = f16_table();
        let rows = x.rows();
        for r in 0..rows {
            y.row_mut(r).copy_from_slice(&self.bias);
        }
        let jbn = self.out_dim.div_ceil(JB);
        let kbn = self.in_dim.div_ceil(KB);
        for jb in 0..jbn {
            let j0 = jb * JB;
            let jn = JB.min(self.out_dim - j0);
            for kb in 0..kbn {
                let k0 = kb * KB;
                let kn = KB.min(self.in_dim - k0);
                // Dequantise the tile once; every row of the chunk reuses it.
                let block = &self.data[(jb * kbn + kb) * JB * KB..][..JB * KB];
                for (s, &h) in scratch.iter_mut().zip(block) {
                    *s = table[h as usize];
                }
                for r in 0..rows {
                    let x_row = &x.row(r)[k0..k0 + kn];
                    let y_row = &mut y.row_mut(r)[j0..j0 + jn];
                    for (kl, &a) in x_row.iter().enumerate() {
                        if a == 0.0 {
                            continue; // one-hot / post-ReLU rows are sparse
                        }
                        let tile = &scratch[kl * JB..kl * JB + jn];
                        for (o, &wv) in y_row.iter_mut().zip(tile) {
                            *o += a * wv;
                        }
                    }
                }
            }
        }
    }
}

/// Half-precision blocked backend: `binary16` storage, f32 accumulation,
/// weight tiles dequantised once per row-chunk.
#[derive(Debug, Clone)]
pub struct BlockedF16 {
    layers: Vec<PackedLayer>,
}

impl BlockedF16 {
    /// Repack frozen f32 layers into blocked `binary16` form.
    pub fn new(params: &FrozenLayers) -> Self {
        let layers = params
            .layers
            .iter()
            .zip(&params.residual)
            .map(|((w, b), &residual)| PackedLayer::pack(w, b, residual))
            .collect();
        BlockedF16 { layers }
    }
}

impl InferenceBackend for BlockedF16 {
    fn kind(&self) -> BackendKind {
        BackendKind::BlockedF16
    }

    fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        let rows = input.rows();
        let last = self.layers.len() - 1;
        let mut scratch = [0.0f32; JB * KB];
        let mut h = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = if i == last {
                // Write the final layer straight into the caller's buffer.
                std::mem::replace(out, Matrix::zeros(0, 0))
            } else {
                Matrix::zeros(rows, layer.out_dim)
            };
            layer.forward(&h, &mut y, &mut scratch);
            if layer.residual {
                y.add_assign(&h);
            }
            if i != last {
                y = y.map(|v| v.max(0.0));
                h = y;
            } else {
                *out = y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_representable_values() {
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), x, "{x}");
        }
        // Every f16 bit pattern decodes and re-encodes to itself (finite
        // values; NaN payloads are normalised to one quiet NaN).
        for bits in 0u16..=0xffff {
            let x = f16_bits_to_f32(bits);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
            } else {
                assert_eq!(f32_to_f16_bits(x), bits, "bits {bits:#06x} ({x})");
            }
        }
    }

    #[test]
    fn f16_conversion_error_is_bounded() {
        // Relative error of a single f32→f16 round trip is at most 2^-11
        // for normal values.
        let mut x = 6.1e-5f32; // just above the f16 normal threshold
        while x < 6.0e4 {
            for v in [x, -x] {
                let rt = f16_bits_to_f32(f32_to_f16_bits(v));
                assert!(
                    ((rt - v) / v).abs() <= 1.0 / 2048.0,
                    "{v} → {rt}: relative error too large"
                );
            }
            x *= 1.37;
        }
    }

    #[test]
    fn f16_handles_specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(1e10), 0x7c00, "overflow saturates to inf");
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000, "underflow flushes to zero");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Subnormal f16 (smallest positive: 2^-24).
        let tiny = 5.960_464_5e-8f32;
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
    }

    fn layer_stack(seed: u64, dims: &[(usize, usize)]) -> Arc<FrozenLayers> {
        // Deterministic pseudo-random weights without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 0.5
        };
        let layers = dims
            .iter()
            .map(|&(out, inp)| {
                (
                    Matrix::from_fn(out, inp, |_, _| next()),
                    Matrix::from_fn(1, out, |_, _| next()),
                )
            })
            .collect::<Vec<_>>();
        Arc::new(FrozenLayers {
            residual: vec![false; layers.len()],
            layers,
        })
    }

    #[test]
    fn blocked_f16_tracks_reference_within_tolerance() {
        let params = layer_stack(3, &[(50, 37), (50, 50), (37, 50)]);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let blocked = BlockedF16::new(&params);
        let input = Matrix::from_fn(9, 37, |r, c| if (r + c) % 3 == 0 { 0.0 } else { 0.3 });
        let mut a = Matrix::zeros(9, 37);
        let mut b = Matrix::zeros(9, 37);
        reference.forward_into(&input, &mut a);
        blocked.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            let scale = x.abs().max(1.0);
            assert!(
                (x - y).abs() / scale < 2e-2,
                "f16 diverged: {x} vs {y} (rel {})",
                (x - y).abs() / scale
            );
        }
    }

    #[test]
    fn blocked_f16_handles_residual_and_ragged_dims() {
        // Dims deliberately not multiples of the block sizes; middle layer
        // residual.
        let mut params = (*layer_stack(9, &[(70, 23), (70, 70), (23, 70)])).clone();
        params.residual[1] = true;
        let params = Arc::new(params);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let blocked = BlockedF16::new(&params);
        let input = Matrix::from_fn(130, 23, |r, c| if (r * 7 + c) % 5 == 0 { 0.7 } else { 0.0 });
        let mut a = Matrix::zeros(130, 23);
        let mut b = Matrix::zeros(130, 23);
        reference.forward_into(&input, &mut a);
        blocked.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() / x.abs().max(1.0) < 2e-2, "{x} vs {y}");
        }
    }
}
