//! Pluggable frozen-inference runtime.
//!
//! Every serving-path estimate and every generated tuple funnels through a
//! frozen forward pass, so this is where serving throughput lives. The
//! [`InferenceBackend`] trait is the seam: a backend owns a frozen MADE-style
//! layer stack (affine layers with optional residual skips, ReLU between,
//! none after the last) and pushes a row-chunk of inputs through it into a
//! caller-provided output buffer. Three implementations ship:
//!
//! * [`ReferenceF32`] — exactly the historical `FrozenMade::forward` loop,
//!   bit-for-bit. It shares the effective f32 weights with the frozen handle
//!   (no copy) and doubles as the parity oracle for every other backend.
//! * [`BlockedF16`] — weights repacked at freeze time into column-major
//!   blocks sized for the row-chunked loop and stored as IEEE 754 `binary16`
//!   bits (no external crates). The inner kernel dequantises one block into
//!   an f32 scratch tile and reuses it for every row of the chunk, so the
//!   conversion cost amortises across the batch; input zeros (one-hot rows
//!   are almost entirely zero) skip the whole tile row. Accumulation stays
//!   in f32 — only the stored weights are half precision.
//! * [`Int8Blocked`] — the same block grid, but weights quantised to `i8`
//!   with one f32 scale per block (symmetric: scale = block max / 127).
//!   Dequantisation is a vectorisable int→float convert + multiply instead
//!   of the f16 table gather, all-zero blocks — which the autoregressive
//!   masks produce in large triangular regions — are skipped outright, and
//!   a per-tile bitmask skips individual all-zero weight rows inside
//!   surviving tiles (the masks' finer structure), so the kernel does
//!   strictly less work than [`BlockedF16`] per forward.
//!
//! Batch-major inference enters through
//! [`InferenceBackend::forward_batch_into`]: the sample batch is one
//! persistent row-per-path matrix, and a row-liveness mask selects which
//! paths need this column's forward (trie-cached and dead paths are masked
//! out). The blocked kernels consume the mask natively; the reference
//! backend routes through a gather→forward→scatter fallback that preserves
//! its bit-lock. The blocked kernels' inner loops use the portable
//! eight-lane `F32x8` helper — plain fixed-size arrays the compiler lowers
//! to SIMD registers on stable Rust, no intrinsics and no new dependencies.

use crate::matrix::Matrix;
use std::fmt;
use std::sync::Arc;

// ------------------------------------------------------------------ binary16

/// Convert an `f32` to IEEE 754 `binary16` bits with round-to-nearest-even.
/// Overflow saturates to ±inf; NaN maps to a quiet NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep NaN-ness (quiet bit set), drop the payload.
        return if mant != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    // Re-bias: f32 exponent −127, f16 exponent −15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal f16. Mantissa 23 → 10 bits, round to nearest even.
        let mant16 = mant >> 13;
        let round_bits = mant & 0x1fff;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) != 0) {
            out += 1; // carries ripple into the exponent correctly
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16: implicit leading 1 becomes explicit, shifted.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) + 13;
        let mant16 = full >> shift;
        let round_bit = 1u32 << (shift - 1);
        let round_bits = full & ((round_bit << 1) - 1);
        let mut out = sign | mant16 as u16;
        if round_bits > round_bit || (round_bits == round_bit && (mant16 & 1) != 0) {
            out += 1;
        }
        return out;
    }
    sign // underflow → ±0
}

/// Convert IEEE 754 `binary16` bits back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal (`m × 2⁻²⁴`): normalise so the leading 1 sits at
            // bit 10, then re-bias into a normal f32.
            let lead = m.leading_zeros() - 21; // zeros above bit 10
            let m10 = m << lead; // in [2¹⁰, 2¹¹): value = 2^(−14−lead)·(m10/2¹⁰)
            let exp32 = 127 - 14 - lead;
            sign | (exp32 << 23) | ((m10 & 0x03ff) << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// The 64K-entry `binary16 → f32` decode table, built once per process.
/// Dequantisation in the blocked kernel is a single indexed load.
fn f16_table() -> &'static [f32; 1 << 16] {
    static TABLE: std::sync::OnceLock<Box<[f32; 1 << 16]>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f32; 1 << 16].into_boxed_slice();
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = f16_bits_to_f32(i as u16);
        }
        t.try_into().expect("exact length")
    })
}

// ----------------------------------------------------------------- the seam

/// Which inference backend a frozen model runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Bit-exact f32 reference kernels (the parity oracle).
    ReferenceF32,
    /// Column-major-blocked `binary16` weights with f32 accumulation.
    BlockedF16,
    /// Column-major-blocked `i8` weights with per-block f32 scales.
    Int8Blocked,
}

impl BackendKind {
    /// Every selectable kernel, in documentation order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::ReferenceF32,
        BackendKind::BlockedF16,
        BackendKind::Int8Blocked,
    ];

    /// Stable identifier, used by persistence and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::ReferenceF32 => "f32",
            BackendKind::BlockedF16 => "f16",
            BackendKind::Int8Blocked => "int8",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" | "reference" | "reference_f32" => Ok(BackendKind::ReferenceF32),
            "f16" | "blocked" | "blocked_f16" => Ok(BackendKind::BlockedF16),
            "int8" | "int8_blocked" => Ok(BackendKind::Int8Blocked),
            other => Err(format!(
                "unknown backend {other:?} (valid kernels: f32, f16, int8)"
            )),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The frozen layer stack a backend executes: effective (already masked)
/// affine layers plus per-layer residual-skip flags. This is the canonical
/// f32 form — persistence serialises it and every backend is derived from it.
#[derive(Debug, Clone)]
pub struct FrozenLayers {
    /// Per layer: (effective weights `out×in`, bias `1×out`).
    pub layers: Vec<(Matrix, Matrix)>,
    /// Per layer: add the layer input to its output before the activation.
    pub residual: Vec<bool>,
}

/// A frozen-inference backend: forwards a row-chunk of inputs through the
/// frozen layer stack into a caller-provided output buffer.
///
/// Rows are independent sample paths, so implementations are free to chunk
/// or reorder work per row as long as per-row arithmetic is preserved.
pub trait InferenceBackend: Send + Sync + fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Forward `input` (rows × in_width) into `out` (rows × out_width).
    /// Every element of `out` is overwritten.
    fn forward_into(&self, input: &Matrix, out: &mut Matrix);

    /// Batch-major forward: `input` holds one row per sample path of a
    /// micro-batch, and `live` masks the rows that actually need this
    /// forward (paths whose conditionals are trie-cached, deduped onto a
    /// representative row, or dead are masked out). Only rows with
    /// `live[r] == true` are written in `out`; masked-out rows are left
    /// untouched. `live == None` forwards every row, exactly like
    /// [`forward_into`](Self::forward_into).
    ///
    /// Per-row arithmetic is identical to an unmasked forward (rows are
    /// independent), so masking changes cost, never values.
    ///
    /// The default implementation gathers live rows into a compact matrix,
    /// forwards that, and scatters the results back. Blocked kernels
    /// override it to skip dead rows in place, avoiding the copies.
    fn forward_batch_into(&self, input: &Matrix, live: Option<&[bool]>, out: &mut Matrix) {
        forward_masked_via_gather(self, input, live, out);
    }
}

/// Gather→forward→scatter fallback for
/// [`InferenceBackend::forward_batch_into`]: bit-identical per row to an
/// unmasked forward because every backend processes rows independently.
fn forward_masked_via_gather<B: InferenceBackend + ?Sized>(
    backend: &B,
    input: &Matrix,
    live: Option<&[bool]>,
    out: &mut Matrix,
) {
    let Some(mask) = live else {
        return backend.forward_into(input, out);
    };
    debug_assert_eq!(mask.len(), input.rows());
    let rows: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(r, &m)| m.then_some(r))
        .collect();
    if rows.is_empty() {
        return;
    }
    if rows.len() == input.rows() {
        return backend.forward_into(input, out);
    }
    let mut compact = Matrix::zeros(rows.len(), input.cols());
    for (c, &r) in rows.iter().enumerate() {
        compact.row_mut(c).copy_from_slice(input.row(r));
    }
    let mut compact_out = Matrix::zeros(rows.len(), out.cols());
    backend.forward_into(&compact, &mut compact_out);
    for (c, &r) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(compact_out.row(c));
    }
}

/// Build a backend of `kind` over `params`.
pub fn build_backend(kind: BackendKind, params: &Arc<FrozenLayers>) -> Arc<dyn InferenceBackend> {
    match kind {
        BackendKind::ReferenceF32 => Arc::new(ReferenceF32::new(Arc::clone(params))),
        BackendKind::BlockedF16 => Arc::new(BlockedF16::new(params)),
        BackendKind::Int8Blocked => Arc::new(Int8Blocked::new(params)),
    }
}

// -------------------------------------------------------------- ReferenceF32

/// The historical `FrozenMade::forward` loop, unchanged: row-major
/// `matmul_transb`, bias broadcast, optional residual, ReLU between layers.
/// Shares the f32 weights with the frozen handle; bit-identical by
/// construction and locked by parity tests.
#[derive(Debug, Clone)]
pub struct ReferenceF32 {
    params: Arc<FrozenLayers>,
}

impl ReferenceF32 {
    /// Wrap shared frozen layers.
    pub fn new(params: Arc<FrozenLayers>) -> Self {
        ReferenceF32 { params }
    }
}

impl InferenceBackend for ReferenceF32 {
    fn kind(&self) -> BackendKind {
        BackendKind::ReferenceF32
    }

    fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        let mut h = input.clone();
        let last = self.params.layers.len() - 1;
        for (i, (w, b)) in self.params.layers.iter().enumerate() {
            let mut y = h.matmul_transb(w);
            for r in 0..y.rows() {
                let row = y.row_mut(r);
                for (o, &bb) in row.iter_mut().zip(b.row(0)) {
                    *o += bb;
                }
            }
            if self.params.residual[i] {
                y.add_assign(&h);
            }
            if i != last {
                y = y.map(|v| v.max(0.0));
            }
            h = y;
        }
        assert_eq!(
            (out.rows(), out.cols()),
            (h.rows(), h.cols()),
            "output buffer shape mismatch"
        );
        out.data_mut().copy_from_slice(h.data());
    }
}

// --------------------------------------------------------------------- simd

/// Portable eight-lane f32 vector for the blocked kernels' inner loops: a
/// plain fixed-size array with `#[inline(always)]` lane-wise ops, which the
/// compiler reliably lowers to one 256-bit SIMD register (or two 128-bit
/// ones) on stable Rust — no intrinsics, no nightly features, no new
/// dependencies. The kernels hold a block row's `JB = 16` partial sums in
/// two of these across a whole tile walk, so the hot loop is loads plus
/// lane-wise multiply-adds with no per-element memory round-trips.
#[derive(Clone, Copy, Debug)]
struct F32x8([f32; 8]);

impl F32x8 {
    #[inline(always)]
    fn load(s: &[f32]) -> F32x8 {
        F32x8(s.try_into().expect("eight lanes"))
    }

    #[inline(always)]
    fn store(self, d: &mut [f32]) {
        d.copy_from_slice(&self.0);
    }

    /// `self + a * w`, lane-wise. Multiply-then-add (not `mul_add`), so the
    /// rounding matches the scalar loop bit-for-bit.
    #[inline(always)]
    fn fma(mut self, a: f32, w: F32x8) -> F32x8 {
        for l in 0..8 {
            self.0[l] += a * w.0[l];
        }
        self
    }
}

// ----------------------------------------------------- blocked kernel shared

/// Outputs per weight block (the vectorised inner-loop width).
const JB: usize = 16;
/// Inputs per weight block (the dequantised scratch depth). Must stay ≤ 256
/// so the int8 kernel's compacted tile-row indices fit a `u8`.
const KB: usize = 64;
const _: () = assert!(KB <= 256, "compacted tile-row indices are u8");

/// True when `r` needs this forward (no mask ⇒ every row is live).
#[inline(always)]
fn row_live(live: Option<&[bool]>, r: usize) -> bool {
    live.is_none_or(|m| m[r])
}

/// Accumulate one dequantised `KB×JB` tile into every live row:
/// `y[r, j0..j0+jn] += x[r, k0..k0+kn] @ tile`. Full-width blocks keep the
/// row's `JB` partial sums in two [`F32x8`] registers across the tile walk;
/// ragged edge blocks take the scalar loop. Zero inputs (one-hot /
/// post-ReLU rows are mostly zeros) skip their tile row in both paths.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn accumulate_tile_rows(
    x: &Matrix,
    y: &mut Matrix,
    scratch: &[f32],
    live: Option<&[bool]>,
    k0: usize,
    kn: usize,
    j0: usize,
    jn: usize,
) {
    for r in 0..x.rows() {
        if !row_live(live, r) {
            continue;
        }
        let x_row = &x.row(r)[k0..k0 + kn];
        let y_row = &mut y.row_mut(r)[j0..j0 + jn];
        if jn == JB {
            let mut acc0 = F32x8::load(&y_row[..8]);
            let mut acc1 = F32x8::load(&y_row[8..]);
            for (kl, &a) in x_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let tile = &scratch[kl * JB..kl * JB + JB];
                acc0 = acc0.fma(a, F32x8::load(&tile[..8]));
                acc1 = acc1.fma(a, F32x8::load(&tile[8..]));
            }
            acc0.store(&mut y_row[..8]);
            acc1.store(&mut y_row[8..]);
        } else {
            for (kl, &a) in x_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let tile = &scratch[kl * JB..kl * JB + jn];
                for (o, &wv) in y_row.iter_mut().zip(tile) {
                    *o += a * wv;
                }
            }
        }
    }
}

/// Walk a packed layer stack: forward each layer with `forward_layer`, then
/// apply the residual skip and inter-layer ReLU to live rows only. The last
/// layer writes straight into the caller's buffer; masked-out rows of `out`
/// are never touched. Shared by the f16 and int8 kernels.
fn run_packed_stack<L>(
    layers: &[L],
    residual: impl Fn(&L) -> bool,
    out_dim: impl Fn(&L) -> usize,
    mut forward_layer: impl FnMut(&L, &Matrix, &mut Matrix, Option<&[bool]>),
    input: &Matrix,
    live: Option<&[bool]>,
    out: &mut Matrix,
) {
    let rows = input.rows();
    let last = layers.len() - 1;
    let mut h: Option<Matrix> = None;
    for (i, layer) in layers.iter().enumerate() {
        let mut y = if i == last {
            // Write the final layer straight into the caller's buffer.
            std::mem::replace(out, Matrix::zeros(0, 0))
        } else {
            Matrix::zeros(rows, out_dim(layer))
        };
        let x: &Matrix = h.as_ref().unwrap_or(input);
        forward_layer(layer, x, &mut y, live);
        if residual(layer) {
            for r in 0..rows {
                if !row_live(live, r) {
                    continue;
                }
                for (o, &a) in y.row_mut(r).iter_mut().zip(x.row(r)) {
                    *o += a;
                }
            }
        }
        if i != last {
            for r in 0..rows {
                if !row_live(live, r) {
                    continue;
                }
                for v in y.row_mut(r) {
                    *v = v.max(0.0);
                }
            }
            h = Some(y);
        } else {
            *out = y;
        }
    }
}

// --------------------------------------------------------------- BlockedF16

/// One layer repacked for the blocked kernel: `binary16` weights laid out
/// block-by-block, column-major within the block — for each input `k` of a
/// block, the `JB` output weights sit contiguously, so the row-update inner
/// loop is a unit-stride fused multiply-add over the scratch tile.
#[derive(Debug, Clone)]
struct PackedLayer {
    out_dim: usize,
    in_dim: usize,
    /// Block grid: `j_blocks × k_blocks` tiles of `KB×JB` half weights,
    /// zero-padded at the edges.
    data: Vec<u16>,
    bias: Vec<f32>,
    residual: bool,
}

impl PackedLayer {
    fn pack(w: &Matrix, b: &Matrix, residual: bool) -> PackedLayer {
        let (out_dim, in_dim) = (w.rows(), w.cols());
        let jbn = out_dim.div_ceil(JB);
        let kbn = in_dim.div_ceil(KB);
        let mut data = vec![0u16; jbn * kbn * JB * KB];
        for jb in 0..jbn {
            for kb in 0..kbn {
                let base = (jb * kbn + kb) * JB * KB;
                for kl in 0..KB.min(in_dim - kb * KB) {
                    let k = kb * KB + kl;
                    for jl in 0..JB.min(out_dim - jb * JB) {
                        let j = jb * JB + jl;
                        data[base + kl * JB + jl] = f32_to_f16_bits(w.get(j, k));
                    }
                }
            }
        }
        PackedLayer {
            out_dim,
            in_dim,
            data,
            bias: b.row(0).to_vec(),
            residual,
        }
    }

    /// `y[r] = x[r] @ W.T + bias` for live rows over the packed blocks;
    /// masked-out rows of `y` are never touched.
    fn forward(&self, x: &Matrix, y: &mut Matrix, scratch: &mut [f32], live: Option<&[bool]>) {
        debug_assert_eq!(x.cols(), self.in_dim);
        debug_assert_eq!((y.rows(), y.cols()), (x.rows(), self.out_dim));
        let table = f16_table();
        for r in 0..x.rows() {
            if row_live(live, r) {
                y.row_mut(r).copy_from_slice(&self.bias);
            }
        }
        let jbn = self.out_dim.div_ceil(JB);
        let kbn = self.in_dim.div_ceil(KB);
        for jb in 0..jbn {
            let j0 = jb * JB;
            let jn = JB.min(self.out_dim - j0);
            for kb in 0..kbn {
                let k0 = kb * KB;
                let kn = KB.min(self.in_dim - k0);
                // Dequantise the tile once; every row of the chunk reuses it.
                let block = &self.data[(jb * kbn + kb) * JB * KB..][..JB * KB];
                for (s, &h) in scratch.iter_mut().zip(block) {
                    *s = table[h as usize];
                }
                accumulate_tile_rows(x, y, scratch, live, k0, kn, j0, jn);
            }
        }
    }
}

/// Half-precision blocked backend: `binary16` storage, f32 accumulation,
/// weight tiles dequantised once per row-chunk.
#[derive(Debug, Clone)]
pub struct BlockedF16 {
    layers: Vec<PackedLayer>,
}

impl BlockedF16 {
    /// Repack frozen f32 layers into blocked `binary16` form.
    pub fn new(params: &FrozenLayers) -> Self {
        let layers = params
            .layers
            .iter()
            .zip(&params.residual)
            .map(|((w, b), &residual)| PackedLayer::pack(w, b, residual))
            .collect();
        BlockedF16 { layers }
    }
}

impl InferenceBackend for BlockedF16 {
    fn kind(&self) -> BackendKind {
        BackendKind::BlockedF16
    }

    fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        self.forward_batch_into(input, None, out);
    }

    fn forward_batch_into(&self, input: &Matrix, live: Option<&[bool]>, out: &mut Matrix) {
        let mut scratch = [0.0f32; JB * KB];
        run_packed_stack(
            &self.layers,
            |l| l.residual,
            |l| l.out_dim,
            |l, x, y, m| l.forward(x, y, &mut scratch, m),
            input,
            live,
            out,
        );
    }
}

// -------------------------------------------------------------- Int8Blocked

/// One layer quantised for the int8 kernel: the [`PackedLayer`] block grid,
/// but each `KB×JB` tile stores `i8` codes plus one f32 dequantisation
/// scale (symmetric: scale = tile max / 127, so zero weights encode as
/// exact zero) — and only the tile rows that carry a nonzero code are
/// stored at all. The autoregressive masks zero out large triangular
/// regions of every weight matrix; compacting the surviving rows at pack
/// time means the run-time loops walk exactly the nonzero weight rows, with
/// no per-row branching, and all-zero tiles vanish as empty row ranges.
#[derive(Debug, Clone)]
struct PackedLayerI8 {
    out_dim: usize,
    in_dim: usize,
    /// Compacted codes: for each tile in `(jb, kb)` grid order, the `JB`
    /// codes of each nonzero tile row, rows in ascending `kl` order.
    data: Vec<i8>,
    /// `kl` index (within the tile) of each stored row, parallel to the
    /// row order of `data`.
    row_kl: Vec<u8>,
    /// Per-tile prefix offsets into the stored rows: tile `t` owns rows
    /// `tile_off[t]..tile_off[t + 1]`. Length `jbn · kbn + 1`.
    tile_off: Vec<u32>,
    /// One dequantisation scale per tile (unused for empty tiles).
    scales: Vec<f32>,
    bias: Vec<f32>,
    residual: bool,
}

impl PackedLayerI8 {
    fn pack(w: &Matrix, b: &Matrix, residual: bool) -> PackedLayerI8 {
        let (out_dim, in_dim) = (w.rows(), w.cols());
        let jbn = out_dim.div_ceil(JB);
        let kbn = in_dim.div_ceil(KB);
        let mut data = Vec::new();
        let mut row_kl = Vec::new();
        let mut tile_off = Vec::with_capacity(jbn * kbn + 1);
        tile_off.push(0u32);
        let mut scales = vec![0.0f32; jbn * kbn];
        for jb in 0..jbn {
            for kb in 0..kbn {
                let jn = JB.min(out_dim - jb * JB);
                let kn = KB.min(in_dim - kb * KB);
                let mut max_abs = 0.0f32;
                for kl in 0..kn {
                    for jl in 0..jn {
                        max_abs = max_abs.max(w.get(jb * JB + jl, kb * KB + kl).abs());
                    }
                }
                if max_abs > 0.0 {
                    let inv = 127.0 / max_abs;
                    scales[jb * kbn + kb] = max_abs / 127.0;
                    for kl in 0..kn {
                        let mut row = [0i8; JB];
                        let mut any = false;
                        for (jl, slot) in row.iter_mut().enumerate().take(jn) {
                            let q = (w.get(jb * JB + jl, kb * KB + kl) * inv).round();
                            let code = q.clamp(-127.0, 127.0) as i8;
                            *slot = code;
                            any |= code != 0;
                        }
                        if any {
                            data.extend_from_slice(&row);
                            row_kl.push(kl as u8);
                        }
                    }
                }
                tile_off.push(row_kl.len() as u32);
            }
        }
        PackedLayerI8 {
            out_dim,
            in_dim,
            data,
            row_kl,
            tile_off,
            scales,
            bias: b.row(0).to_vec(),
            residual,
        }
    }

    /// `y[r] = x[r] @ W.T + bias` for live rows; masked-out rows of `y` are
    /// never touched. Same tile walk as [`PackedLayer::forward`], but per
    /// tile only the stored (nonzero) weight rows are dequantised —
    /// contiguously, a convert + multiply with no table gather — and the
    /// per-sample accumulate iterates those rows directly, looking each
    /// one's input activation up by its `kl` index. Tiles the masks zeroed
    /// out entirely are empty row ranges and cost nothing.
    fn forward(&self, x: &Matrix, y: &mut Matrix, scratch: &mut [f32], live: Option<&[bool]>) {
        debug_assert_eq!(x.cols(), self.in_dim);
        debug_assert_eq!((y.rows(), y.cols()), (x.rows(), self.out_dim));
        let mut first_live = None;
        for r in 0..x.rows() {
            if row_live(live, r) {
                y.row_mut(r).copy_from_slice(&self.bias);
                first_live.get_or_insert(r);
            }
        }
        // Pick the accumulate flavour from the activation density of one
        // live row: one-hot input rows are ~2% nonzero and want the
        // zero-skipping loop, post-ReLU hidden rows are ~50% nonzero and
        // run faster as a straight branch-free SIMD walk (the skip branch
        // on near-random data mispredicts more than the multiplies cost).
        let dense = match first_live {
            None => return,
            Some(r) => {
                let nnz = x.row(r).iter().filter(|&&a| a != 0.0).count();
                nnz * 4 >= self.in_dim
            }
        };
        let jbn = self.out_dim.div_ceil(JB);
        let kbn = self.in_dim.div_ceil(KB);
        for jb in 0..jbn {
            let j0 = jb * JB;
            let jn = JB.min(self.out_dim - j0);
            for kb in 0..kbn {
                let t = jb * kbn + kb;
                let (r0, r1) = (self.tile_off[t] as usize, self.tile_off[t + 1] as usize);
                if r0 == r1 {
                    continue; // masked-out (all-zero) region of the weights
                }
                let scale = self.scales[t];
                let k0 = kb * KB;
                // Dequantise the stored rows back to back; every sample row
                // of the chunk reuses the scratch tile.
                let nrows = r1 - r0;
                let block = &self.data[r0 * JB..r1 * JB];
                for (s, &q) in scratch[..nrows * JB].iter_mut().zip(block) {
                    *s = q as f32 * scale;
                }
                let kls = &self.row_kl[r0..r1];
                accumulate_compacted_rows(
                    x,
                    y,
                    &scratch[..nrows * JB],
                    kls,
                    live,
                    k0,
                    j0,
                    jn,
                    dense,
                );
            }
        }
    }
}

/// Int8 counterpart of [`accumulate_tile_rows`]: the tile's weight rows are
/// already compacted to the nonzero ones, so the inner loop walks them
/// directly and fetches each row's activation via its `kl` index — zero
/// *weight* rows never appear at all. `dense` drops the zero-activation
/// skip for activation-dense rows, where a branch-free SIMD walk beats the
/// mispredict-prone test (adding `a · w` with `a == 0` contributes an exact
/// `+0.0`, value-preserving at the kernel's tolerance).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn accumulate_compacted_rows(
    x: &Matrix,
    y: &mut Matrix,
    scratch: &[f32],
    kls: &[u8],
    live: Option<&[bool]>,
    k0: usize,
    j0: usize,
    jn: usize,
    dense: bool,
) {
    for r in 0..x.rows() {
        if !row_live(live, r) {
            continue;
        }
        let x_row = &x.row(r)[k0..];
        let y_row = &mut y.row_mut(r)[j0..j0 + jn];
        if jn == JB {
            let mut acc0 = F32x8::load(&y_row[..8]);
            let mut acc1 = F32x8::load(&y_row[8..]);
            if dense {
                for (ri, &kl) in kls.iter().enumerate() {
                    let a = x_row[kl as usize];
                    let tile = &scratch[ri * JB..ri * JB + JB];
                    acc0 = acc0.fma(a, F32x8::load(&tile[..8]));
                    acc1 = acc1.fma(a, F32x8::load(&tile[8..]));
                }
            } else {
                for (ri, &kl) in kls.iter().enumerate() {
                    let a = x_row[kl as usize];
                    if a == 0.0 {
                        continue;
                    }
                    let tile = &scratch[ri * JB..ri * JB + JB];
                    acc0 = acc0.fma(a, F32x8::load(&tile[..8]));
                    acc1 = acc1.fma(a, F32x8::load(&tile[8..]));
                }
            }
            acc0.store(&mut y_row[..8]);
            acc1.store(&mut y_row[8..]);
        } else {
            for (ri, &kl) in kls.iter().enumerate() {
                let a = x_row[kl as usize];
                if a == 0.0 {
                    continue;
                }
                let tile = &scratch[ri * JB..ri * JB + jn];
                for (o, &wv) in y_row.iter_mut().zip(tile) {
                    *o += a * wv;
                }
            }
        }
    }
}

/// Int8 blocked backend: `i8` storage with per-block f32 scales, f32
/// accumulation, zero-tile skipping. Quantisation error is bounded per
/// weight by `tile_max / 254` (half a quantisation step), so logits track
/// the reference within a few percent — enough for estimate parity, at
/// roughly half the memory traffic of [`BlockedF16`] and none of its
/// table-gather dequantisation cost.
#[derive(Debug, Clone)]
pub struct Int8Blocked {
    layers: Vec<PackedLayerI8>,
}

impl Int8Blocked {
    /// Quantise frozen f32 layers into blocked int8 form.
    pub fn new(params: &FrozenLayers) -> Self {
        let layers = params
            .layers
            .iter()
            .zip(&params.residual)
            .map(|((w, b), &residual)| PackedLayerI8::pack(w, b, residual))
            .collect();
        Int8Blocked { layers }
    }
}

impl InferenceBackend for Int8Blocked {
    fn kind(&self) -> BackendKind {
        BackendKind::Int8Blocked
    }

    fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        self.forward_batch_into(input, None, out);
    }

    fn forward_batch_into(&self, input: &Matrix, live: Option<&[bool]>, out: &mut Matrix) {
        let mut scratch = [0.0f32; JB * KB];
        run_packed_stack(
            &self.layers,
            |l| l.residual,
            |l| l.out_dim,
            |l, x, y, m| l.forward(x, y, &mut scratch, m),
            input,
            live,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_representable_values() {
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), x, "{x}");
        }
        // Every f16 bit pattern decodes and re-encodes to itself (finite
        // values; NaN payloads are normalised to one quiet NaN).
        for bits in 0u16..=0xffff {
            let x = f16_bits_to_f32(bits);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
            } else {
                assert_eq!(f32_to_f16_bits(x), bits, "bits {bits:#06x} ({x})");
            }
        }
    }

    #[test]
    fn f16_conversion_error_is_bounded() {
        // Relative error of a single f32→f16 round trip is at most 2^-11
        // for normal values.
        let mut x = 6.1e-5f32; // just above the f16 normal threshold
        while x < 6.0e4 {
            for v in [x, -x] {
                let rt = f16_bits_to_f32(f32_to_f16_bits(v));
                assert!(
                    ((rt - v) / v).abs() <= 1.0 / 2048.0,
                    "{v} → {rt}: relative error too large"
                );
            }
            x *= 1.37;
        }
    }

    #[test]
    fn f16_handles_specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(1e10), 0x7c00, "overflow saturates to inf");
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000, "underflow flushes to zero");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Subnormal f16 (smallest positive: 2^-24).
        let tiny = 5.960_464_5e-8f32;
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
    }

    fn layer_stack(seed: u64, dims: &[(usize, usize)]) -> Arc<FrozenLayers> {
        // Deterministic pseudo-random weights without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 0.5
        };
        let layers = dims
            .iter()
            .map(|&(out, inp)| {
                (
                    Matrix::from_fn(out, inp, |_, _| next()),
                    Matrix::from_fn(1, out, |_, _| next()),
                )
            })
            .collect::<Vec<_>>();
        Arc::new(FrozenLayers {
            residual: vec![false; layers.len()],
            layers,
        })
    }

    #[test]
    fn blocked_f16_tracks_reference_within_tolerance() {
        let params = layer_stack(3, &[(50, 37), (50, 50), (37, 50)]);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let blocked = BlockedF16::new(&params);
        let input = Matrix::from_fn(9, 37, |r, c| if (r + c) % 3 == 0 { 0.0 } else { 0.3 });
        let mut a = Matrix::zeros(9, 37);
        let mut b = Matrix::zeros(9, 37);
        reference.forward_into(&input, &mut a);
        blocked.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            let scale = x.abs().max(1.0);
            assert!(
                (x - y).abs() / scale < 2e-2,
                "f16 diverged: {x} vs {y} (rel {})",
                (x - y).abs() / scale
            );
        }
    }

    #[test]
    fn int8_blocked_tracks_reference_within_tolerance() {
        let params = layer_stack(3, &[(50, 37), (50, 50), (37, 50)]);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let quantised = Int8Blocked::new(&params);
        let input = Matrix::from_fn(9, 37, |r, c| if (r + c) % 3 == 0 { 0.0 } else { 0.3 });
        let mut a = Matrix::zeros(9, 37);
        let mut b = Matrix::zeros(9, 37);
        reference.forward_into(&input, &mut a);
        quantised.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            let scale = x.abs().max(1.0);
            assert!(
                (x - y).abs() / scale < 1e-1,
                "int8 diverged: {x} vs {y} (rel {})",
                (x - y).abs() / scale
            );
        }
    }

    #[test]
    fn int8_blocked_handles_residual_and_ragged_dims() {
        let mut params = (*layer_stack(9, &[(70, 23), (70, 70), (23, 70)])).clone();
        params.residual[1] = true;
        let params = Arc::new(params);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let quantised = Int8Blocked::new(&params);
        let input = Matrix::from_fn(130, 23, |r, c| if (r * 7 + c) % 5 == 0 { 0.7 } else { 0.0 });
        let mut a = Matrix::zeros(130, 23);
        let mut b = Matrix::zeros(130, 23);
        reference.forward_into(&input, &mut a);
        quantised.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() / x.abs().max(1.0) < 1e-1, "{x} vs {y}");
        }
    }

    #[test]
    fn int8_quantisation_preserves_exact_zero_weights() {
        // The autoregressive masks rely on zeroed weights staying zero: a
        // masked (future-column) weight must never leak signal. Symmetric
        // quantisation maps 0.0 → code 0 → 0.0 exactly.
        let params = layer_stack(5, &[(32, 32), (32, 32)]);
        let mut masked = (*params).clone();
        for (w, _) in &mut masked.layers {
            let cols = w.cols();
            let rows = w.rows();
            for r in 0..rows {
                for c in 0..cols {
                    if (r + c) % 2 == 0 {
                        w.set(r, c, 0.0);
                    }
                }
            }
        }
        let masked = Arc::new(masked);
        let q = Int8Blocked::new(&masked);
        for (layer, (w, _)) in q.layers.iter().zip(&masked.layers) {
            // Reconstruct the dequantised weights from the compacted tiles;
            // anything not stored is zero by construction.
            let mut recon = Matrix::zeros(layer.out_dim, layer.in_dim);
            let kbn = layer.in_dim.div_ceil(KB);
            for jb in 0..layer.out_dim.div_ceil(JB) {
                for kb in 0..kbn {
                    let t = jb * kbn + kb;
                    let scale = layer.scales[t];
                    let (r0, r1) = (layer.tile_off[t] as usize, layer.tile_off[t + 1] as usize);
                    for ri in r0..r1 {
                        let kl = layer.row_kl[ri] as usize;
                        for jl in 0..JB.min(layer.out_dim - jb * JB) {
                            let code = layer.data[ri * JB + jl];
                            recon.set(jb * JB + jl, kb * KB + kl, code as f32 * scale);
                        }
                    }
                }
            }
            for jl in 0..layer.out_dim {
                for kl in 0..layer.in_dim {
                    if w.get(jl, kl) == 0.0 {
                        let v = recon.get(jl, kl);
                        assert_eq!(v, 0.0, "zero weight ({jl},{kl}) dequantised to {v}");
                    }
                }
            }
        }
    }

    /// Masked batch-major forwards must be bit-identical, per live row, to
    /// the unmasked forward of the same backend — and must leave masked-out
    /// rows of the output untouched.
    #[test]
    fn masked_forward_matches_unmasked_per_row() {
        let mut params = (*layer_stack(11, &[(70, 23), (70, 70), (23, 70)])).clone();
        params.residual[1] = true;
        let params = Arc::new(params);
        let backends: [Box<dyn InferenceBackend>; 3] = [
            Box::new(ReferenceF32::new(Arc::clone(&params))),
            Box::new(BlockedF16::new(&params)),
            Box::new(Int8Blocked::new(&params)),
        ];
        let rows = 13;
        let input = Matrix::from_fn(
            rows,
            23,
            |r, c| if (r * 5 + c) % 4 == 0 { 0.9 } else { 0.0 },
        );
        let mask: Vec<bool> = (0..rows).map(|r| r % 3 != 1).collect();
        for backend in &backends {
            let mut full = Matrix::zeros(rows, 23);
            backend.forward_into(&input, &mut full);
            let sentinel = -7.25f32;
            let mut masked = Matrix::from_fn(rows, 23, |_, _| sentinel);
            backend.forward_batch_into(&input, Some(&mask), &mut masked);
            for (r, &row_live) in mask.iter().enumerate() {
                for c in 0..23 {
                    if row_live {
                        assert_eq!(
                            full.get(r, c).to_bits(),
                            masked.get(r, c).to_bits(),
                            "{:?} row {r} col {c} diverged under mask",
                            backend.kind()
                        );
                    } else {
                        assert_eq!(
                            masked.get(r, c),
                            sentinel,
                            "{:?} wrote masked-out row {r}",
                            backend.kind()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backend_kind_parses_all_names_and_rejects_unknown() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        let err = "avx512".parse::<BackendKind>().unwrap_err();
        for name in ["f32", "f16", "int8"] {
            assert!(err.contains(name), "error {err:?} does not list {name}");
        }
    }

    #[test]
    fn blocked_f16_handles_residual_and_ragged_dims() {
        // Dims deliberately not multiples of the block sizes; middle layer
        // residual.
        let mut params = (*layer_stack(9, &[(70, 23), (70, 70), (23, 70)])).clone();
        params.residual[1] = true;
        let params = Arc::new(params);
        let reference = ReferenceF32::new(Arc::clone(&params));
        let blocked = BlockedF16::new(&params);
        let input = Matrix::from_fn(130, 23, |r, c| if (r * 7 + c) % 5 == 0 { 0.7 } else { 0.0 });
        let mut a = Matrix::zeros(130, 23);
        let mut b = Matrix::zeros(130, 23);
        reference.forward_into(&input, &mut a);
        blocked.forward_into(&input, &mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() / x.abs().max(1.0) < 2e-2, "{x} vs {y}");
        }
    }
}
