//! A causal Transformer as the alternative AR architecture (paper §4.1:
//! "SAM can be instantiated by any learning-based AR architecture (e.g.,
//! MADE and Transformer)").
//!
//! Autoregression comes from sequence position rather than weight masks:
//! column `i`'s token sits at position `i+1` (position 0 is a BOS slot
//! carrying only its positional embedding), causal self-attention lets each
//! position see only earlier ones, and column `i`'s logits are read from
//! position `i` — which has seen exactly columns `< i`. The external
//! interface matches [`crate::made::Made`]: one-hot concatenated inputs of
//! `total_width` and full-width logits out, so the DPS trainer and the
//! samplers drive both backbones identically.
//!
//! Small-model simplifications (documented): single attention head and no
//! layer norm — adequate at the widths this reproduction trains.

use crate::matrix::Matrix;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Transformer hyperparameters.
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Per-column domain sizes in autoregressive order.
    pub domain_sizes: Vec<usize>,
    /// Embedding / model width.
    pub d_model: usize,
    /// Number of attention + FFN blocks.
    pub blocks: usize,
    /// FFN width multiplier (hidden = `ff_mult · d_model`).
    pub ff_mult: usize,
    /// Init seed.
    pub seed: u64,
}

struct Block {
    wq: ParamId,
    bq: ParamId,
    wk: ParamId,
    bk: ParamId,
    wv: ParamId,
    bv: ParamId,
    wo: ParamId,
    bo: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

/// A causal Transformer AR network bound to a [`ParamStore`].
pub struct TransformerAr {
    domain_sizes: Vec<usize>,
    offsets: Vec<usize>,
    total_width: usize,
    d_model: usize,
    /// Per-column token embedding `d_model × D_i` (+ zero bias).
    embeds: Vec<(ParamId, ParamId)>,
    /// Positional embeddings, `(n+... ) = seq × d_model` (seq = n, with
    /// position 0 the BOS slot).
    pos: ParamId,
    blocks: Vec<Block>,
    /// Per-column output head `D_i × d_model` (+ bias).
    heads: Vec<(ParamId, ParamId)>,
}

fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

impl TransformerAr {
    /// Construct and register parameters.
    pub fn new(config: TransformerConfig, store: &mut ParamStore) -> Self {
        assert!(!config.domain_sizes.is_empty(), "need at least one column");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.d_model;
        let n = config.domain_sizes.len();

        let mut offsets = Vec::with_capacity(n);
        let mut total = 0usize;
        for &dom in &config.domain_sizes {
            offsets.push(total);
            total += dom;
        }

        let embeds = config
            .domain_sizes
            .iter()
            .map(|&dom| {
                (
                    store.add(xavier(d, dom, &mut rng)),
                    store.add(Matrix::zeros(1, d)),
                )
            })
            .collect();
        let pos = store.add(xavier(n, d, &mut rng).map(|x| x * 0.1));
        let blocks = (0..config.blocks)
            .map(|_| Block {
                wq: store.add(xavier(d, d, &mut rng)),
                bq: store.add(Matrix::zeros(1, d)),
                wk: store.add(xavier(d, d, &mut rng)),
                bk: store.add(Matrix::zeros(1, d)),
                wv: store.add(xavier(d, d, &mut rng)),
                bv: store.add(Matrix::zeros(1, d)),
                wo: store.add(xavier(d, d, &mut rng)),
                bo: store.add(Matrix::zeros(1, d)),
                w1: store.add(xavier(config.ff_mult * d, d, &mut rng)),
                b1: store.add(Matrix::zeros(1, config.ff_mult * d)),
                w2: store.add(xavier(d, config.ff_mult * d, &mut rng)),
                b2: store.add(Matrix::zeros(1, d)),
            })
            .collect();
        let heads = config
            .domain_sizes
            .iter()
            .map(|&dom| {
                (
                    store.add(xavier(dom, d, &mut rng)),
                    store.add(Matrix::zeros(1, dom)),
                )
            })
            .collect();

        TransformerAr {
            domain_sizes: config.domain_sizes,
            offsets,
            total_width: total,
            d_model: d,
            embeds,
            pos,
            blocks,
            heads,
        }
    }

    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domain_sizes[i]
    }

    /// One-hot block offset of column `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Input/logits width.
    pub fn total_width(&self) -> usize {
        self.total_width
    }

    /// Bind parameters as tape leaves for one training step.
    pub fn bind<'m>(&'m self, tape: &mut Tape, store: &ParamStore) -> BoundTransformer<'m> {
        let leaf = |tape: &mut Tape, id: ParamId| tape.leaf(store.value(id).clone());
        let embeds = self
            .embeds
            .iter()
            .map(|&(w, b)| (leaf(tape, w), leaf(tape, b)))
            .collect();
        let pos = leaf(tape, self.pos);
        let blocks = self
            .blocks
            .iter()
            .map(|b| BoundBlock {
                wq: leaf(tape, b.wq),
                bq: leaf(tape, b.bq),
                wk: leaf(tape, b.wk),
                bk: leaf(tape, b.bk),
                wv: leaf(tape, b.wv),
                bv: leaf(tape, b.bv),
                wo: leaf(tape, b.wo),
                bo: leaf(tape, b.bo),
                w1: leaf(tape, b.w1),
                b1: leaf(tape, b.b1),
                w2: leaf(tape, b.w2),
                b2: leaf(tape, b.b2),
            })
            .collect();
        let heads = self
            .heads
            .iter()
            .map(|&(w, b)| (leaf(tape, w), leaf(tape, b)))
            .collect();
        BoundTransformer {
            net: self,
            embeds,
            pos,
            blocks,
            heads,
        }
    }

    /// Snapshot for inference/sampling.
    pub fn freeze(&self, store: &ParamStore) -> FrozenTransformer {
        let grab = |id: ParamId| store.value(id).clone();
        FrozenTransformer {
            domain_sizes: self.domain_sizes.clone(),
            offsets: self.offsets.clone(),
            total_width: self.total_width,
            d_model: self.d_model,
            embeds: self
                .embeds
                .iter()
                .map(|&(w, b)| (grab(w), grab(b)))
                .collect(),
            pos: grab(self.pos),
            blocks: self
                .blocks
                .iter()
                .map(|b| FrozenBlock {
                    wq: grab(b.wq),
                    bq: grab(b.bq),
                    wk: grab(b.wk),
                    bk: grab(b.bk),
                    wv: grab(b.wv),
                    bv: grab(b.bv),
                    wo: grab(b.wo),
                    bo: grab(b.bo),
                    w1: grab(b.w1),
                    b1: grab(b.b1),
                    w2: grab(b.w2),
                    b2: grab(b.b2),
                })
                .collect(),
            heads: self
                .heads
                .iter()
                .map(|&(w, b)| (grab(w), grab(b)))
                .collect(),
        }
    }
}

struct BoundBlock {
    wq: Var,
    bq: Var,
    wk: Var,
    bk: Var,
    wv: Var,
    bv: Var,
    wo: Var,
    bo: Var,
    w1: Var,
    b1: Var,
    w2: Var,
    b2: Var,
}

/// A Transformer bound to a tape for one step.
pub struct BoundTransformer<'m> {
    net: &'m TransformerAr,
    embeds: Vec<(Var, Var)>,
    pos: Var,
    blocks: Vec<BoundBlock>,
    heads: Vec<(Var, Var)>,
}

impl<'m> BoundTransformer<'m> {
    /// Forward pass: `input` (B × total_width one-hots) → logits
    /// (B × total_width), same contract as MADE.
    pub fn forward(&self, tape: &mut Tape, input: Var) -> Var {
        let n = self.net.num_columns();
        let d = self.net.d_model;
        let batch = tape.value(input).rows();

        // Tokens: position 0 = BOS (zeros; the positional embedding fills
        // it), position t = embedding of column t-1.
        let zero_tok = tape.leaf(Matrix::zeros(batch, d));
        let mut parts = vec![zero_tok];
        for i in 0..n - 1 {
            let onehot = tape.slice_cols(input, self.net.offset(i), self.net.domain_size(i));
            let (w, b) = self.embeds[i];
            parts.push(tape.masked_linear(onehot, w, b, None));
        }
        let seq_input = tape.concat_seq(parts);
        let mut h = tape.add_position(seq_input, self.pos, n);

        let scale = 1.0 / (d as f32).sqrt();
        for blk in &self.blocks {
            let q = tape.masked_linear(h, blk.wq, blk.bq, None);
            let k = tape.masked_linear(h, blk.wk, blk.bk, None);
            let v = tape.masked_linear(h, blk.wv, blk.bv, None);
            let attn = tape.causal_attention(q, k, v, n, scale);
            let proj = tape.masked_linear(attn, blk.wo, blk.bo, None);
            h = tape.add(h, proj);
            let ff = tape.masked_linear(h, blk.w1, blk.b1, None);
            let ff = tape.relu(ff);
            let ff = tape.masked_linear(ff, blk.w2, blk.b2, None);
            h = tape.add(h, ff);
        }

        // Heads: column i's logits from position i, padded into full width.
        let mut logits: Option<Var> = None;
        for i in 0..n {
            let hi = tape.slice_seq_pos(h, n, i);
            let (w, b) = self.heads[i];
            let li = tape.masked_linear(hi, w, b, None);
            let padded = tape.pad_cols(li, self.net.offset(i), self.net.total_width());
            logits = Some(match logits {
                Some(acc) => tape.add(acc, padded),
                None => padded,
            });
        }
        logits.expect("at least one column")
    }

    /// Logit block of column `i`.
    pub fn logits_of(&self, tape: &mut Tape, logits: Var, i: usize) -> Var {
        tape.slice_cols(logits, self.net.offset(i), self.net.domain_size(i))
    }

    /// Fold gradients back into the store after `tape.backward`.
    pub fn apply_grads(&self, tape: &Tape, store: &mut ParamStore) {
        let mut fold = |var: Var, id: ParamId| store.accumulate_grad(id, &tape.grad(var));
        for ((wv, bv), &(w, b)) in self.embeds.iter().zip(&self.net.embeds) {
            fold(*wv, w);
            fold(*bv, b);
        }
        fold(self.pos, self.net.pos);
        for (bb, nb) in self.blocks.iter().zip(&self.net.blocks) {
            fold(bb.wq, nb.wq);
            fold(bb.bq, nb.bq);
            fold(bb.wk, nb.wk);
            fold(bb.bk, nb.bk);
            fold(bb.wv, nb.wv);
            fold(bb.bv, nb.bv);
            fold(bb.wo, nb.wo);
            fold(bb.bo, nb.bo);
            fold(bb.w1, nb.w1);
            fold(bb.b1, nb.b1);
            fold(bb.w2, nb.w2);
            fold(bb.b2, nb.b2);
        }
        for ((wv, bv), &(w, b)) in self.heads.iter().zip(&self.net.heads) {
            fold(*wv, w);
            fold(*bv, b);
        }
    }
}

#[derive(Clone)]
struct FrozenBlock {
    wq: Matrix,
    bq: Matrix,
    wk: Matrix,
    bk: Matrix,
    wv: Matrix,
    bv: Matrix,
    wo: Matrix,
    bo: Matrix,
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
}

/// Immutable Transformer snapshot for inference (`Send + Sync`).
#[derive(Clone)]
pub struct FrozenTransformer {
    domain_sizes: Vec<usize>,
    offsets: Vec<usize>,
    total_width: usize,
    d_model: usize,
    embeds: Vec<(Matrix, Matrix)>,
    pos: Matrix,
    blocks: Vec<FrozenBlock>,
    heads: Vec<(Matrix, Matrix)>,
}

fn linear(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
    let mut y = x.matmul_transb(w);
    for r in 0..y.rows() {
        for (o, &bb) in y.row_mut(r).iter_mut().zip(b.row(0)) {
            *o += bb;
        }
    }
    y
}

impl FrozenTransformer {
    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domain_sizes[i]
    }

    /// One-hot block offset of column `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Input/logits width.
    pub fn total_width(&self) -> usize {
        self.total_width
    }

    /// Forward pass mirroring [`BoundTransformer::forward`].
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let n = self.num_columns();
        let d = self.d_model;
        let batch = input.rows();

        // Sequence tensor (B·n × d).
        let mut h = Matrix::zeros(batch * n, d);
        for bi in 0..batch {
            for t in 0..n {
                let row = h.row_mut(bi * n + t);
                row.copy_from_slice(self.pos.row(t));
                if t > 0 {
                    let i = t - 1;
                    let (w, _b) = &self.embeds[i];
                    let off = self.offsets[i];
                    // onehot @ wᵀ = the column of w at the hot code; plus
                    // the embed bias.
                    for (c, val) in input.row(bi)[off..off + self.domain_sizes[i]]
                        .iter()
                        .enumerate()
                    {
                        if *val != 0.0 {
                            for (o, k) in row.iter_mut().enumerate() {
                                *k += val * w.get(o, c);
                            }
                        }
                    }
                    let bias = &self.embeds[i].1;
                    for (k, &bb) in row.iter_mut().zip(bias.row(0)) {
                        *k += bb;
                    }
                }
            }
        }

        let scale = 1.0 / (d as f32).sqrt();
        for blk in &self.blocks {
            let q = linear(&h, &blk.wq, &blk.bq);
            let k = linear(&h, &blk.wk, &blk.bk);
            let v = linear(&h, &blk.wv, &blk.bv);
            // Attention per batch block.
            let mut attn = Matrix::zeros(batch * n, d);
            for bi in 0..batch {
                for t in 0..n {
                    // scores over positions <= t.
                    let mut scores = vec![0.0f32; t + 1];
                    for (j, s) in scores.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for c in 0..d {
                            acc += q.get(bi * n + t, c) * k.get(bi * n + j, c);
                        }
                        *s = acc * scale;
                    }
                    let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0f32;
                    for s in scores.iter_mut() {
                        *s = (*s - m).exp();
                        sum += *s;
                    }
                    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
                    for c in 0..d {
                        let mut acc = 0.0f32;
                        for (j, s) in scores.iter().enumerate() {
                            acc += s * inv * v.get(bi * n + j, c);
                        }
                        attn.set(bi * n + t, c, acc);
                    }
                }
            }
            let proj = linear(&attn, &blk.wo, &blk.bo);
            h.add_assign(&proj);
            let ff = linear(&h, &blk.w1, &blk.b1).map(|x| x.max(0.0));
            let ff = linear(&ff, &blk.w2, &blk.b2);
            h.add_assign(&ff);
        }

        // Heads.
        let mut logits = Matrix::zeros(batch, self.total_width);
        for i in 0..n {
            let (w, b) = &self.heads[i];
            let off = self.offsets[i];
            for bi in 0..batch {
                for o in 0..self.domain_sizes[i] {
                    let mut acc = b.get(0, o);
                    for c in 0..d {
                        acc += h.get(bi * n + i, c) * w.get(o, c);
                    }
                    logits.set(bi, off + o, acc);
                }
            }
        }
        logits
    }

    /// Row-wise softmax of column `i`'s logit block (same as MADE's).
    pub fn conditional_probs(&self, logits: &Matrix, i: usize) -> Matrix {
        let off = self.offsets[i];
        let dsize = self.domain_sizes[i];
        let mut out = Matrix::zeros(logits.rows(), dsize);
        for r in 0..logits.rows() {
            let row = &logits.row(r)[off..off + dsize];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            let dst = out.row_mut(r);
            for (o, &v) in dst.iter_mut().zip(row) {
                let e = (v - m).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            dst.iter_mut().for_each(|o| *o *= inv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (TransformerAr, ParamStore) {
        let mut store = ParamStore::new();
        let net = TransformerAr::new(
            TransformerConfig {
                domain_sizes: vec![3, 2, 4],
                d_model: 8,
                blocks: 2,
                ff_mult: 2,
                seed: 5,
            },
            &mut store,
        );
        (net, store)
    }

    #[test]
    fn autoregressive_property() {
        let (net, store) = tiny();
        let frozen = net.freeze(&store);
        let mut base = Matrix::zeros(1, 9);
        base.set(0, 0, 1.0);
        base.set(0, 3, 1.0);
        base.set(0, 5, 1.0);
        let l1 = frozen.forward(&base);

        // Perturb column 2's input: logits of columns 0, 1 unchanged.
        let mut alt = base.clone();
        alt.set(0, 5, 0.0);
        alt.set(0, 8, 1.0);
        let l2 = frozen.forward(&alt);
        for j in 0..5 {
            assert!(
                (l1.get(0, j) - l2.get(0, j)).abs() < 1e-5,
                "logit {j} leaked from column 2"
            );
        }

        // Column 0 is input-independent (BOS only).
        let mut rnd = Matrix::zeros(1, 9);
        for j in 0..9 {
            rnd.set(0, j, 0.31 * (j as f32 + 1.0));
        }
        let l3 = frozen.forward(&rnd);
        for j in 0..3 {
            assert!((l1.get(0, j) - l3.get(0, j)).abs() < 1e-4);
        }
    }

    #[test]
    fn tape_forward_matches_frozen() {
        let (net, store) = tiny();
        let frozen = net.freeze(&store);
        let mut input = Matrix::zeros(2, 9);
        input.set(0, 1, 1.0);
        input.set(0, 4, 1.0);
        input.set(1, 2, 1.0);
        let expected = frozen.forward(&input);

        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &store);
        let iv = tape.leaf(input);
        let logits = bound.forward(&mut tape, iv);
        let got = tape.value(logits);
        for r in 0..2 {
            for c in 0..9 {
                assert!(
                    (got.get(r, c) - expected.get(r, c)).abs() < 1e-4,
                    "({r},{c}): {} vs {}",
                    got.get(r, c),
                    expected.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gradients_flow_into_every_parameter_group() {
        use std::rc::Rc;
        let (net, mut store) = tiny();
        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &store);
        let mut input = Matrix::zeros(2, 9);
        input.set(0, 0, 1.0);
        input.set(1, 1, 1.0);
        let iv = tape.leaf(input);
        let logits = bound.forward(&mut tape, iv);
        // Loss touching the LAST column so every earlier column's embedding
        // matters through attention.
        let block = bound.logits_of(&mut tape, logits, 2);
        let p = tape.softmax_rows(block, 1.0);
        let s = tape.row_dot_const(p, Rc::new(vec![1.0, 0.0, 0.0, 0.0]));
        let loss = tape.sq_err_mean(s, Rc::new(vec![1.0, 0.0]));
        tape.backward(loss);
        bound.apply_grads(&tape, &mut store);
        let total: f32 = (0..store.len())
            .map(|i| store.grad(crate::optim::ParamId(i)).norm_sq())
            .sum();
        assert!(total > 0.0, "no gradient reached the parameters");
        // The first column's embedding must receive gradient (through
        // attention into position 2's prediction).
        let embed0 = net.embeds[0].0;
        assert!(
            store.grad(embed0).norm_sq() > 0.0,
            "column-0 embedding got no gradient"
        );
    }

    #[test]
    fn attention_gradcheck_small() {
        // Finite-difference check through causal attention on a tiny case.
        use std::rc::Rc;
        let q0 = Matrix::from_fn(4, 3, |r, c| 0.1 * (r as f32) - 0.05 * (c as f32));
        let build = |tape: &mut Tape, x: Var| {
            let att = tape.causal_attention(x, x, x, 2, 0.577);
            let s = tape.row_dot_const(att, Rc::new(vec![1.0, -0.5, 0.25]));
            tape.sq_err_mean(s, Rc::new(vec![0.1, -0.2, 0.3, 0.0]))
        };
        let mut tape = Tape::new();
        let x = tape.leaf(q0.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let grad = tape.grad(x);

        let h = 1e-2f32;
        for idx in 0..q0.len() {
            let mut xp = q0.clone();
            xp.data_mut()[idx] += h;
            let mut tp = Tape::new();
            let vp = tp.leaf(xp);
            let lp = build(&mut tp, vp);
            let fp = tp.value(lp).get(0, 0);
            let mut xm = q0.clone();
            xm.data_mut()[idx] -= h;
            let mut tm = Tape::new();
            let vm = tm.leaf(xm);
            let lm = build(&mut tm, vm);
            let fm = tm.value(lm).get(0, 0);
            let numeric = (fp - fm) / (2.0 * h);
            let analytic = grad.data()[idx];
            assert!(
                (numeric - analytic).abs() <= 0.03 * (1.0 + numeric.abs().max(analytic.abs())),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
