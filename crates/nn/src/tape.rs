//! Reverse-mode automatic differentiation over matrices.
//!
//! A [`Tape`] records a DAG of matrix ops; [`Tape::backward`] walks it in
//! reverse, accumulating gradients. The op set is exactly what Differentiable
//! Progressive Sampling (paper §4.1) requires: masked linear layers,
//! ReLU, temperature softmax (for Gumbel-Softmax), column slicing/padding
//! (per-column one-hot blocks), constant row-dots (in-range mass and
//! expected inverse fanout), logs, and a mean-squared-error head on log
//! cardinalities.

use crate::matrix::Matrix;
use std::rc::Rc;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Leaf,
    /// `y = x @ (w ∘ mask)ᵀ + b` with `w: out×in`, `b: 1×out`.
    MaskedLinear {
        x: Var,
        w: Var,
        b: Var,
        mask: Option<Rc<Matrix>>,
    },
    Relu(Var),
    /// Row-wise `softmax(x / temp)`.
    SoftmaxRows {
        x: Var,
        temp: f32,
    },
    Add(Var, Var),
    /// `y = x + c` for a constant matrix (gradient passes through to `x`).
    AddConst {
        x: Var,
    },
    Scale {
        x: Var,
        c: f32,
    },
    MulElem(Var, Var),
    /// Columns `start..start+width` of `x`.
    SliceCols {
        x: Var,
        start: usize,
    },
    /// `x` placed at column `offset` inside a zero matrix of width `total`.
    PadCols {
        x: Var,
        offset: usize,
    },
    /// Per-row dot with a constant weight vector: `y[i] = Σ_j x[i,j]·w[j]`.
    RowDotConst {
        x: Var,
        w: Rc<Vec<f32>>,
    },
    /// Per-row dot with a constant weight *matrix*: `y[i] = Σ_j x[i,j]·W[i,j]`
    /// (each batch row has its own weights — batches mix queries with
    /// different predicate masks).
    RowDotRows {
        x: Var,
        w: Rc<Matrix>,
    },
    /// Elementwise `ln(x + eps)`.
    Log {
        x: Var,
        eps: f32,
    },
    /// Scalar `mean((x[i,0] - target[i])²)`.
    SqErrMeanConst {
        x: Var,
        target: Rc<Vec<f32>>,
    },
    /// Interleave `parts` (each `B×d`) into a `(B·n)×d` sequence tensor with
    /// row layout `(b·n + t)`.
    ConcatSeq {
        parts: Vec<Var>,
    },
    /// `y[b·n + t] = x[b·n + t] + pos[t]` — broadcast a positional/parameter
    /// matrix over the batch.
    AddPosition {
        x: Var,
        pos: Var,
        seq: usize,
    },
    /// Extract position `t` from a `(B·n)×d` sequence tensor → `B×d`.
    SliceSeqPos {
        x: Var,
        seq: usize,
        pos: usize,
    },
    /// Single-head causal self-attention over `(B·n)×d` q/k/v tensors.
    /// Attention weights are recomputed in backward.
    CausalAttention {
        q: Var,
        k: Var,
        v: Var,
        seq: usize,
        scale: f32,
    },
}

/// Row-softmax of an `n×n` score matrix with a causal mask (`j > i` blocked).
fn causal_softmax(scores: &Matrix) -> Matrix {
    let n = scores.rows();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let row = scores.row(i);
        let m = row[..=i].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let out = a.row_mut(i);
        for (j, o) in out.iter_mut().enumerate().take(i + 1) {
            let e = (row[j] - m).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        out[..=i].iter_mut().for_each(|o| *o *= inv);
    }
    a
}

/// Copy batch `b`'s `n×d` block out of a `(B·n)×d` tensor.
fn batch_block(x: &Matrix, b: usize, n: usize) -> Matrix {
    let d = x.cols();
    Matrix::from_fn(n, d, |t, c| x.get(b * n + t, c))
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// The gradient tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Record a leaf (input or parameter) node.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (zeros if it never received one).
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Matrix::zeros(self.nodes[v.0].value.rows(), self.nodes[v.0].value.cols()),
        }
    }

    /// `x @ (w ∘ mask)ᵀ + b`. `mask` (same shape as `w`) freezes connections
    /// — the MADE autoregressive masks.
    pub fn masked_linear(&mut self, x: Var, w: Var, b: Var, mask: Option<Rc<Matrix>>) -> Var {
        let (xv, wv, bv) = (
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            &self.nodes[b.0].value,
        );
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), wv.rows(), "bias width must equal out features");
        let eff = match &mask {
            Some(m) => wv.mul_elem(m),
            None => wv.clone(),
        };
        let mut y = xv.matmul_transb(&eff);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (o, &bb) in row.iter_mut().zip(bv.row(0)) {
                *o += bb;
            }
        }
        self.push(y, Op::MaskedLinear { x, w, b, mask })
    }

    /// Elementwise `max(x, 0)`.
    pub fn relu(&mut self, x: Var) -> Var {
        let y = self.nodes[x.0].value.map(|v| v.max(0.0));
        self.push(y, Op::Relu(x))
    }

    /// Row-wise temperature softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, x: Var, temp: f32) -> Var {
        let xv = &self.nodes[x.0].value;
        let mut y = Matrix::zeros(xv.rows(), xv.cols());
        for r in 0..xv.rows() {
            let row = xv.row(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            let out = y.row_mut(r);
            for (o, &v) in out.iter_mut().zip(row) {
                let e = ((v - m) / temp).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            out.iter_mut().for_each(|o| *o *= inv);
        }
        self.push(y, Op::SoftmaxRows { x, temp })
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut y = self.nodes[a.0].value.clone();
        y.add_assign(&self.nodes[b.0].value);
        self.push(y, Op::Add(a, b))
    }

    /// `x + c` for a constant matrix.
    pub fn add_const(&mut self, x: Var, c: Rc<Matrix>) -> Var {
        let mut y = self.nodes[x.0].value.clone();
        y.add_assign(&c);
        self.push(y, Op::AddConst { x })
    }

    /// `c * x`.
    pub fn scale(&mut self, x: Var, c: f32) -> Var {
        let y = self.nodes[x.0].value.map(|v| c * v);
        self.push(y, Op::Scale { x, c })
    }

    /// Elementwise `a ∘ b`.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let y = self.nodes[a.0].value.mul_elem(&self.nodes[b.0].value);
        self.push(y, Op::MulElem(a, b))
    }

    /// Columns `start..start+width` of `x`.
    pub fn slice_cols(&mut self, x: Var, start: usize, width: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        assert!(start + width <= xv.cols(), "slice out of range");
        let y = Matrix::from_fn(xv.rows(), width, |r, c| xv.get(r, start + c));
        self.push(y, Op::SliceCols { x, start })
    }

    /// `x` embedded at column `offset` of a zero matrix with `total` columns.
    pub fn pad_cols(&mut self, x: Var, offset: usize, total: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        assert!(offset + xv.cols() <= total, "pad out of range");
        let mut y = Matrix::zeros(xv.rows(), total);
        for r in 0..xv.rows() {
            let src = xv.row(r);
            y.row_mut(r)[offset..offset + src.len()].copy_from_slice(src);
        }
        self.push(y, Op::PadCols { x, offset })
    }

    /// `y[i] = Σ_j x[i,j]·w[j]` as a `batch×1` column.
    pub fn row_dot_const(&mut self, x: Var, w: Rc<Vec<f32>>) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.cols(), w.len(), "weight length mismatch");
        let y = Matrix::from_fn(xv.rows(), 1, |r, _| {
            xv.row(r).iter().zip(w.iter()).map(|(a, b)| a * b).sum()
        });
        self.push(y, Op::RowDotConst { x, w })
    }

    /// `y[i] = Σ_j x[i,j]·W[i,j]` as a `batch×1` column (per-row weights).
    pub fn row_dot_rows(&mut self, x: Var, w: Rc<Matrix>) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(
            (xv.rows(), xv.cols()),
            (w.rows(), w.cols()),
            "weight matrix shape mismatch"
        );
        let y = Matrix::from_fn(xv.rows(), 1, |r, _| {
            xv.row(r).iter().zip(w.row(r)).map(|(a, b)| a * b).sum()
        });
        self.push(y, Op::RowDotRows { x, w })
    }

    /// Elementwise `ln(x + eps)`.
    pub fn log(&mut self, x: Var, eps: f32) -> Var {
        let y = self.nodes[x.0].value.map(|v| (v + eps).ln());
        self.push(y, Op::Log { x, eps })
    }

    /// Scalar loss `mean_i (x[i,0] - target[i])²`.
    pub fn sq_err_mean(&mut self, x: Var, target: Rc<Vec<f32>>) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.cols(), 1, "loss input must be a column");
        assert_eq!(xv.rows(), target.len(), "target length mismatch");
        let n = target.len().max(1) as f32;
        let mse = xv
            .data()
            .iter()
            .zip(target.iter())
            .map(|(a, t)| (a - t) * (a - t))
            .sum::<f32>()
            / n;
        self.push(
            Matrix::from_vec(1, 1, vec![mse]),
            Op::SqErrMeanConst { x, target },
        )
    }

    /// Interleave `parts` (each `B×d`) into a `(B·n)×d` sequence tensor.
    pub fn concat_seq(&mut self, parts: Vec<Var>) -> Var {
        assert!(!parts.is_empty(), "need at least one sequence position");
        let b = self.nodes[parts[0].0].value.rows();
        let d = self.nodes[parts[0].0].value.cols();
        for p in &parts {
            let v = &self.nodes[p.0].value;
            assert_eq!((v.rows(), v.cols()), (b, d), "ragged sequence parts");
        }
        let n = parts.len();
        let mut y = Matrix::zeros(b * n, d);
        for (t, p) in parts.iter().enumerate() {
            let v = &self.nodes[p.0].value;
            for bi in 0..b {
                y.row_mut(bi * n + t).copy_from_slice(v.row(bi));
            }
        }
        self.push(y, Op::ConcatSeq { parts })
    }

    /// Broadcast-add an `n×d` parameter over the batch of a `(B·n)×d` tensor.
    pub fn add_position(&mut self, x: Var, pos: Var, seq: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        let pv = &self.nodes[pos.0].value;
        assert_eq!(pv.rows(), seq, "positional rows must equal seq");
        assert_eq!(pv.cols(), xv.cols(), "positional width mismatch");
        assert_eq!(xv.rows() % seq, 0, "rows must be a multiple of seq");
        let mut y = xv.clone();
        for r in 0..y.rows() {
            let t = r % seq;
            let prow: Vec<f32> = pv.row(t).to_vec();
            for (o, &p) in y.row_mut(r).iter_mut().zip(&prow) {
                *o += p;
            }
        }
        self.push(y, Op::AddPosition { x, pos, seq })
    }

    /// Rows at sequence position `pos` of a `(B·n)×d` tensor → `B×d`.
    pub fn slice_seq_pos(&mut self, x: Var, seq: usize, pos: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        assert!(pos < seq, "position out of range");
        assert_eq!(xv.rows() % seq, 0, "rows must be a multiple of seq");
        let b = xv.rows() / seq;
        let y = Matrix::from_fn(b, xv.cols(), |bi, c| xv.get(bi * seq + pos, c));
        self.push(y, Op::SliceSeqPos { x, seq, pos })
    }

    /// Single-head causal self-attention: softmax(QKᵀ·scale + causal mask)V,
    /// independently per batch block of `seq` rows.
    pub fn causal_attention(&mut self, q: Var, k: Var, v: Var, seq: usize, scale: f32) -> Var {
        let (rows, d) = {
            let qv = &self.nodes[q.0].value;
            (qv.rows(), qv.cols())
        };
        for var in [k, v] {
            let m = &self.nodes[var.0].value;
            assert_eq!((m.rows(), m.cols()), (rows, d), "q/k/v shape mismatch");
        }
        assert_eq!(rows % seq, 0, "rows must be a multiple of seq");
        let batches = rows / seq;
        let mut out = Matrix::zeros(rows, d);
        for b in 0..batches {
            let qb = batch_block(&self.nodes[q.0].value, b, seq);
            let kb = batch_block(&self.nodes[k.0].value, b, seq);
            let vb = batch_block(&self.nodes[v.0].value, b, seq);
            let scores = qb.matmul_transb(&kb).map(|x| x * scale);
            let a = causal_softmax(&scores);
            let ob = a.matmul(&vb);
            for t in 0..seq {
                out.row_mut(b * seq + t).copy_from_slice(ob.row(t));
            }
        }
        self.push(
            out,
            Op::CausalAttention {
                q,
                k,
                v,
                seq,
                scale,
            },
        )
    }

    fn accumulate(&mut self, v: Var, g: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run backpropagation from a scalar (`1×1`) root.
    pub fn backward(&mut self, root: Var) {
        let rv = &self.nodes[root.0].value;
        assert_eq!(
            (rv.rows(), rv.cols()),
            (1, 1),
            "backward root must be scalar"
        );
        self.nodes[root.0].grad = Some(Matrix::full(1, 1, 1.0));

        for i in (0..=root.0).rev() {
            let Some(g) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Decompose op without holding a borrow across accumulate calls.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MaskedLinear { x, w, b, mask } => {
                    let (x, w, b, mask) = (*x, *w, *b, mask.clone());
                    let xv = self.nodes[x.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let eff = match &mask {
                        Some(m) => wv.mul_elem(m),
                        None => wv,
                    };
                    // y = x @ effᵀ + b
                    let gx = g.matmul(&eff);
                    let mut gw = g.matmul_transa(&xv); // (out×in)
                    if let Some(m) = &mask {
                        gw = gw.mul_elem(m);
                    }
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    self.accumulate(x, gx);
                    self.accumulate(w, gw);
                    self.accumulate(b, gb);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        if xv.get(r, c) > 0.0 {
                            g.get(r, c)
                        } else {
                            0.0
                        }
                    });
                    self.accumulate(x, gx);
                }
                Op::SoftmaxRows { x, temp } => {
                    let (x, temp) = (*x, *temp);
                    let yv = self.nodes[i].value.clone();
                    let mut gx = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let gr = g.row(r);
                        let yr = yv.row(r);
                        let dot: f32 = gr.iter().zip(yr).map(|(a, b)| a * b).sum();
                        let out = gx.row_mut(r);
                        for ((o, &gi), &yi) in out.iter_mut().zip(gr).zip(yr) {
                            *o = yi * (gi - dot) / temp;
                        }
                    }
                    self.accumulate(x, gx);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::AddConst { x } => {
                    let x = *x;
                    self.accumulate(x, g);
                }
                Op::Scale { x, c } => {
                    let (x, c) = (*x, *c);
                    self.accumulate(x, g.map(|v| c * v));
                }
                Op::MulElem(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    self.accumulate(a, g.mul_elem(&bv));
                    self.accumulate(b, g.mul_elem(&av));
                }
                Op::SliceCols { x, start } => {
                    let (x, start) = (*x, *start);
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..g.rows() {
                        let src = g.row(r);
                        gx.row_mut(r)[start..start + src.len()].copy_from_slice(src);
                    }
                    self.accumulate(x, gx);
                }
                Op::PadCols { x, offset } => {
                    let (x, offset) = (*x, *offset);
                    let xv = &self.nodes[x.0].value;
                    let w = xv.cols();
                    let gx = Matrix::from_fn(xv.rows(), w, |r, c| g.get(r, offset + c));
                    self.accumulate(x, gx);
                }
                Op::RowDotConst { x, w } => {
                    let (x, w) = (*x, Rc::clone(w));
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::from_fn(xv.rows(), xv.cols(), |r, c| g.get(r, 0) * w[c]);
                    self.accumulate(x, gx);
                }
                Op::RowDotRows { x, w } => {
                    let (x, w) = (*x, Rc::clone(w));
                    let xv = &self.nodes[x.0].value;
                    let gx =
                        Matrix::from_fn(xv.rows(), xv.cols(), |r, c| g.get(r, 0) * w.get(r, c));
                    self.accumulate(x, gx);
                }
                Op::Log { x, eps } => {
                    let (x, eps) = (*x, *eps);
                    let xv = self.nodes[x.0].value.clone();
                    let gx = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        g.get(r, c) / (xv.get(r, c) + eps)
                    });
                    self.accumulate(x, gx);
                }
                Op::SqErrMeanConst { x, target } => {
                    let (x, target) = (*x, Rc::clone(target));
                    let xv = &self.nodes[x.0].value;
                    let n = target.len().max(1) as f32;
                    let scale = g.get(0, 0) * 2.0 / n;
                    let gx =
                        Matrix::from_fn(xv.rows(), 1, |r, _| scale * (xv.get(r, 0) - target[r]));
                    self.accumulate(x, gx);
                }
                Op::ConcatSeq { parts } => {
                    let parts = parts.clone();
                    let n = parts.len();
                    let b = g.rows() / n;
                    for (t, p) in parts.iter().enumerate() {
                        let d = self.nodes[p.0].value.cols();
                        let gp = Matrix::from_fn(b, d, |bi, c| g.get(bi * n + t, c));
                        self.accumulate(*p, gp);
                    }
                }
                Op::AddPosition { x, pos, seq } => {
                    let (x, pos, seq) = (*x, *pos, *seq);
                    let d = g.cols();
                    let mut gp = Matrix::zeros(seq, d);
                    for r in 0..g.rows() {
                        let t = r % seq;
                        for (o, &v) in gp.row_mut(t).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    self.accumulate(x, g.clone());
                    self.accumulate(pos, gp);
                }
                Op::SliceSeqPos { x, seq, pos } => {
                    let (x, seq, pos) = (*x, *seq, *pos);
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::zeros(xv.rows(), xv.cols());
                    for bi in 0..g.rows() {
                        gx.row_mut(bi * seq + pos).copy_from_slice(g.row(bi));
                    }
                    self.accumulate(x, gx);
                }
                Op::CausalAttention {
                    q,
                    k,
                    v,
                    seq,
                    scale,
                } => {
                    let (q, k, v, seq, scale) = (*q, *k, *v, *seq, *scale);
                    let rows = g.rows();
                    let d = g.cols();
                    let batches = rows / seq;
                    let mut gq = Matrix::zeros(rows, d);
                    let mut gk = Matrix::zeros(rows, d);
                    let mut gv = Matrix::zeros(rows, d);
                    for b in 0..batches {
                        let qb = batch_block(&self.nodes[q.0].value, b, seq);
                        let kb = batch_block(&self.nodes[k.0].value, b, seq);
                        let vb = batch_block(&self.nodes[v.0].value, b, seq);
                        let gb = batch_block(&g, b, seq);
                        // Recompute attention weights.
                        let scores = qb.matmul_transb(&kb).map(|x| x * scale);
                        let a = causal_softmax(&scores);
                        // Grad wrt V: Aᵀ g.
                        let gvb = a.transpose().matmul(&gb);
                        // Grad wrt A: g Vᵀ, then row-softmax backward.
                        let ga = gb.matmul_transb(&vb);
                        let mut gs = Matrix::zeros(seq, seq);
                        for i in 0..seq {
                            let arow = a.row(i);
                            let garow = ga.row(i);
                            let dot: f32 =
                                arow.iter().zip(garow).take(i + 1).map(|(x, y)| x * y).sum();
                            let out = gs.row_mut(i);
                            for j in 0..=i {
                                out[j] = arow[j] * (garow[j] - dot) * scale;
                            }
                        }
                        let gqb = gs.matmul(&kb);
                        let gkb = gs.transpose().matmul(&qb);
                        for t in 0..seq {
                            gq.row_mut(b * seq + t).copy_from_slice(gqb.row(t));
                            gk.row_mut(b * seq + t).copy_from_slice(gkb.row(t));
                            gv.row_mut(b * seq + t).copy_from_slice(gvb.row(t));
                        }
                    }
                    self.accumulate(q, gq);
                    self.accumulate(k, gk);
                    self.accumulate(v, gv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of one leaf.
    fn grad_check(build: impl Fn(&mut Tape, Var) -> Var, x0: Matrix, tol: f32) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let g = tape.grad(x);

        // Numeric gradient.
        let h = 1e-3f32;
        for idx in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[idx] += h;
            let mut tp = Tape::new();
            let vp = tp.leaf(xp);
            let lossp = build(&mut tp, vp);
            let lp = tp.value(lossp).get(0, 0);

            let mut xm = x0.clone();
            xm.data_mut()[idx] -= h;
            let mut tm = Tape::new();
            let vm = tm.leaf(xm);
            let lossm = build(&mut tm, vm);
            let lm = tm.value(lossm).get(0, 0);

            let numeric = (lp - lm) / (2.0 * h);
            let analytic = g.data()[idx];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn grad_linear_relu_chain() {
        let w0 = Matrix::from_vec(2, 3, vec![0.5, -0.3, 0.8, -0.1, 0.2, 0.4]);
        let b0 = Matrix::from_vec(1, 2, vec![0.1, -0.2]);
        let target = Rc::new(vec![0.7f32, -0.4]);
        grad_check(
            move |t, x| {
                let w = t.leaf(w0.clone());
                let b = t.leaf(b0.clone());
                let h = t.masked_linear(x, w, b, None);
                let h = t.relu(h);
                let s = t.row_dot_const(h, Rc::new(vec![1.0, -1.0]));
                t.sq_err_mean(s, Rc::clone(&target))
            },
            Matrix::from_vec(2, 3, vec![0.3, 0.9, -0.5, 0.2, 0.1, 0.6]),
            2e-2,
        );
    }

    #[test]
    fn grad_masked_linear_respects_mask() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let w = tape.leaf(Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        let b = tape.leaf(Matrix::zeros(1, 1));
        let mask = Rc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let y = tape.masked_linear(x, w, b, Some(mask));
        // Forward: only the unmasked connection contributes.
        assert!((tape.value(y).get(0, 0) - 0.5).abs() < 1e-6);
        let loss = tape.sq_err_mean(y, Rc::new(vec![0.0]));
        tape.backward(loss);
        let gw = tape.grad(w);
        assert!(gw.get(0, 0).abs() > 0.0);
        assert_eq!(gw.get(0, 1), 0.0, "masked weight must get zero grad");
        let gx = tape.grad(x);
        assert_eq!(gx.get(0, 1), 0.0, "masked input must get zero grad");
    }

    #[test]
    fn grad_softmax_log_chain() {
        let target = Rc::new(vec![-0.5f32, 0.2]);
        grad_check(
            move |t, x| {
                let p = t.softmax_rows(x, 1.0);
                let s = t.row_dot_const(p, Rc::new(vec![1.0, 0.0, 1.0]));
                let l = t.log(s, 1e-6);
                t.sq_err_mean(l, Rc::clone(&target))
            },
            Matrix::from_vec(2, 3, vec![0.1, 0.7, -0.4, 0.9, 0.0, 0.3]),
            2e-2,
        );
    }

    #[test]
    fn grad_softmax_with_temperature() {
        let target = Rc::new(vec![0.4f32]);
        grad_check(
            move |t, x| {
                let p = t.softmax_rows(x, 0.5);
                let s = t.row_dot_const(p, Rc::new(vec![0.3, 0.6, 0.1]));
                t.sq_err_mean(s, Rc::clone(&target))
            },
            Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.5]),
            2e-2,
        );
    }

    #[test]
    fn grad_slice_pad_add() {
        let target = Rc::new(vec![1.0f32]);
        grad_check(
            move |t, x| {
                let a = t.slice_cols(x, 0, 2);
                let b = t.slice_cols(x, 2, 2);
                let sum = t.add(a, b);
                let padded = t.pad_cols(sum, 1, 4);
                let s = t.row_dot_const(padded, Rc::new(vec![0.5, 1.0, -1.0, 2.0]));
                t.sq_err_mean(s, Rc::clone(&target))
            },
            Matrix::from_vec(1, 4, vec![0.3, -0.2, 0.8, 0.1]),
            2e-2,
        );
    }

    #[test]
    fn grad_row_dot_rows() {
        let w = Rc::new(Matrix::from_vec(2, 3, vec![1.0, 0.5, 0.0, 0.2, 0.0, 2.0]));
        let target = Rc::new(vec![0.3f32, -0.1]);
        grad_check(
            move |t, x| {
                let s = t.row_dot_rows(x, Rc::clone(&w));
                t.sq_err_mean(s, Rc::clone(&target))
            },
            Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.9, 0.1, 0.4, -0.6]),
            2e-2,
        );
    }

    #[test]
    fn grad_scale_mul_addconst() {
        let c = Rc::new(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        let target = Rc::new(vec![0.0f32]);
        grad_check(
            move |t, x| {
                let s = t.scale(x, 3.0);
                let m = t.mul_elem(s, x);
                let a = t.add_const(m, Rc::clone(&c));
                let d = t.row_dot_const(a, Rc::new(vec![1.0, 1.0]));
                t.sq_err_mean(d, Rc::clone(&target))
            },
            Matrix::from_vec(1, 2, vec![0.4, -0.7]),
            2e-2,
        );
    }

    #[test]
    fn add_accumulates_gradients_through_shared_node() {
        // loss = mean((x + x)²) → dloss/dx = 4x.
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 1, vec![1.5]));
        let y = tape.add(x, x);
        let loss = tape.sq_err_mean(y, Rc::new(vec![0.0]));
        tape.backward(loss);
        assert!((tape.grad(x).get(0, 0) - 12.0).abs() < 1e-5); // 2·(2x)·2 = 4x·... = 12 at x=1.5
    }
}
