//! Property-based tests for the neural substrate: algebraic identities of
//! the matrix kernels, randomized gradient checks of the tape, MADE's
//! autoregressive invariant under random configurations, and inference
//! backend parity (the `ReferenceF32` bit-match lock and the `BlockedF16`
//! / `Int8Blocked` tolerance bounds).

use proptest::prelude::*;
use sam_nn::{BackendKind, FrozenMade, Made, MadeConfig, Matrix, ParamStore, Tape};
use std::rc::Rc;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// The pre-refactor `FrozenMade::forward` loop, kept verbatim as the oracle
/// the `ReferenceF32` backend must bit-match forever.
fn legacy_forward(frozen: &FrozenMade, input: &Matrix) -> Matrix {
    let mut h = input.clone();
    let last = frozen.layers().len() - 1;
    for (i, (w, b)) in frozen.layers().iter().enumerate() {
        let mut y = h.matmul_transb(w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (o, &bb) in row.iter_mut().zip(b.row(0)) {
                *o += bb;
            }
        }
        if frozen.residual_flags()[i] {
            y.add_assign(&h);
        }
        if i != last {
            y = y.map(|v| v.max(0.0));
        }
        h = y;
    }
    h
}

/// A random frozen MADE plus a batch of random one-hot-ish inputs.
fn random_frozen(
    domains: &[usize],
    hidden: Vec<usize>,
    seed: u64,
    residual: bool,
) -> (FrozenMade, Matrix) {
    let mut store = ParamStore::new();
    let made = Made::new(
        MadeConfig {
            domain_sizes: domains.to_vec(),
            hidden,
            seed,
            residual,
        },
        &mut store,
    );
    let frozen = made.freeze(&store);
    let width = frozen.total_width();
    let mut input = Matrix::zeros(37, width);
    // One-hot rows with a seeded spread, like real sampling prefixes.
    for r in 0..input.rows() {
        for (i, &d) in domains.iter().enumerate() {
            if (r + i) % 3 != 0 {
                let code = (r * 31 + i * 17 + seed as usize) % d;
                input.set(r, frozen.offset(i) + code, 1.0);
            }
        }
    }
    (frozen, input)
}

proptest! {
    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in arb_matrix(2, 3),
        b in arb_matrix(3, 3),
        c in arb_matrix(3, 3),
    ) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Randomized gradient check of a softmax → weighted-sum → log → MSE
    /// chain (the exact op composition DPS uses).
    #[test]
    fn random_gradient_check(
        x0 in arb_matrix(2, 4),
        w in prop::collection::vec(0.05f32..1.0, 4),
        t in prop::collection::vec(-1.0f32..1.0, 2),
    ) {
        let build = |tape: &mut Tape, x| {
            let p = tape.softmax_rows(x, 1.0);
            let s = tape.row_dot_const(p, Rc::new(w.clone()));
            let l = tape.log(s, 1e-6);
            tape.sq_err_mean(l, Rc::new(t.clone()))
        };
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let grad = tape.grad(x);

        let h = 1e-2f32;
        for idx in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[idx] += h;
            let mut tp = Tape::new();
            let vp = tp.leaf(xp);
            let lp = build(&mut tp, vp);
            let fp = tp.value(lp).get(0, 0);

            let mut xm = x0.clone();
            xm.data_mut()[idx] -= h;
            let mut tm = Tape::new();
            let vm = tm.leaf(xm);
            let lm = build(&mut tm, vm);
            let fm = tm.value(lm).get(0, 0);

            let numeric = (fp - fm) / (2.0 * h);
            let analytic = grad.data()[idx];
            prop_assert!(
                (numeric - analytic).abs() <= 0.05 * (1.0 + numeric.abs().max(analytic.abs())),
                "idx {}: numeric {} vs analytic {}", idx, numeric, analytic
            );
        }
    }

    /// MADE's autoregressive property holds for random shapes and seeds:
    /// perturbing column j's input never changes logits of columns <= j.
    #[test]
    fn made_autoregressive_property(
        domains in prop::collection::vec(2usize..5, 2..5),
        hidden in 4usize..24,
        seed in 0u64..1000,
        perturb_col in any::<prop::sample::Index>(),
    ) {
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig { domain_sizes: domains.clone(), hidden: vec![hidden], seed, residual: false },
            &mut store,
        );
        let frozen = made.freeze(&store);
        let width = frozen.total_width();
        let base = Matrix::zeros(1, width);
        let l1 = frozen.forward(&base);

        let j = perturb_col.index(domains.len());
        let mut alt = base.clone();
        alt.set(0, frozen.offset(j), 1.0);
        let l2 = frozen.forward(&alt);

        // Logits of all columns i <= j must be untouched.
        for i in 0..=j {
            let off = frozen.offset(i);
            for k in 0..frozen.domain_size(i) {
                prop_assert!(
                    (l1.get(0, off + k) - l2.get(0, off + k)).abs() < 1e-5,
                    "column {} leaked into column {}", j, i
                );
            }
        }
    }

    /// `ReferenceF32` bit-matches the pre-refactor forward loop and stays
    /// within float tolerance of the tape-bound training forward,
    /// `BlockedF16` stays within its half-precision tolerance, and
    /// `Int8Blocked` within its stated per-block-quantisation tolerance —
    /// all on random model shapes, seeds, and residual settings.
    #[test]
    fn backend_parity(
        domains in prop::collection::vec(2usize..5, 2..5),
        hidden in 6usize..20,
        seed in 0u64..1000,
        residual in any::<bool>(),
    ) {
        let (frozen, input) = random_frozen(&domains, vec![hidden, hidden], seed, residual);
        let reference = frozen.forward(&input);

        // (a) ReferenceF32 is bit-exact against the legacy loop.
        let legacy = legacy_forward(&frozen, &input);
        for (x, y) in reference.data().iter().zip(legacy.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // (b) Matches the tape-bound training forward within float tolerance.
        let mut store = ParamStore::new();
        let made = Made::new(
            MadeConfig {
                domain_sizes: domains.clone(),
                hidden: vec![hidden, hidden],
                seed,
                residual,
            },
            &mut store,
        );
        let mut tape = Tape::new();
        let bound = made.bind(&mut tape, &store);
        let x = tape.leaf(input.clone());
        let logits = bound.forward(&mut tape, x);
        let tape_out = tape.value(logits);
        for (x, y) in reference.data().iter().zip(tape_out.data()) {
            prop_assert!((x - y).abs() < 1e-4, "reference {} vs tape {}", x, y);
        }

        // (c) BlockedF16 within relative half-precision tolerance.
        let f16 = frozen.with_backend(BackendKind::BlockedF16);
        prop_assert_eq!(f16.backend_kind(), BackendKind::BlockedF16);
        let half = f16.forward(&input);
        for (x, y) in reference.data().iter().zip(half.data()) {
            let tol = 2e-2 * (1.0 + x.abs());
            prop_assert!((x - y).abs() <= tol, "f32 {} vs f16 {}", x, y);
        }

        // (d) Int8Blocked within its stated logit tolerance: per-block
        // symmetric quantisation bounds each weight's error by
        // max|block| / 254, which across these layer widths stays inside a
        // 1e-1 relative envelope.
        let int8 = frozen.with_backend(BackendKind::Int8Blocked);
        prop_assert_eq!(int8.backend_kind(), BackendKind::Int8Blocked);
        let quant = int8.forward(&input);
        for (x, y) in reference.data().iter().zip(quant.data()) {
            let tol = 1e-1 * (1.0 + x.abs());
            prop_assert!((x - y).abs() <= tol, "f32 {} vs int8 {}", x, y);
        }
    }

    /// Softmax outputs are valid distributions for arbitrary logits.
    #[test]
    fn softmax_is_distribution(x in arb_matrix(3, 5), temp in 0.2f32..3.0) {
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let p = tape.softmax_rows(v, temp);
        let out = tape.value(p);
        for r in 0..out.rows() {
            let sum: f32 = out.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(out.row(r).iter().all(|&x| (0.0..=1.0001).contains(&x)));
        }
    }
}
