//! Workload generators (paper §5.1).
//!
//! These mimic how the paper's input workloads were produced *on the target
//! database* (they are experiment infrastructure, not part of SAM — SAM only
//! ever sees the resulting labelled queries):
//!
//! * **Single-relation** (Census/DMV): draw the number of filters `n_f ∈
//!   1..=5`, uniformly sample `n_f` columns and operators from `{<=, =, >=}`,
//!   and take the literals from a uniformly sampled tuple.
//! * **Multi-relation** (IMDB, MSCN-style): 0–2 joins over a connected
//!   subtree of the join graph, per-table filter counts drawn from `0..=n_cols`,
//!   literals from a join-consistent tuple.
//! * **JOB-light-style** test queries: joins of up to 5 relations.
//! * **Coverage-restricted** workloads (Fig 8): literals confined to a
//!   centred window covering a fixed ratio of each column's domain.

use crate::predicate::{CompareOp, Constraint, Predicate};
use crate::query::Query;
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_storage::{Database, Table, NULL_CODE};
use std::collections::HashSet;

const RANGE_OPS: [CompareOp; 3] = [CompareOp::Le, CompareOp::Eq, CompareOp::Ge];

/// Per-column literal windows implementing the Fig 8 coverage-ratio
/// restriction: literals are clamped into the central `ratio` fraction of
/// each column's code space.
#[derive(Debug, Clone)]
pub struct CoverageWindows {
    /// Per content column (schema order): allowed half-open code window.
    windows: Vec<std::ops::Range<u32>>,
    /// Content column indices the windows correspond to.
    columns: Vec<usize>,
}

impl CoverageWindows {
    /// Centred windows covering `ratio ∈ (0, 1]` of each content column's
    /// domain of `table`.
    pub fn centered(table: &Table, ratio: f64) -> Self {
        let ratio = ratio.clamp(0.0, 1.0);
        let columns = table.schema().content_indices();
        let windows = columns
            .iter()
            .map(|&ci| {
                let d = table.column(ci).domain().len() as u32;
                let len = ((d as f64 * ratio).ceil() as u32).clamp(1, d.max(1));
                let start = (d - len) / 2;
                start..start + len
            })
            .collect();
        CoverageWindows { windows, columns }
    }

    fn clamp_code(&self, column: usize, code: u32) -> u32 {
        match self.columns.iter().position(|&c| c == column) {
            Some(i) => {
                let w = &self.windows[i];
                code.clamp(w.start, w.end.saturating_sub(1))
            }
            None => code,
        }
    }
}

/// Seeded query generator over a target database.
#[derive(Debug)]
pub struct WorkloadGenerator<'a> {
    db: &'a Database,
    rng: StdRng,
}

impl<'a> WorkloadGenerator<'a> {
    /// Create a generator with a deterministic seed.
    pub fn new(db: &'a Database, seed: u64) -> Self {
        WorkloadGenerator {
            db,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One single-relation query on `table` following the paper's recipe.
    /// `coverage` optionally clamps literals into restricted windows.
    pub fn single_query(&mut self, table: &str, coverage: Option<&CoverageWindows>) -> Query {
        let t = self
            .db
            .table_by_name(table)
            .expect("workload table must exist");
        let content: Vec<usize> = t
            .schema()
            .content_indices()
            .into_iter()
            .filter(|&ci| !t.column(ci).domain().is_empty())
            .collect();
        if content.is_empty() || t.num_rows() == 0 {
            return Query::single(table, vec![]);
        }
        let max_f = content.len().clamp(1, 5);
        let n_f = self.rng.gen_range(1..=max_f);
        let cols: Vec<usize> = content
            .choose_multiple(&mut self.rng, n_f)
            .copied()
            .collect();
        let row = self.rng.gen_range(0..t.num_rows().max(1));
        let predicates = cols
            .into_iter()
            .map(|ci| {
                let column = t.column(ci);
                let mut code = column.code(row);
                if code == NULL_CODE {
                    code = self.rng.gen_range(0..column.domain().len().max(1)) as u32;
                }
                if let Some(cov) = coverage {
                    code = cov.clamp_code(ci, code);
                }
                let literal = column.domain().value(code).clone();
                // Occasionally emit an IN list around the sampled value
                // (the paper's query class includes IN clauses).
                let constraint = if coverage.is_none() && self.rng.gen_bool(0.12) {
                    let extra = self.rng.gen_range(1..=3usize);
                    let mut values = vec![literal];
                    for _ in 0..extra {
                        let c = self.rng.gen_range(0..column.domain().len().max(1)) as u32;
                        values.push(column.domain().value(c).clone());
                    }
                    values.sort();
                    values.dedup();
                    Constraint::In(values)
                } else {
                    let op = *RANGE_OPS.choose(&mut self.rng).expect("ops non-empty");
                    Constraint::Compare(op, literal)
                };
                Predicate {
                    table: table.to_string(),
                    column: t.schema().columns[ci].name.clone(),
                    constraint,
                }
            })
            .collect();
        Query::single(table, predicates)
    }

    /// A workload of `n` single-relation queries on `table`.
    pub fn single_workload(&mut self, table: &str, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.single_query(table, None)).collect()
    }

    /// A coverage-restricted workload (Fig 8): same recipe, literals clamped
    /// into centred windows covering `ratio` of each column's domain.
    pub fn coverage_workload(&mut self, table: &str, n: usize, ratio: f64) -> Vec<Query> {
        let t = self.db.table_by_name(table).expect("table exists");
        let cov = CoverageWindows::centered(t, ratio);
        (0..n)
            .map(|_| self.single_query(table, Some(&cov)))
            .collect()
    }

    /// Pick a connected subtree of the join graph with `size` tables via a
    /// random neighbour walk.
    fn random_subtree(&mut self, size: usize) -> Vec<usize> {
        let graph = self.db.graph();
        let n = graph.len();
        let size = size.clamp(1, n);
        let mut chosen = vec![self.rng.gen_range(0..n)];
        while chosen.len() < size {
            // Candidate neighbours of the current set.
            let mut frontier: Vec<usize> = Vec::new();
            for &t in &chosen {
                if let Some(p) = graph.parent(t) {
                    if !chosen.contains(&p) {
                        frontier.push(p);
                    }
                }
                for &c in graph.children(t) {
                    if !chosen.contains(&c) {
                        frontier.push(c);
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
            match frontier.choose(&mut self.rng) {
                Some(&next) => chosen.push(next),
                None => break,
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// A join-consistent tuple: one row index per table of `subtree`, chosen
    /// so joined fk/pk values line up where possible.
    fn consistent_rows(&mut self, subtree: &[usize]) -> Vec<(usize, usize)> {
        let graph = self.db.graph();
        // Process top-down (topo order restricted to the subtree): the parent
        // row determines candidate child rows.
        let order: Vec<usize> = graph
            .topo_order()
            .iter()
            .copied()
            .filter(|t| subtree.contains(t))
            .collect();
        let mut picked: Vec<(usize, usize)> = Vec::new();
        for &t in &order {
            let table = self.db.table(t);
            let parent_pick = graph
                .parent(t)
                .and_then(|p| picked.iter().find(|(pt, _)| *pt == p).copied());
            let row = match parent_pick {
                Some((p, prow)) => {
                    let pk_idx = self.db.table(p).schema().pk_index().expect("parent pk");
                    let key = self.db.table(p).value(prow, pk_idx);
                    let fk_name = graph.fk_column(t).expect("non-root fk");
                    let fk_idx = table.schema().column_index(fk_name).expect("fk col");
                    let matches: Vec<usize> = (0..table.num_rows())
                        .filter(|&r| table.value(r, fk_idx) == key)
                        .collect();
                    match matches.choose(&mut self.rng) {
                        Some(&r) => r,
                        None => self.rng.gen_range(0..table.num_rows().max(1)),
                    }
                }
                None => self.rng.gen_range(0..table.num_rows().max(1)),
            };
            picked.push((t, row));
        }
        picked
    }

    /// One MSCN-style multi-relation query: joins drawn from `0..=max_joins`,
    /// per-table filter counts from `0..=n_content`, literals from a
    /// join-consistent tuple.
    pub fn multi_query(&mut self, max_joins: usize) -> Query {
        let joins = self.rng.gen_range(0..=max_joins);
        let subtree = self.random_subtree(joins + 1);
        let rows = self.consistent_rows(&subtree);
        let mut predicates = Vec::new();
        for &(t, row) in &rows {
            let table = self.db.table(t);
            if table.num_rows() == 0 {
                continue;
            }
            let content: Vec<usize> = table
                .schema()
                .content_indices()
                .into_iter()
                .filter(|&ci| !table.column(ci).domain().is_empty())
                .collect();
            if content.is_empty() {
                continue;
            }
            let n_f = self.rng.gen_range(0..=content.len());
            let cols: Vec<usize> = content
                .choose_multiple(&mut self.rng, n_f)
                .copied()
                .collect();
            for ci in cols {
                let op = *RANGE_OPS.choose(&mut self.rng).expect("ops");
                let column = table.column(ci);
                let mut code = column.code(row);
                if code == NULL_CODE {
                    code = self.rng.gen_range(0..column.domain().len().max(1)) as u32;
                }
                let literal = column.domain().value(code).clone();
                predicates.push(Predicate {
                    table: table.name().to_string(),
                    column: table.schema().columns[ci].name.clone(),
                    constraint: Constraint::Compare(op, literal),
                });
            }
        }
        let tables = subtree
            .iter()
            .map(|&t| self.db.table(t).name().to_string())
            .collect();
        Query::join(tables, predicates)
    }

    /// A workload of `n` MSCN-style queries.
    pub fn multi_workload(&mut self, n: usize, max_joins: usize) -> Vec<Query> {
        (0..n).map(|_| self.multi_query(max_joins)).collect()
    }

    /// A JOB-light-style test workload: `n` join queries over 2–6 relations
    /// with 1–4 filters total, mirroring the benchmark's join-size mix.
    pub fn job_light_style(&mut self, n: usize) -> Vec<Query> {
        let graph = self.db.graph();
        let max_tables = graph.len().min(6);
        (0..n)
            .map(|_| {
                let size = self.rng.gen_range(2..=max_tables.max(2));
                let subtree = self.random_subtree(size);
                let rows = self.consistent_rows(&subtree);
                let total_filters = self.rng.gen_range(1..=4usize);
                let mut predicates = Vec::new();
                let mut used: HashSet<(usize, usize)> = HashSet::new();
                for _ in 0..total_filters {
                    let &(t, row) = rows.choose(&mut self.rng).expect("rows non-empty");
                    let table = self.db.table(t);
                    if table.num_rows() == 0 {
                        continue;
                    }
                    let content: Vec<usize> = table
                        .schema()
                        .content_indices()
                        .into_iter()
                        .filter(|&ci| !table.column(ci).domain().is_empty())
                        .collect();
                    if content.is_empty() {
                        continue;
                    }
                    let ci = *content.choose(&mut self.rng).expect("content");
                    if !used.insert((t, ci)) {
                        continue;
                    }
                    let op = *RANGE_OPS.choose(&mut self.rng).expect("ops");
                    let column = table.column(ci);
                    let mut code = column.code(row);
                    if code == NULL_CODE {
                        code = self.rng.gen_range(0..column.domain().len().max(1)) as u32;
                    }
                    let literal = column.domain().value(code).clone();
                    predicates.push(Predicate {
                        table: table.name().to_string(),
                        column: table.schema().columns[ci].name.clone(),
                        constraint: Constraint::Compare(op, literal),
                    });
                }
                let tables = subtree
                    .iter()
                    .map(|&t| self.db.table(t).name().to_string())
                    .collect();
                Query::join(tables, predicates)
            })
            .collect()
    }
}

/// Remove duplicate queries (by rendered SQL), preserving order — the paper's
/// test workloads "are ensured to have no duplicate query".
pub fn dedup_queries(queries: Vec<Query>) -> Vec<Query> {
    let mut seen = HashSet::new();
    queries
        .into_iter()
        .filter(|q| seen.insert(q.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_cardinality;
    use sam_storage::paper_example;

    #[test]
    fn single_queries_have_1_to_5_filters() {
        let db = paper_example::figure3_database();
        let mut g = WorkloadGenerator::new(&db, 7);
        for _ in 0..50 {
            let q = g.single_query("A", None);
            assert!(q.num_predicates() >= 1);
            assert!(q.num_predicates() <= 5);
            assert!(q.is_single_relation());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = paper_example::figure3_database();
        let a: Vec<String> = WorkloadGenerator::new(&db, 42)
            .single_workload("A", 10)
            .iter()
            .map(|q| q.to_string())
            .collect();
        let b: Vec<String> = WorkloadGenerator::new(&db, 42)
            .single_workload("A", 10)
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = WorkloadGenerator::new(&db, 43)
            .single_workload("A", 10)
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn multi_queries_form_connected_subtrees() {
        let db = paper_example::figure3_database();
        let mut g = WorkloadGenerator::new(&db, 11);
        for _ in 0..50 {
            let q = g.multi_query(2);
            assert!(q.table_closure(db.graph()).is_some());
            assert!(q.num_joins() <= 2);
            // All queries must be evaluable.
            evaluate_cardinality(&db, &q).unwrap();
        }
    }

    #[test]
    fn literals_from_tuples_give_nonzero_cards_often() {
        // Because literals come from real tuples, equality-only
        // single-relation queries are satisfiable by construction.
        let db = paper_example::figure3_database();
        let mut g = WorkloadGenerator::new(&db, 3);
        let nonzero = (0..100)
            .filter(|_| {
                let q = g.single_query("A", None);
                evaluate_cardinality(&db, &q).unwrap() > 0
            })
            .count();
        assert!(nonzero >= 95, "only {nonzero}/100 queries non-empty");
    }

    #[test]
    fn coverage_windows_restrict_literals() {
        let db = paper_example::figure3_database();
        let t = db.table_by_name("A").unwrap();
        // Content column "a" has domain {m, n}; ratio 0.5 → window of 1 code.
        let cov = CoverageWindows::centered(t, 0.5);
        let mut g = WorkloadGenerator::new(&db, 5);
        for _ in 0..30 {
            let q = g.single_query("A", Some(&cov));
            for p in &q.predicates {
                // All literals must come from the single allowed code.
                assert_eq!(p.literals().len(), 1);
            }
        }
    }

    #[test]
    fn dedup_removes_repeats() {
        let db = paper_example::figure3_database();
        let mut g = WorkloadGenerator::new(&db, 9);
        let qs = g.single_workload("A", 200);
        let deduped = dedup_queries(qs.clone());
        assert!(deduped.len() < qs.len(), "tiny domain must repeat");
        let strings: Vec<String> = deduped.iter().map(|q| q.to_string()).collect();
        let set: HashSet<&String> = strings.iter().collect();
        assert_eq!(set.len(), strings.len());
    }

    #[test]
    fn job_light_style_queries_are_joins() {
        let db = paper_example::figure3_database();
        let mut g = WorkloadGenerator::new(&db, 21);
        for q in g.job_light_style(20) {
            assert!(q.tables.len() >= 2);
            evaluate_cardinality(&db, &q).unwrap();
        }
    }
}
