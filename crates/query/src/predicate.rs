//! Selection predicates on content columns (paper §2.2).
//!
//! Supported constraints: range (`<`, `<=`, `>`, `>=`), equality, and IN
//! lists, on numerical or categorical columns. Join-key columns are never
//! filtered (the paper's standing assumption).

use sam_storage::{Domain, Value};
use std::fmt;

/// Comparison operators for range/equality constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Eq => "=",
            CompareOp::Ge => ">=",
            CompareOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// The constraint half of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `column <op> literal`.
    Compare(CompareOp, Value),
    /// `column IN (v1, v2, …)`.
    In(Vec<Value>),
}

/// A predicate: a constraint on one content column of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Table name.
    pub table: String,
    /// Content column name.
    pub column: String,
    /// The constraint.
    pub constraint: Constraint,
}

impl Predicate {
    /// `table.column <op> literal`.
    pub fn compare(
        table: impl Into<String>,
        column: impl Into<String>,
        op: CompareOp,
        literal: impl Into<Value>,
    ) -> Self {
        Predicate {
            table: table.into(),
            column: column.into(),
            constraint: Constraint::Compare(op, literal.into()),
        }
    }

    /// `table.column IN (values…)`.
    pub fn in_list(
        table: impl Into<String>,
        column: impl Into<String>,
        values: Vec<Value>,
    ) -> Self {
        Predicate {
            table: table.into(),
            column: column.into(),
            constraint: Constraint::In(values),
        }
    }

    /// Does a (non-NULL) value satisfy the constraint? NULL never matches.
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match &self.constraint {
            Constraint::Compare(op, lit) => match op {
                CompareOp::Lt => v < lit,
                CompareOp::Le => v <= lit,
                CompareOp::Eq => v == lit,
                CompareOp::Ge => v >= lit,
                CompareOp::Gt => v > lit,
            },
            Constraint::In(vals) => vals.contains(v),
        }
    }

    /// The literal(s) referenced by this predicate (used by intervalization).
    pub fn literals(&self) -> Vec<&Value> {
        match &self.constraint {
            Constraint::Compare(_, lit) => vec![lit],
            Constraint::In(vals) => vals.iter().collect(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.constraint {
            Constraint::Compare(op, lit) => {
                write!(f, "{}.{} {} {}", self.table, self.column, op, lit)
            }
            Constraint::In(vals) => {
                write!(f, "{}.{} IN (", self.table, self.column)?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The set of dictionary codes satisfying a constraint — either a contiguous
/// range (range/equality predicates on a sorted domain) or an explicit set
/// (IN lists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeSet {
    /// Contiguous half-open code range.
    Range(std::ops::Range<u32>),
    /// Explicit sorted code list.
    Set(Vec<u32>),
}

impl CodeSet {
    /// Membership test.
    pub fn contains(&self, code: u32) -> bool {
        match self {
            CodeSet::Range(r) => r.contains(&code),
            CodeSet::Set(s) => s.binary_search(&code).is_ok(),
        }
    }

    /// Number of codes in the set.
    pub fn len(&self) -> usize {
        match self {
            CodeSet::Range(r) => r.len(),
            CodeSet::Set(s) => s.len(),
        }
    }

    /// True iff no code satisfies the constraint.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the member codes.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            CodeSet::Range(r) => Box::new(r.clone()),
            CodeSet::Set(s) => Box::new(s.iter().copied()),
        }
    }

    /// Intersect with another code set (used when a query has several
    /// predicates on the same column).
    pub fn intersect(&self, other: &CodeSet) -> CodeSet {
        match (self, other) {
            (CodeSet::Range(a), CodeSet::Range(b)) => {
                let start = a.start.max(b.start);
                let end = a.end.min(b.end);
                CodeSet::Range(start..end.max(start))
            }
            _ => {
                let codes: Vec<u32> = self.iter().filter(|&c| other.contains(c)).collect();
                CodeSet::Set(codes)
            }
        }
    }
}

impl Predicate {
    /// Project the constraint onto a sorted [`Domain`] as a [`CodeSet`].
    pub fn code_set(&self, domain: &Domain) -> CodeSet {
        match &self.constraint {
            Constraint::Compare(op, lit) => {
                let range = match op {
                    CompareOp::Lt => domain.codes_lt(lit),
                    CompareOp::Le => domain.codes_le(lit),
                    CompareOp::Ge => domain.codes_ge(lit),
                    CompareOp::Gt => domain.codes_gt(lit),
                    CompareOp::Eq => match domain.code_of(lit) {
                        Some(c) => c..c + 1,
                        None => 0..0,
                    },
                };
                CodeSet::Range(range)
            }
            Constraint::In(vals) => {
                let mut codes: Vec<u32> = vals.iter().filter_map(|v| domain.code_of(v)).collect();
                codes.sort_unstable();
                codes.dedup();
                CodeSet::Set(codes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::new((0..10).map(|i| Value::Int(i * 10)).collect())
    }

    #[test]
    fn matches_semantics() {
        let p = Predicate::compare("T", "a", CompareOp::Le, 30i64);
        assert!(p.matches(&Value::Int(30)));
        assert!(p.matches(&Value::Int(0)));
        assert!(!p.matches(&Value::Int(31)));
        assert!(!p.matches(&Value::Null));

        let q = Predicate::in_list("T", "a", vec![Value::Int(10), Value::Int(50)]);
        assert!(q.matches(&Value::Int(50)));
        assert!(!q.matches(&Value::Int(20)));
    }

    #[test]
    fn code_set_of_ranges() {
        let d = dom(); // 0,10,...,90 at codes 0..10
        let le = Predicate::compare("T", "a", CompareOp::Le, 35i64).code_set(&d);
        assert_eq!(le, CodeSet::Range(0..4));
        let ge = Predicate::compare("T", "a", CompareOp::Ge, 35i64).code_set(&d);
        assert_eq!(ge, CodeSet::Range(4..10));
        let eq = Predicate::compare("T", "a", CompareOp::Eq, 40i64).code_set(&d);
        assert_eq!(eq, CodeSet::Range(4..5));
        let eq_missing = Predicate::compare("T", "a", CompareOp::Eq, 41i64).code_set(&d);
        assert!(eq_missing.is_empty());
    }

    #[test]
    fn code_set_of_in_list() {
        let d = dom();
        let p = Predicate::in_list(
            "T",
            "a",
            vec![Value::Int(90), Value::Int(0), Value::Int(41)],
        );
        let cs = p.code_set(&d);
        assert_eq!(cs, CodeSet::Set(vec![0, 9]));
        assert!(cs.contains(9));
        assert!(!cs.contains(4));
    }

    #[test]
    fn code_set_agrees_with_matches() {
        let d = dom();
        for op in [
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Eq,
            CompareOp::Ge,
            CompareOp::Gt,
        ] {
            let p = Predicate::compare("T", "a", op, 50i64);
            let cs = p.code_set(&d);
            for code in 0..d.len() as u32 {
                assert_eq!(
                    cs.contains(code),
                    p.matches(d.value(code)),
                    "op {op} code {code}"
                );
            }
        }
    }

    #[test]
    fn intersection() {
        let a = CodeSet::Range(2..8);
        let b = CodeSet::Range(5..10);
        assert_eq!(a.intersect(&b), CodeSet::Range(5..8));
        let empty = CodeSet::Range(0..2).intersect(&CodeSet::Range(5..7));
        assert!(empty.is_empty());
        let s = CodeSet::Set(vec![1, 5, 7]);
        assert_eq!(s.intersect(&CodeSet::Range(4..8)), CodeSet::Set(vec![5, 7]));
    }
}
