//! Conjunctive queries and labelled workloads (paper §2.1–2.2).

use crate::predicate::Predicate;
use sam_storage::JoinGraph;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query: a set of tables (implicitly joined along the fk tree)
/// and a conjunction of predicates on their content columns.
///
/// The involved-table set may exceed the predicate tables: a query can join a
/// table without filtering it (common in MSCN-style workloads).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Names of the relations the query ranges over (joined along the fk
    /// tree). Must form a connected subtree of the join graph.
    pub tables: Vec<String>,
    /// Conjunction of predicates; every predicate's table must be in `tables`.
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// Single-relation query.
    pub fn single(table: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        Query {
            tables: vec![table.into()],
            predicates,
        }
    }

    /// Multi-relation join query.
    pub fn join(tables: Vec<String>, predicates: Vec<Predicate>) -> Self {
        Query { tables, predicates }
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// True iff the query ranges over exactly one relation.
    pub fn is_single_relation(&self) -> bool {
        self.tables.len() == 1
    }

    /// Number of joins (involved tables minus one).
    pub fn num_joins(&self) -> usize {
        self.tables.len().saturating_sub(1)
    }

    /// Predicates on a given table.
    pub fn predicates_on(&self, table: &str) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.table == table)
            .collect()
    }

    /// The closure of involved tables on the join graph — the smallest
    /// connected subtree containing every listed table (tables the join must
    /// pass through even if unfiltered). Returned as join-graph indices.
    pub fn table_closure(&self, graph: &JoinGraph) -> Option<Vec<usize>> {
        let idx: Option<Vec<usize>> = self.tables.iter().map(|t| graph.index_of(t)).collect();
        let mut idx = idx?;
        idx.sort_unstable();
        idx.dedup();
        if idx.is_empty() {
            return None;
        }
        Some(graph.steiner_tree(&idx))
    }

    /// Distinct (table, column) pairs filtered by this query.
    pub fn filtered_columns(&self) -> BTreeSet<(&str, &str)> {
        self.predicates
            .iter()
            .map(|p| (p.table.as_str(), p.column.as_str()))
            .collect()
    }

    /// Deterministic canonical rendering, for use as a cache key.
    ///
    /// Incidental orderings are sorted away — the table list and the
    /// predicate conjunction are order-insensitive for a conjunctive query
    /// (the join closure and the per-column sampling rules come out the
    /// same) — so syntactically different spellings of one query share a
    /// key. Unlike [`fmt::Display`], this string is not meant to be parsed
    /// back.
    pub fn canonical_string(&self) -> String {
        let mut tables: Vec<&str> = self.tables.iter().map(String::as_str).collect();
        tables.sort_unstable();
        tables.dedup();
        let mut preds: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
        preds.sort_unstable();
        if preds.is_empty() {
            format!("F {}", tables.join(","))
        } else {
            format!("F {} W {}", tables.join(","), preds.join(" AND "))
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT COUNT(*) FROM {}", self.tables.join(", "))?;
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

/// A query labelled with its true cardinality on the target database — one
/// *cardinality constraint* of the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// `Card(q)` on the target database.
    pub cardinality: u64,
}

/// A query workload: the generator's entire view of the target data.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Labelled queries in collection order.
    pub queries: Vec<LabeledQuery>,
}

impl Workload {
    /// Wrap labelled queries.
    pub fn new(queries: Vec<LabeledQuery>) -> Self {
        Workload { queries }
    }

    /// Number of cardinality constraints.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate the labelled queries.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledQuery> {
        self.queries.iter()
    }

    /// The first `n` constraints as a new workload (prefix truncation, used
    /// by the processing-time sweeps).
    pub fn truncate(&self, n: usize) -> Workload {
        Workload {
            queries: self.queries.iter().take(n).cloned().collect(),
        }
    }

    /// Mean number of predicates per query.
    pub fn mean_filters(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self.queries.iter().map(|q| q.query.num_predicates()).sum();
        total as f64 / self.queries.len() as f64
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a LabeledQuery;
    type IntoIter = std::slice::Iter<'a, LabeledQuery>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompareOp;
    use sam_storage::paper_example;

    #[test]
    fn display_renders_sql() {
        let q = Query::single(
            "T",
            vec![
                Predicate::compare("T", "a", CompareOp::Le, 5i64),
                Predicate::compare("T", "b", CompareOp::Eq, "x"),
            ],
        );
        assert_eq!(
            q.to_string(),
            "SELECT COUNT(*) FROM T WHERE T.a <= 5 AND T.b = 'x'"
        );
    }

    #[test]
    fn canonical_string_is_order_insensitive() {
        let a = Query::join(
            vec!["B".into(), "A".into()],
            vec![
                Predicate::compare("B", "y", CompareOp::Eq, 1i64),
                Predicate::compare("A", "a", CompareOp::Le, 5i64),
            ],
        );
        let b = Query::join(
            vec!["A".into(), "B".into()],
            vec![
                Predicate::compare("A", "a", CompareOp::Le, 5i64),
                Predicate::compare("B", "y", CompareOp::Eq, 1i64),
            ],
        );
        assert_eq!(a.canonical_string(), b.canonical_string());
        let c = Query::join(vec!["A".into(), "B".into()], vec![]);
        assert_ne!(a.canonical_string(), c.canonical_string());
    }

    #[test]
    fn closure_expands_to_connected_subtree() {
        let db = paper_example::figure3_database();
        let g = db.graph();
        // B and C connect through A.
        let q = Query::join(vec!["B".into(), "C".into()], vec![]);
        assert_eq!(q.table_closure(g), Some(vec![0, 1, 2]));
        let single = Query::single("B", vec![]);
        assert_eq!(single.table_closure(g), Some(vec![1]));
        let unknown = Query::single("Z", vec![]);
        assert_eq!(unknown.table_closure(g), None);
    }

    #[test]
    fn workload_helpers() {
        let q = Query::single("T", vec![Predicate::compare("T", "a", CompareOp::Eq, 1i64)]);
        let w = Workload::new(vec![
            LabeledQuery {
                query: q.clone(),
                cardinality: 10,
            },
            LabeledQuery {
                query: Query::single("T", vec![]),
                cardinality: 100,
            },
        ]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean_filters(), 0.5);
        assert_eq!(w.truncate(1).len(), 1);
    }
}
