//! Disjunctive queries via the inclusion–exclusion principle (paper §2.2:
//! "disjunctions can be supported using the inclusion-exclusion principle").
//!
//! A [`DnfQuery`] is a union of conjunctive [`Query`]s over the same join
//! scope. Its cardinality expands as
//! `|∪ᵢ qᵢ| = Σ_S (−1)^{|S|+1} |∧_{i∈S} qᵢ|`, where the conjunction of
//! conjunctive queries is simply the concatenation of their predicates —
//! so both exact evaluation and model-based estimation reduce to the
//! conjunctive machinery.

use crate::eval::evaluate_cardinality;
use crate::query::Query;
use sam_storage::{Database, StorageError};
use std::collections::BTreeSet;

/// A disjunction (union) of conjunctive queries.
#[derive(Debug, Clone, PartialEq)]
pub struct DnfQuery {
    /// The disjuncts. All must range over the same table set.
    pub disjuncts: Vec<Query>,
}

impl DnfQuery {
    /// Build from disjuncts; fails if the table scopes differ (unions of
    /// different join shapes are not a single COUNT semantics).
    pub fn new(disjuncts: Vec<Query>) -> Result<Self, StorageError> {
        if disjuncts.is_empty() {
            return Err(StorageError::SchemaViolation(
                "a DNF query needs at least one disjunct".into(),
            ));
        }
        let scope: BTreeSet<&String> = disjuncts[0].tables.iter().collect();
        for q in &disjuncts[1..] {
            let other: BTreeSet<&String> = q.tables.iter().collect();
            if other != scope {
                return Err(StorageError::SchemaViolation(format!(
                    "disjuncts must share a table scope: {:?} vs {:?}",
                    scope, other
                )));
            }
        }
        Ok(DnfQuery { disjuncts })
    }

    /// The conjunction of a subset of disjuncts.
    fn intersection(&self, subset: &[usize]) -> Query {
        let tables = self.disjuncts[0].tables.clone();
        let predicates = subset
            .iter()
            .flat_map(|&i| self.disjuncts[i].predicates.iter().cloned())
            .collect();
        Query { tables, predicates }
    }

    /// Enumerate the inclusion–exclusion terms: `(sign, conjunction)` for
    /// every non-empty subset of disjuncts. 2^n terms — keep n small.
    pub fn inclusion_exclusion_terms(&self) -> Vec<(i64, Query)> {
        let n = self.disjuncts.len();
        assert!(
            n <= 20,
            "inclusion-exclusion over 2^{n} terms is impractical"
        );
        let mut terms = Vec::with_capacity((1usize << n) - 1);
        for mask in 1u32..(1 << n) {
            let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let sign = if subset.len() % 2 == 1 { 1 } else { -1 };
            terms.push((sign, self.intersection(&subset)));
        }
        terms
    }

    /// Exact cardinality of the union on `db`.
    pub fn evaluate(&self, db: &Database) -> Result<i64, StorageError> {
        let mut total = 0i64;
        for (sign, q) in self.inclusion_exclusion_terms() {
            total += sign * evaluate_cardinality(db, &q)? as i64;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use sam_storage::paper_example;

    fn db() -> Database {
        paper_example::figure3_database()
    }

    #[test]
    fn union_of_overlapping_predicates() {
        let db = db();
        // a = 'm' (2 rows) ∪ a >= 'm' (4 rows: m,m,n,n) = 4 rows.
        let dnf = DnfQuery::new(vec![
            Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "m")]),
            Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Ge, "m")]),
        ])
        .unwrap();
        assert_eq!(dnf.evaluate(&db).unwrap(), 4);
    }

    #[test]
    fn union_of_disjoint_predicates_adds() {
        let db = db();
        let dnf = DnfQuery::new(vec![
            Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "m")]),
            Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "n")]),
        ])
        .unwrap();
        assert_eq!(dnf.evaluate(&db).unwrap(), 4);
    }

    #[test]
    fn three_way_inclusion_exclusion_on_joins() {
        let db = db();
        // Over B ⋈ C (6 rows): b='a' (2 rows: pairs with C i,j), c='i'
        // (3 rows), b='c' (2 rows). Union computed against a brute-force
        // reference below.
        let q1 = Query::join(
            vec!["B".into(), "C".into()],
            vec![Predicate::compare("B", "b", CompareOp::Eq, "a")],
        );
        let q2 = Query::join(
            vec!["B".into(), "C".into()],
            vec![Predicate::compare("C", "c", CompareOp::Eq, "i")],
        );
        let q3 = Query::join(
            vec!["B".into(), "C".into()],
            vec![Predicate::compare("B", "b", CompareOp::Eq, "c")],
        );
        let dnf = DnfQuery::new(vec![q1, q2, q3]).unwrap();
        // Join rows (b, c): (a,i),(a,j),(b,i),(b,j),(c,i),(c,j).
        // Union of {b=a}, {c=i}, {b=c}: (a,i),(a,j),(b,i),(c,i),(c,j) = 5.
        assert_eq!(dnf.evaluate(&db).unwrap(), 5);
        assert_eq!(dnf.inclusion_exclusion_terms().len(), 7);
    }

    #[test]
    fn rejects_mismatched_scopes_and_empty() {
        assert!(DnfQuery::new(vec![]).is_err());
        let err = DnfQuery::new(vec![Query::single("A", vec![]), Query::single("B", vec![])]);
        assert!(err.is_err());
    }
}
