//! A tiny SQL front-end for the supported query class.
//!
//! Parses `SELECT COUNT(*) FROM t1, t2, … [WHERE pred AND pred …]` where each
//! predicate is `table.column <op> literal` or `table.column IN (lit, …)`.
//! Literals: integers, floats, or single-quoted strings. This is a
//! convenience for examples and tests — [`crate::Query`]'s `Display` renders
//! the inverse form.

use crate::predicate::{CompareOp, Constraint, Predicate};
use crate::query::Query;
use sam_storage::Value;
use std::fmt;

/// SQL parse errors with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest[kw.len()..].chars().next();
            let boundary = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if boundary || !kw.chars().all(|c| c.is_alphanumeric() || c == '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(sym) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected identifier"));
        }
        let ident = rest[..end].to_string();
        self.pos += end;
        Ok(ident)
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix('\'') {
            let mut out = String::new();
            let mut chars = stripped.char_indices().peekable();
            while let Some((i, c)) = chars.next() {
                if c == '\'' {
                    if chars.peek().map(|(_, c2)| *c2) == Some('\'') {
                        chars.next();
                        out.push('\'');
                    } else {
                        self.pos += 1 + i + 1;
                        return Ok(Value::str(out));
                    }
                } else {
                    out.push(c);
                }
            }
            return Err(self.err("unterminated string literal"));
        }
        // Numeric literal.
        let end = rest
            .char_indices()
            .find(|(i, c)| {
                !(c.is_ascii_digit()
                    || *c == '.'
                    || *c == 'e'
                    || *c == 'E'
                    || ((*c == '-' || *c == '+')
                        && (*i == 0 || matches!(rest.as_bytes()[*i - 1], b'e' | b'E'))))
            })
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected literal"));
        }
        let tok = &rest[..end];
        self.pos += end;
        if let Ok(v) = tok.parse::<i64>() {
            Ok(Value::Int(v))
        } else if let Ok(v) = tok.parse::<f64>() {
            Ok(Value::Float(v))
        } else {
            Err(self.err(format!("bad numeric literal {tok:?}")))
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let table = self.identifier()?;
        if !self.eat_symbol(".") {
            return Err(self.err("expected '.' after table name"));
        }
        let column = self.identifier()?;
        self.skip_ws();
        if self.eat_keyword("IN") {
            if !self.eat_symbol("(") {
                return Err(self.err("expected '(' after IN"));
            }
            let mut values = Vec::new();
            loop {
                values.push(self.literal()?);
                if self.eat_symbol(",") {
                    continue;
                }
                if self.eat_symbol(")") {
                    break;
                }
                return Err(self.err("expected ',' or ')' in IN list"));
            }
            return Ok(Predicate {
                table,
                column,
                constraint: Constraint::In(values),
            });
        }
        let op = if self.eat_symbol("<=") {
            CompareOp::Le
        } else if self.eat_symbol(">=") {
            CompareOp::Ge
        } else if self.eat_symbol("<") {
            CompareOp::Lt
        } else if self.eat_symbol(">") {
            CompareOp::Gt
        } else if self.eat_symbol("=") {
            CompareOp::Eq
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let literal = self.literal()?;
        Ok(Predicate {
            table,
            column,
            constraint: Constraint::Compare(op, literal),
        })
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        self.expect_keyword("COUNT")?;
        if !(self.eat_symbol("(") && self.eat_symbol("*") && self.eat_symbol(")")) {
            return Err(self.err("expected COUNT(*)"));
        }
        self.expect_keyword("FROM")?;
        let mut tables = vec![self.identifier()?];
        while self.eat_symbol(",") {
            tables.push(self.identifier()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        self.skip_ws();
        if self.eat_symbol(";") {
            self.skip_ws();
        }
        if !self.rest().is_empty() {
            return Err(self.err("trailing input"));
        }
        Ok(Query { tables, predicates })
    }
}

/// Parse one `SELECT COUNT(*)` query.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    Parser::new(sql).query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_relation() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE t.a <= 5 AND t.b = 'x'").unwrap();
        assert_eq!(q.tables, vec!["t"]);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(
            q.predicates[0],
            Predicate::compare("t", "a", CompareOp::Le, 5i64)
        );
        assert_eq!(
            q.predicates[1],
            Predicate::compare("t", "b", CompareOp::Eq, "x")
        );
    }

    #[test]
    fn parses_joins_and_in_lists() {
        let q =
            parse_query("SELECT COUNT(*) FROM a, b WHERE a.x IN (1, 2, 3) AND b.y > 1.5;").unwrap();
        assert_eq!(q.tables, vec!["a", "b"]);
        assert_eq!(
            q.predicates[0].constraint,
            Constraint::In(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            q.predicates[1].constraint,
            Constraint::Compare(CompareOp::Gt, Value::Float(1.5))
        );
    }

    #[test]
    fn parses_no_where_clause() {
        let q = parse_query("select count(*) from movies").unwrap();
        assert_eq!(q.tables, vec!["movies"]);
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn display_parse_round_trip() {
        let sql = "SELECT COUNT(*) FROM a, b WHERE a.x <= 3 AND b.y = 'hi' AND a.z IN (1, 2)";
        let q = parse_query(sql).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE t.s = 'it''s'").unwrap();
        assert_eq!(
            q.predicates[0].constraint,
            Constraint::Compare(CompareOp::Eq, Value::str("it's"))
        );
    }

    #[test]
    fn reports_errors_with_offsets() {
        let err = parse_query("SELECT COUNT(*) FROM").unwrap_err();
        assert!(err.offset >= 20);
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE t.a ! 5").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t extra").is_err());
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE t.a >= -42 AND t.b < 1e3").unwrap();
        assert_eq!(
            q.predicates[0].constraint,
            Constraint::Compare(CompareOp::Ge, Value::Int(-42))
        );
        assert_eq!(
            q.predicates[1].constraint,
            Constraint::Compare(CompareOp::Lt, Value::Float(1000.0))
        );
    }
}
