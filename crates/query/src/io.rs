//! Workload file I/O.
//!
//! The interchange format for query workloads: one `SELECT COUNT(*) …`
//! query per line, optionally labelled with its true cardinality as a
//! trailing `-- card=N` comment. Blank lines and comment lines (leading
//! `--`) are ignored. A fully labelled file is exactly what the paper's
//! cloud provider receives from the customer — queries plus counts, no
//! data.
//!
//! Lines starting with `{` are parsed as JSON objects instead — the shape
//! the serving tier's quality-drift audit log emits — taking the query
//! from the `"sql"` field and the label from an integral `"truth"` /
//! `"card"` / `"cardinality"` field when present. The two line styles can
//! be mixed freely, so a drift audit JSONL re-seeds `workgen mine`
//! without conversion.

use crate::query::{LabeledQuery, Query, Workload};
use crate::sql::parse_query;
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Errors raised while reading workload files.
#[derive(Debug)]
pub enum WorkloadIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse (line number, message).
    Parse(usize, String),
    /// A line is missing its `-- card=N` label where one is required.
    MissingLabel(usize),
}

impl std::fmt::Display for WorkloadIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadIoError::Io(e) => write!(f, "workload io: {e}"),
            WorkloadIoError::Parse(line, m) => write!(f, "workload line {line}: {m}"),
            WorkloadIoError::MissingLabel(line) => {
                write!(f, "workload line {line}: missing `-- card=N` label")
            }
        }
    }
}

impl std::error::Error for WorkloadIoError {}

impl From<std::io::Error> for WorkloadIoError {
    fn from(e: std::io::Error) -> Self {
        WorkloadIoError::Io(e)
    }
}

/// Parse a workload stream into `(query, optional cardinality)` pairs.
pub fn read_workload_entries<R: BufRead>(
    reader: R,
) -> Result<Vec<(Query, Option<u64>)>, WorkloadIoError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        if line.starts_with('{') {
            let (sql, card) =
                parse_jsonl_entry(line).map_err(|m| WorkloadIoError::Parse(line_no, m))?;
            let q =
                parse_query(&sql).map_err(|e| WorkloadIoError::Parse(line_no, e.to_string()))?;
            out.push((q, card));
            continue;
        }
        let (sql, card) = match line.split_once("-- card=") {
            Some((sql, n)) => {
                let card: u64 = n.trim().parse().map_err(|_| {
                    WorkloadIoError::Parse(line_no, format!("bad cardinality {n:?}"))
                })?;
                (sql.trim(), Some(card))
            }
            None => (line, None),
        };
        let q = parse_query(sql).map_err(|e| WorkloadIoError::Parse(line_no, e.to_string()))?;
        out.push((q, card));
    }
    Ok(out)
}

/// Extract `(sql, optional label)` from one JSONL audit line.
fn parse_jsonl_entry(line: &str) -> Result<(String, Option<u64>), String> {
    let doc = serde_json::parse_value(line).map_err(|e| format!("bad JSONL entry: {e}"))?;
    let sql = doc
        .get("sql")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "JSONL entry has no \"sql\" string field".to_string())?
        .to_string();
    // The audit log's "truth" is the reference estimate in parity mode, so
    // only integral values are trusted as cardinality labels.
    let card = ["truth", "card", "cardinality"]
        .iter()
        .find_map(|k| doc.get(k))
        .and_then(|v| v.as_u64());
    Ok((sql, card))
}

/// Read a *fully labelled* workload (every line must carry `-- card=N`).
pub fn read_labeled_workload<R: BufRead>(reader: R) -> Result<Workload, WorkloadIoError> {
    let entries = read_workload_entries(reader)?;
    let queries = entries
        .into_iter()
        .enumerate()
        .map(|(i, (query, card))| match card {
            Some(cardinality) => Ok(LabeledQuery { query, cardinality }),
            None => Err(WorkloadIoError::MissingLabel(i + 1)),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Workload::new(queries))
}

/// Read queries only, ignoring any labels.
pub fn read_queries<R: BufRead>(reader: R) -> Result<Vec<Query>, WorkloadIoError> {
    Ok(read_workload_entries(reader)?
        .into_iter()
        .map(|(q, _)| q)
        .collect())
}

/// Render a labelled workload in the interchange format.
pub fn format_workload(workload: &Workload) -> String {
    let mut out = String::new();
    for lq in workload {
        let _ = writeln!(out, "{} -- card={}", lq.query, lq.cardinality);
    }
    out
}

/// Write a labelled workload to any sink.
pub fn write_workload<W: Write>(workload: &Workload, writer: &mut W) -> std::io::Result<()> {
    writer.write_all(format_workload(workload).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::label_workload;
    use crate::workload::WorkloadGenerator;
    use sam_storage::paper_example;

    #[test]
    fn round_trips_labelled_workloads() {
        let db = paper_example::figure3_database();
        let mut gen = WorkloadGenerator::new(&db, 3);
        let workload = label_workload(&db, gen.multi_workload(40, 2)).unwrap();
        let text = format_workload(&workload);
        let back = read_labeled_workload(text.as_bytes()).unwrap();
        assert_eq!(back.len(), workload.len());
        for (a, b) in back.iter().zip(workload.iter()) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.cardinality, b.cardinality);
        }
    }

    #[test]
    fn skips_blanks_and_comments() {
        let text = "\n-- a comment\nSELECT COUNT(*) FROM A -- card=4\n\n";
        let w = read_labeled_workload(text.as_bytes()).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.queries[0].cardinality, 4);
    }

    #[test]
    fn rejects_missing_labels_in_strict_mode() {
        let text = "SELECT COUNT(*) FROM A\n";
        let err = read_labeled_workload(text.as_bytes()).unwrap_err();
        assert!(matches!(err, WorkloadIoError::MissingLabel(1)));
        // But the relaxed readers accept it.
        assert_eq!(read_queries(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn jsonl_audit_lines_mix_with_plain_sql() {
        let text = concat!(
            "{\"ts_ms\":1,\"model\":\"m\",\"sql\":\"SELECT COUNT(*) FROM A\",\"estimate\":3.5,\"truth\":7,\"q_error\":2.0,\"trace_id\":42}\n",
            "SELECT COUNT(*) FROM A -- card=4\n",
            "{\"sql\":\"SELECT COUNT(*) FROM A\",\"truth\":2.5}\n",
        );
        let entries = read_workload_entries(text.as_bytes()).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].1, Some(7));
        assert_eq!(entries[1].1, Some(4));
        // Fractional truth (parity-mode reference estimate) is not a label.
        assert_eq!(entries[2].1, None);
    }

    #[test]
    fn jsonl_without_sql_field_is_rejected() {
        let text = "{\"query\": 1}\n";
        assert!(matches!(
            read_workload_entries(text.as_bytes()).unwrap_err(),
            WorkloadIoError::Parse(1, _)
        ));
        let garbage = "{not json\n";
        assert!(matches!(
            read_workload_entries(garbage.as_bytes()).unwrap_err(),
            WorkloadIoError::Parse(1, _)
        ));
    }

    #[test]
    fn rejects_bad_sql_and_bad_labels() {
        let bad_sql = "SELEKT 1\n";
        assert!(matches!(
            read_queries(bad_sql.as_bytes()).unwrap_err(),
            WorkloadIoError::Parse(1, _)
        ));
        let bad_card = "SELECT COUNT(*) FROM A -- card=lots\n";
        assert!(matches!(
            read_workload_entries(bad_card.as_bytes()).unwrap_err(),
            WorkloadIoError::Parse(1, _)
        ));
    }
}
